#!/usr/bin/env python
"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs all 20 registry experiments (cheap when the benchmark run has
already populated .repro_cache) and writes a per-experiment record:
the paper's reported numbers, our measured numbers, and whether the
shape criterion from DESIGN.md §4 holds.

Usage:  python scripts/generate_experiments_md.py [output_path]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.experiments import current_profile, run_experiment

# Reference values transcribed from the paper (DSN'18, arXiv:1805.00310).
PAPER = {
    "table1": {
        "summary": ("MNIST: C&W best ASR 10%, EAD up to 90.2% (EN, beta=0.1)."
                    " CIFAR: C&W 52%, EAD up to 79.8% (L1, beta=0.1)."),
    },
    "table3": {
        "summary": ("MNIST clean accuracy: 99.42% undefended; with MagNet "
                    "99.13 (D), 97.75 (D+JSD), 99.24 (D+256), 97.55 "
                    "(D+256+JSD)."),
    },
    "table4": {
        "summary": ("Best EAD ASR on MNIST: D up to 90.2, D+JSD up to 55.6, "
                    "D+256 up to 94.3, D+256+JSD up to 66.3 (all % at "
                    "beta=0.1)."),
    },
    "table6": {
        "summary": ("CIFAR clean accuracy: 86.91% undefended; 83.33 (D), "
                    "83.4 (D+256) with MagNet."),
    },
    "table7": {
        "summary": ("Best EAD ASR on CIFAR: D up to 79.8, D+256 up to 93.7 "
                    "(% at beta=0.1, L1 rule)."),
    },
    "fig2": {
        "summary": ("All four MNIST MagNet variants keep C&W accuracy >90% "
                    "while EAD curves dip to ~10% (D), ~60% (D+JSD), ~30% "
                    "(D+256), ~50% (D+256+JSD)."),
    },
    "fig3": {
        "summary": ("CIFAR: default MagNet dips to ~30% vs EAD at kappa "
                    "10-20; D+256 helps vs C&W but not vs EAD."),
    },
    "fig4": {"summary": "C&W on MNIST: detector+reformer ≥ each alone ≥ none."},
    "fig5": {"summary": "C&W on CIFAR: same decomposition ordering."},
    "fig6": {"summary": ("EAD vs default MNIST MagNet: full defense leaks at "
                         "medium kappa for every (beta, rule).")},
    "fig7": {"summary": "EAD vs default CIFAR MagNet: full defense leaks."},
    "fig8": {"summary": "EAD vs D+JSD (MNIST): ~40% still bypass."},
    "fig9": {"summary": "EAD vs D+256 (MNIST): ~70% still bypass."},
    "fig10": {"summary": "EAD vs D+256+JSD (MNIST): ~50% still bypass."},
    "fig11": {"summary": "EAD vs D+256 (CIFAR): ASR grows with beta, to ~94%."},
    "fig12": {"summary": ("MNIST: MAE-trained AEs behave like MSE — defend "
                          "C&W, lose to EAD.")},
    "fig13": {"summary": "CIFAR: same conclusion for MAE-trained AEs."},
    "fig1": {"summary": ("Gallery: EAD examples bypass MagNet (C&W rows "
                         "carry red crosses).")},
    "table2": {"summary": "Architectures (structural, no measurement)."},
    "table5": {"summary": "Architecture (structural, no measurement)."},
}

ORDER = [f"table{i}" for i in range(1, 8)] + [f"fig{i}" for i in range(1, 14)]


def main(out_path: str = "EXPERIMENTS.md") -> None:
    profile = current_profile()
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Profile: `{profile.name}` (regenerate with "
        f"`python scripts/generate_experiments_md.py`). Absolute numbers are",
        "not expected to match the paper — the substrate is a pure-numpy",
        "simulator on synthetic datasets (DESIGN.md §2); the recorded shape",
        "criteria are the reproduction targets (DESIGN.md §4).",
        "",
        "## How to run",
        "",
        "Every experiment below is reproducible from the CLI:",
        "",
        "```bash",
        "python -m repro.experiments run table1 --profile quick",
        "python -m repro.experiments run all --profile smoke --jobs 4",
        "python -m repro.experiments run all --jobs 4 --resume   # after a kill",
        "python -m repro.experiments timings      # per-stage durations",
        "```",
        "",
        "`--jobs N` pre-crafts the (attack, kappa, beta) cells of each",
        "sweep across N worker processes via `repro.runtime`; artifacts",
        "land under the same cache keys the serial path uses, so results",
        "are bitwise-identical to `--jobs 1`. Each run appends per-stage",
        "telemetry (training, attack crafting, cache hits/misses) to",
        "`<cache-dir>/telemetry.jsonl`; the `timings` subcommand",
        "aggregates it. `REPRO_PROFILE`/`REPRO_CACHE_DIR` env vars are",
        "deprecated in favor of `--profile`/`--cache-dir`.",
        "",
        "Sweeps are fault-tolerant and checkpointed: failing cells are",
        "retried with exponential backoff (`--retries`, per-cell",
        "`--timeout`), a crashed worker re-dispatches only its chunk, and",
        "every completed cell is noted in an atomic manifest under",
        "`<cache-dir>/checkpoints/`. After an interrupt, `--resume`",
        "load-verifies cached cells (corrupt entries count as missing) and",
        "recomputes only the incomplete ones. `--inject-faults",
        '"seed=1,crash=0.05,transient=0.1"` runs deterministic chaos',
        "against the runtime itself; completed chaos runs are",
        "bitwise-identical to clean ones (see README \"Fault tolerance",
        "and resume\").",
        "",
        "The defended pipeline also serves online: `python -m",
        "repro.experiments serve --dataset digits --profile smoke` exposes",
        "`/predict`, `/healthz` and `/stats` over HTTP with dynamic",
        "micro-batching and bounded-queue admission control",
        "(`repro.serving`). `PYTHONPATH=src python",
        "benchmarks/bench_serving.py` measures micro-batched vs",
        "serial-batch-1 throughput with a closed-loop load generator and",
        "records the result (plus the serving==offline verdict check) in",
        "`BENCH_serving.json`; `scripts/smoke_serving.py` is the",
        "end-to-end HTTP smoke test.",
        "",
    ]
    for exp_id in ORDER:
        t0 = time.time()
        report = run_experiment(exp_id)
        elapsed = time.time() - t0
        lines.append(f"## {exp_id} — {report.title}")
        lines.append("")
        paper = PAPER.get(exp_id, {}).get("summary", "(no numeric reference)")
        lines.append(f"**Paper:** {paper}")
        lines.append("")
        lines.append(f"**Measured** ({profile.name} profile, {elapsed:.0f}s):")
        lines.append("")
        lines.append("```")
        lines.append(report.text)
        lines.append("```")
        lines.append("")
    lines += [
        "## Shape verdict",
        "",
        "The reproduction targets from DESIGN.md §4, as observed above:",
        "",
        "- **EAD ≫ C&W against MagNet (Table I, Figs 2-3):** holds on both",
        "  datasets — digits: EAD best ASR ≈ 4x C&W's; objects: EAD's",
        "  accuracy curve sits below C&W's at every confidence.",
        "- **The medium-κ dip (Figs 2, 6-11):** reproduced — defense",
        "  accuracy bottoms out at mid confidence and recovers at high κ",
        "  as the detectors engage, for EAD but not for C&W.",
        "- **Reformer failure vs EAD (decomposition panels):** reproduced",
        "  strongly — the with-reformer-only curve collapses (to ~10-30%)",
        "  at high κ while C&W stays reformed-correct.",
        "- **Hardening helps but does not fix (Tables IV/VII):** JSD",
        "  detectors reduce EAD's ASR and wider AEs *increase* it (the",
        "  paper's D+256 > D inversion reproduces); no variant defends.",
        "- **MAE-trained AEs (Figs 12-13):** same qualitative picture as",
        "  MSE — C&W defended, EAD leaks — on both datasets.",
        "",
        "Magnitudes are compressed relative to the paper (EAD's peak ASR",
        "is ~25-55% here vs ~80-90% there): the synthetic manifolds are",
        "lower-dimensional than MNIST/CIFAR, which narrows the gap between",
        "what the autoencoders reproduce and what they scrub. The ordering",
        "and crossover structure — the paper's claims — are preserved.",
        "",
    ]
    with open(out_path, "w") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(*sys.argv[1:])
