#!/usr/bin/env python
"""Generate API.md — a docstring-driven reference of the public API.

Walks every public symbol exported from the `repro` subpackages and
writes one markdown section per module with the first paragraph of each
symbol's docstring.  Keeps the reference honest: it is extracted from
the live package, so it cannot drift from the code.

Usage:  python scripts/generate_api_docs.py [output_path]
"""

from __future__ import annotations

import importlib
import inspect
import sys

PACKAGES = [
    "repro.nn",
    "repro.datasets",
    "repro.models",
    "repro.defenses",
    "repro.attacks",
    "repro.evaluation",
    "repro.experiments",
    "repro.scenarios",
    "repro.runtime",
    "repro.obs",
    "repro.serving",
    "repro.utils",
]


def first_paragraph(doc: str) -> str:
    """First paragraph of a docstring, whitespace-normalized."""
    if not doc:
        return "(undocumented)"
    para = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in para.splitlines())


def describe_symbol(name: str, obj) -> str:
    kind = ("class" if inspect.isclass(obj)
            else "function" if callable(obj)
            else "constant")
    if kind == "constant":
        return f"- **`{name}`** *(constant)*"
    try:
        sig = str(inspect.signature(obj))
    except (ValueError, TypeError):
        sig = "(...)"
    doc = first_paragraph(inspect.getdoc(obj) or "")
    return f"- **`{name}{sig}`** *({kind})* — {doc}"


def main(out_path: str = "API.md") -> None:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `scripts/generate_api_docs.py`;",
        "regenerate after changing public signatures.",
        "",
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", None)
        if exported is None:
            exported = [n for n in dir(pkg) if not n.startswith("_")]
        lines.append(f"## `{pkg_name}`")
        lines.append("")
        pkg_doc = first_paragraph(inspect.getdoc(pkg) or "")
        lines.append(pkg_doc)
        lines.append("")
        for name in exported:
            obj = getattr(pkg, name, None)
            if obj is None or inspect.ismodule(obj):
                continue
            lines.append(describe_symbol(name, obj))
        lines.append("")
    with open(out_path, "w") as fh:
        fh.write("\n".join(lines))
    count = sum(1 for line in lines if line.startswith("- **"))
    print(f"wrote {out_path} ({count} symbols)")


if __name__ == "__main__":
    main(*sys.argv[1:])
