#!/usr/bin/env python
"""CI smoke test for the serving stack (thin wrapper).

Boots the HTTP inference server on an ephemeral port around a tiny
in-memory MagNet, fires concurrent /predict requests, and asserts
/healthz and /stats.  The logic lives in :mod:`repro.serving.smoke` so
it is importable and exposed as the ``repro-smoke-serving`` console
script; this wrapper keeps the conventional ``scripts/`` entry point.

Usage:  PYTHONPATH=src python scripts/smoke_serving.py [--requests N]
"""

import sys

from repro.serving.smoke import main

if __name__ == "__main__":
    sys.exit(main())
