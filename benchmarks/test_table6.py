"""Table VI — objects clean test accuracy with/without MagNet.

Paper's shape: CIFAR-10 is the harder task (lower clean accuracy than
MNIST), and MagNet costs a few points of clean accuracy.
"""


def test_table6(benchmark, run_exp):
    report = run_exp(benchmark, "table6")
    data = report.data
    assert data["without"] > 0.7
    for variant in ("default", "wide"):
        assert data[variant] <= data["without"] + 1e-9
        assert data[variant] > data["without"] - 0.2
