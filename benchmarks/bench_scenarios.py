#!/usr/bin/env python
"""Benchmark the scenario subsystem: throughput and adaptive-attack gain.

Runs a miniature threat-model grid (oblivious / graybox / BPDA /
detector-aware EAD-L1 cells plus one corruption row) against a small
calibrated MagNet pipeline and reports per-cell wall time, sweep
throughput (cells/sec) and per-scenario attack success against the full
defense.

The acceptance record for the scenario subsystem lives here: the BPDA
and detector-aware cells must achieve strictly higher attack success
than the oblivious baseline on the same MagNet config, and the
detector-aware objective must not be detected more often than BPDA's.

* ``--quick`` — fewer seed examples (fast, for CI).
* default — 16 seeds, closer to a real sweep cell.

Results are written to ``BENCH_scenarios.json`` at the repo root.

Usage:  PYTHONPATH=src python benchmarks/bench_scenarios.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Optimization budget of every adversarial cell.  Held fixed between
#: quick and full mode so the recorded adaptive-gain acceptance result
#: is comparable; ``--quick`` only trims the seed batch.
ATTACK_PARAMS = dict(binary_search_steps=3, max_iterations=60,
                     initial_const=1.0, lr=5e-2)

#: Threat models benchmarked, weakest to strongest.
THREAT_MODELS = ("oblivious", "graybox", "bpda", "detector_aware")


def _setup(batch: int):
    """Train the tiny defended pipeline and pick defended-correct seeds."""
    import numpy as np

    from repro.attacks import logits_of
    from repro.datasets import load_digit_splits
    from repro.defenses import (
        JSDDetector,
        MagNet,
        ReconstructionDetector,
        Reformer,
    )
    from repro.models import AutoencoderSpec, ClassifierSpec, ModelZoo
    from repro.utils.cache import DiskCache

    splits = load_digit_splits(n_train=700, n_val=150, n_test=300, seed=7)
    with tempfile.TemporaryDirectory(prefix="bench_scenarios_") as tmp:
        zoo = ModelZoo(splits, cache=DiskCache(tmp))
        classifier = zoo.classifier(ClassifierSpec(dataset="digits", epochs=6))
        autoencoder = zoo.autoencoder(
            AutoencoderSpec(dataset="digits", kind="deep", width=3, epochs=25))

    magnet = MagNet(
        classifier,
        [ReconstructionDetector(autoencoder, norm=1),
         JSDDetector(autoencoder, classifier, temperature=10.0)],
        Reformer(autoencoder))
    magnet.calibrate(splits.val.x, fpr_total=0.1)

    reformed = magnet.reformer.reform(splits.test.x)
    preds = logits_of(magnet.classifier, reformed).argmax(1)
    idx = np.flatnonzero(preds == splits.test.y)[:batch]
    if idx.shape[0] < batch:
        raise SystemExit(f"only {idx.shape[0]} defended-correct seeds "
                         f"available, need {batch}")
    return classifier, magnet, splits.test.x[idx], splits.test.y[idx]


def _cells():
    from repro.scenarios import Scenario

    cells = [Scenario.create("digits", "default", tm, "ead_l1")
             for tm in THREAT_MODELS]
    cells.append(Scenario.create("digits", "default", "corruption",
                                 "gaussian_noise", workload="corruption",
                                 severity=3))
    return cells


def _run_cell(scenario, classifier, magnet, x0, y0):
    from repro.scenarios import execute_scenario

    params = None if scenario.workload == "corruption" else ATTACK_PARAMS
    t0 = time.perf_counter()
    outcome = execute_scenario(scenario, classifier=classifier, magnet=magnet,
                               x0=x0, y0=y0, seed=3, attack_params=params)
    wall_s = time.perf_counter() - t0
    return outcome, wall_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer seed examples (fast, for CI)")
    parser.add_argument("--batch", type=int, default=None,
                        help="seed batch size (default: 8 quick, 16 full)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_scenarios.json"))
    args = parser.parse_args(argv)

    batch = args.batch or (8 if args.quick else 16)
    print(f"[bench_scenarios] training defended pipeline, batch={batch}",
          flush=True)
    classifier, magnet, x0, y0 = _setup(batch)

    scenarios = {}
    total_wall = 0.0
    for scenario in _cells():
        print(f"[bench_scenarios] {scenario.scenario_id} ...", flush=True)
        outcome, wall_s = _run_cell(scenario, classifier, magnet, x0, y0)
        total_wall += wall_s
        key = scenario.threat_model
        scenarios[key] = {
            "scenario": scenario.scenario_id,
            "wall_s": round(wall_s, 3),
            "attack_success_rate": round(outcome.attack_success_rate, 3),
            "misclassification_rate": round(
                outcome.misclassification_rate, 3),
            "detection_rate": round(outcome.detection_rate, 3),
            "detection_bypass_rate": round(outcome.detection_bypass_rate, 3),
            "craft_success_rate": (None if outcome.craft_success_rate !=
                                   outcome.craft_success_rate else
                                   round(outcome.craft_success_rate, 3)),
        }
        print(f"[bench_scenarios]   {wall_s:.2f}s, "
              f"asr={outcome.attack_success_rate:.3f}, "
              f"bypass={outcome.detection_bypass_rate:.3f}", flush=True)

    obl = scenarios["oblivious"]
    bpda = scenarios["bpda"]
    aware = scenarios["detector_aware"]
    result = {
        "benchmark": "scenario grid: oblivious vs adaptive threat models",
        "mode": "quick" if args.quick else "full",
        "batch": batch,
        **ATTACK_PARAMS,
        "cells": len(scenarios),
        "total_wall_s": round(total_wall, 3),
        "cells_per_s": round(len(scenarios) / max(total_wall, 1e-9), 4),
        "scenarios": scenarios,
        "adaptive_gain": {
            "bpda_over_oblivious": round(
                bpda["attack_success_rate"] - obl["attack_success_rate"], 3),
            "detector_aware_over_oblivious": round(
                aware["attack_success_rate"] - obl["attack_success_rate"], 3),
        },
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))

    failures = []
    if bpda["attack_success_rate"] <= obl["attack_success_rate"]:
        failures.append(
            f"bpda asr {bpda['attack_success_rate']} not strictly above "
            f"oblivious {obl['attack_success_rate']}")
    if aware["attack_success_rate"] <= obl["attack_success_rate"]:
        failures.append(
            f"detector_aware asr {aware['attack_success_rate']} not "
            f"strictly above oblivious {obl['attack_success_rate']}")
    if aware["detection_rate"] > bpda["detection_rate"]:
        failures.append(
            f"detector_aware detection {aware['detection_rate']} above "
            f"bpda {bpda['detection_rate']} — detector-aware objective "
            "not suppressing detections")
    for failure in failures:
        print(f"[bench_scenarios] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
