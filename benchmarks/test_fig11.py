"""Figure 11 — objects: EAD decomposition vs D+wide MagNet.

Paper's shape: on CIFAR, EAD's ASR *grows* with beta against the wide
variant (Table VII reports up to ~94%); the full curve dips low in at
least the large-beta panels.
"""

import numpy as np


def test_fig11(benchmark, run_exp):
    report = run_exp(benchmark, "fig11")
    data = report.data
    dips = {key: np.array(curves["With detector & reformer"]).min()
            for key, curves in data.items() if "/" in str(key)}
    assert min(dips.values()) < 0.85, (
        "EAD should leak through the wide objects MagNet")
