"""Ablation — EAD decision rules (EN vs L1) across beta.

The paper (§III-B1) reports that at small beta the L1 rule attacks
better (L2 dominates the elastic-net score), while at larger beta the EN
rule catches up or wins.  This ablation reuses the cached EAD sweeps to
tabulate best ASR per (rule, beta) against the default MagNet on digits.
"""

import pytest

from repro.evaluation.reporting import format_table
from repro.experiments import get_context
from repro.experiments.sweeps import best_asr


def test_decision_rule_ablation(benchmark):
    def run():
        ctx = get_context("digits")
        magnet = ctx.magnet("default")
        kappas = ctx.profile.kappas("digits")
        rows = []
        data = {}
        for beta in ctx.profile.betas:
            en = best_asr(ctx, magnet, kappas, beta, "en")
            l1 = best_asr(ctx, magnet, kappas, beta, "l1")
            rows.append([f"{beta:g}", 100 * en, 100 * l1])
            data[beta] = {"en": en, "l1": l1}
        print()
        print(format_table(["beta", "EN rule ASR %", "L1 rule ASR %"], rows,
                           title="EAD decision-rule ablation (digits, "
                                 "default MagNet)"))
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    # Both rules must yield a usable attack at every beta.
    for beta, cell in data.items():
        assert max(cell["en"], cell["l1"]) > 0.05, (
            f"beta={beta}: EAD ineffective under both rules")
