"""Figure 8 — digits: EAD decomposition vs D+JSD MagNet.

Paper's shape: the added JSD detectors improve the defense relative to
the default, but roughly 40% of EAD examples still bypass — the full
curve still dips well below perfect.
"""

import numpy as np


def test_fig8(benchmark, run_exp):
    report = run_exp(benchmark, "fig8")
    data = report.data
    dips = [np.array(curves["With detector & reformer"]).min()
            for key, curves in data.items() if "/" in str(key)]
    assert min(dips) < 0.9, "EAD should still leak through D+JSD"
