"""Ablation — detector separability (ROC / AUC) per attack.

The paper calibrates detectors at a fixed false-positive budget; the ROC
view asks whether *any* threshold could have separated EAD examples from
clean data.  Uses the cached attack batches and the default MagNet's
detectors on digits.
"""

import pytest

from repro.evaluation.roc import detector_roc_report
from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_detector_roc(benchmark):
    def run():
        ctx = get_context("digits")
        x_clean = ctx.splits.val.x
        magnet = ctx.magnet("default")
        kappa = ctx.profile.kappas("digits")[2]
        batches = {
            "C&W": ctx.cw(kappa).x_adv,
            "EAD-EN": ctx.ead(1e-1, kappa)["en"].x_adv,
        }
        rows, data = [], {}
        for attack_name, x_adv in batches.items():
            for det in magnet.detectors:
                rep = detector_roc_report(det, x_clean, x_adv)
                rows.append([attack_name, rep["detector"], rep["auc"],
                             rep["tpr_at_fpr"]["0.01"]])
                data[(attack_name, rep["detector"])] = rep
        print()
        print(format_table(
            ["attack", "detector", "AUC", "TPR@FPR=1%"], rows,
            title=f"Detector separability at kappa={kappa:g} (digits)"))
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    for key, rep in data.items():
        # Scores must be sane probabilities-of-detection.
        assert 0.0 <= rep["auc"] <= 1.0
        assert rep["adv_median"] >= 0.0
