"""Figure 13 — objects: MSE- vs MAE-trained autoencoders.

Paper's shape: as on digits, the MAE-trained CIFAR MagNet defends C&W
but not EAD.
"""


def _min_curve(series):
    return min(v for v in series if v == v)


def test_fig13(benchmark, run_exp):
    report = run_exp(benchmark, "fig13")
    data = report.data
    for loss in ("mse", "mae"):
        curves = data[loss]
        cw_min = _min_curve(curves["C&W L2 attack"])
        ead_min = min(_min_curve(v) for k, v in curves.items()
                      if k.startswith("EAD"))
        # Synthetic-objects noise band (see test_fig3).
        assert ead_min <= cw_min + 0.15, (
            f"objects {loss}: EAD {ead_min:.2f} vs C&W {cw_min:.2f}")
