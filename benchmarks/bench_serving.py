#!/usr/bin/env python
"""Benchmark the serving layer: micro-batching, and the process cluster.

**Closed-loop rounds** (N client threads, each issuing its next request
only after the previous verdict returns) drive the in-process
:class:`~repro.serving.service.InferenceService` over a full MagNet
pipeline (detectors -> reformer -> classifier x2), twice:

* **baseline** — ``max_batch=1``: every request is served alone, the
  per-call overhead of the numpy pipeline is paid per request;
* **batched** — ``max_batch=32, max_wait_ms=5``: concurrent requests
  coalesce into micro-batches through one ``decide_batch`` pass.

Two workloads:

* ``dense`` (default) — the small dense MagNet from
  :mod:`repro.serving.smoke`.  Per-call dispatch overhead dominates the
  arithmetic, which is the operating regime dynamic micro-batching is
  built for; forward-pass throughput does not depend on the weight
  values, so the untrained models time exactly like trained ones.
* ``conv`` — the *trained* smoke-profile digits MagNet (convolutional).
  im2col convolutions scale linearly with batch size, so coalescing can
  only amortise the fixed per-call overhead (~3x ceiling on one core);
  reported for context, the acceptance gate runs on ``dense``.

**Cluster rounds** drive the multi-process
:class:`~repro.serving.cluster.ClusterService` (shared-memory rings,
model router, tiered admission) with an *open-loop* generator: arrivals
follow a heavy-tailed Pareto inter-arrival process whose mean rate is
pinned at 2x the measured closed-loop capacity, with a priority mix
across the interactive/standard/background tiers.  Mid-load, one worker
is SIGKILLed to prove crash recovery.  Gates:

* every routed model's cluster verdicts are **bitwise identical** to
  the offline ``decide_batch`` on the same (pinned) batch composition;
* zero accepted requests are lost across the worker kill, and the
  supervisor logs at least one restart;
* under 2x overload the background tier sheds (full mode only —
  ``--quick`` keeps CI deterministic).

Results merge into ``BENCH_serving.json`` at the repo root (cluster
keys never clobber closed-loop keys and vice versa); exits non-zero on
any gate failure.  ``--quick`` skips the closed-loop rounds and runs a
small 2-worker / 2-model cluster pass for CI.

This is a standalone script (not collected by pytest): one round spins
up a real worker pool and thousands of requests.

Usage:  PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _build_conv_magnet(cache_dir: Path):
    """Train (or load) the smoke-profile digits MagNet + test images."""
    from repro.experiments import SMOKE, ExperimentContext
    from repro.utils.cache import DiskCache

    ctx = ExperimentContext("digits", profile=SMOKE,
                            cache=DiskCache(cache_dir), seed=0)
    magnet = ctx.magnet("default")
    return magnet, ctx.splits.test.x


def _build_dense_magnet():
    """Small dense MagNet (no disk, no training) + random flat inputs."""
    from repro.serving.smoke import DIM, build_toy_magnet

    magnet = build_toy_magnet(seed=0)
    rng = np.random.default_rng(7)
    return magnet, rng.random((512, DIM)).astype(np.float32)


def _closed_loop_round(magnet, inputs, config, concurrency: int,
                       requests_per_client: int) -> dict:
    """Drive one service config with a closed-loop thread fleet."""
    from repro.serving import Client, InferenceService

    total = concurrency * requests_per_client
    latencies = [0.0] * total
    errors = [0]
    lock = threading.Lock()

    with InferenceService(magnet, config) as service:
        client = Client(service)

        def run_client(worker: int) -> None:
            for k in range(requests_per_client):
                idx = (worker * requests_per_client + k) % len(inputs)
                t0 = time.perf_counter()
                try:
                    client.predict(inputs[idx], timeout=120)
                except Exception:  # noqa: BLE001 - count, keep loading
                    with lock:
                        errors[0] += 1
                    continue
                latencies[worker * requests_per_client + k] = (
                    time.perf_counter() - t0) * 1000.0

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(concurrency)]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t_start
        snap = service.stats_snapshot()

    served = [ms for ms in latencies if ms > 0]
    p50, p95, p99 = (np.percentile(served, (50, 95, 99))
                     if served else (0.0, 0.0, 0.0))
    return {
        "max_batch": config.max_batch,
        "max_wait_ms": config.max_wait_ms,
        "requests": total,
        "errors": errors[0],
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(served) / wall_s, 2),
        "latency_ms": {"p50": round(float(p50), 2),
                       "p95": round(float(p95), 2),
                       "p99": round(float(p99), 2)},
        "mean_batch_size": snap["batches"]["mean_size"],
        "max_batch_seen": snap["batches"]["max_size"],
    }


def _verdict_equality_check(magnet, inputs, n: int = 32) -> bool:
    """Serving verdicts vs offline decide() on the same batch composition.

    Per-row BLAS results are not bitwise stable across batch *shapes*,
    so the check pins the composition: all n requests are queued before
    the worker starts with max_batch=n, producing one flush whose
    stacked input equals the offline batch exactly.
    """
    from repro.serving import InferenceService, ServingConfig

    xs = [np.asarray(x, dtype=np.float32) for x in inputs[:n]]
    service = InferenceService(
        magnet, ServingConfig(max_batch=n, max_wait_ms=60_000,
                              max_queue=2 * n))
    futures = [service.submit(x) for x in xs]
    service.start()
    try:
        verdicts = [f.result(timeout=300) for f in futures]
    finally:
        service.stop()

    offline = magnet.decide(np.stack(xs))
    for i, v in enumerate(verdicts):
        if (v.label != int(offline.labels_reformed[i])
                or v.label_raw != int(offline.labels_raw[i])
                or v.detected != bool(offline.detected[i])):
            return False
        for d, det in enumerate(magnet.detectors):
            if v.detector_flags[det.name] != bool(offline.detector_flags[d, i]):
                return False
    return True


def _cluster_specs(n_models: int, *, max_batch: int = 16,
                   max_queue: int = 64):
    """Toy-zoo model specs sized for the overload rounds."""
    from repro.serving.smoke import build_toy_zoo

    return build_toy_zoo(n_models=n_models, max_batch=max_batch,
                         max_wait_ms=2.0, max_queue=max_queue,
                         adaptive_wait=True)


def _cluster_equivalence_check(specs, workers: int, n: int = 16) -> dict:
    """Cluster verdicts vs offline decide_batch, per routed model.

    Same pinning trick as :func:`_verdict_equality_check`: all ``n``
    requests per model are queued before the workers start with
    ``max_batch=n``, so each tenant flushes exactly one batch whose
    stacked input equals the offline batch bitwise.  Scores, flags and
    labels must match exactly — equality, not tolerance.
    """
    import dataclasses

    from repro.serving import ClusterConfig, ClusterService, ServingConfig
    from repro.serving.smoke import DIM

    pinned = [dataclasses.replace(
        spec, config=ServingConfig(max_batch=n, max_wait_ms=60_000,
                                   max_queue=4 * n))
        for spec in specs]
    rng = np.random.default_rng(11)
    xs = [rng.random(DIM).astype(np.float32) for _ in range(n)]
    cluster = ClusterService(pinned, ClusterConfig(workers=workers))
    futures = {spec.model_id: [cluster.submit(x, model=spec.model_id)
                               for x in xs]
               for spec in pinned}
    cluster.start()
    try:
        verdicts = {mid: [f.result(timeout=300) for f in fs]
                    for mid, fs in futures.items()}
    finally:
        cluster.stop()

    results = {}
    for spec in pinned:
        magnet = spec.build()
        offline = magnet.decide_batch(np.stack(xs))
        identical = True
        for i, v in enumerate(verdicts[spec.model_id]):
            if (v.label != int(offline.labels_reformed[i])
                    or v.label_raw != int(offline.labels_raw[i])
                    or v.detected != bool(offline.detected[i])):
                identical = False
            for d, det in enumerate(magnet.detectors):
                if (v.detector_flags[det.name]
                        != bool(offline.detector_flags[d, i])
                        or v.detector_scores[det.name]
                        != float(offline.detector_scores[d, i])):
                    identical = False
        results[spec.model_id] = identical
    return results


def _cluster_capacity(cluster, inputs, model_ids, probe: int = 128) -> float:
    """Closed-loop capacity estimate (rps) over the running cluster."""
    chunk = 16
    done = 0
    t0 = time.perf_counter()
    for base in range(0, probe, chunk):
        futures = [cluster.submit(inputs[(base + j) % len(inputs)],
                                  model=model_ids[(base + j) % len(model_ids)])
                   for j in range(min(chunk, probe - base))]
        for f in futures:
            f.result(timeout=120)
            done += 1
    wall = time.perf_counter() - t0
    return done / max(wall, 1e-9)


def _open_loop_round(cluster, inputs, model_ids, *, target_rps: float,
                     requests: int, kill_at=None, seed: int = 3) -> dict:
    """Open-loop Pareto arrivals at ``target_rps`` with a priority mix.

    Unlike the closed-loop rounds, the generator never waits for
    verdicts: requests arrive on a heavy-tailed schedule whether or not
    the cluster keeps up, which is what forces the tiered admission to
    shed.  When ``kill_at`` is set, worker 0 is SIGKILLed right after
    that arrival — accepted requests must still all resolve.
    """
    from repro.serving import QueueFullError, ShedError
    from repro.serving.policy import PRIORITY_TIERS

    rng = np.random.default_rng(seed)
    # (pareto(a) + 1) * m has mean m * a / (a - 1); alpha=2.5 gives a
    # heavy tail with finite variance.
    alpha = 2.5
    scale = (1.0 / target_rps) * (alpha - 1.0) / alpha
    inter = (rng.pareto(alpha, size=requests) + 1.0) * scale
    tiers = rng.choice(PRIORITY_TIERS, size=requests, p=(0.5, 0.35, 0.15))

    accepted = []          # (tier, t_submit, future)
    done_at = {}
    shed = {tier: 0 for tier in PRIORITY_TIERS}
    hard_rejects = 0
    killed = False
    lock = threading.Lock()

    def _mark_done(fut):
        with lock:
            done_at[id(fut)] = time.perf_counter()

    t_start = time.perf_counter()
    t_next = t_start
    for k in range(requests):
        t_next += inter[k]
        delay = t_next - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if kill_at is not None and k == kill_at:
            killed = cluster.kill_worker(0)
        tier = str(tiers[k])
        try:
            fut = cluster.submit(inputs[k % len(inputs)],
                                 model=model_ids[k % len(model_ids)],
                                 priority=tier)
        except ShedError:
            shed[tier] += 1
            continue
        except QueueFullError:
            hard_rejects += 1
            continue
        fut.add_done_callback(_mark_done)
        accepted.append((tier, time.perf_counter(), fut))

    errors = 0
    latencies = []
    for tier, t_sub, fut in accepted:
        try:
            fut.result(timeout=300)
        except Exception:  # noqa: BLE001 - count, keep collecting
            errors += 1
            continue
        with lock:
            latencies.append((done_at[id(fut)] - t_sub) * 1000.0)
    wall = (max(done_at.values(), default=time.perf_counter()) - t_start)

    completed = len(latencies)
    p50, p95, p99 = (np.percentile(latencies, (50, 95, 99))
                     if latencies else (0.0, 0.0, 0.0))
    return {
        "requests": requests,
        "target_rps": round(target_rps, 2),
        "accepted": len(accepted),
        "completed": completed,
        "errors": errors,
        "shed_by_tier": shed,
        "hard_rejects": hard_rejects,
        "worker_killed": killed,
        "wall_s": round(wall, 3),
        "goodput_rps": round(completed / max(wall, 1e-9), 2),
        "latency_ms": {"p50": round(float(p50), 2),
                       "p95": round(float(p95), 2),
                       "p99": round(float(p99), 2)},
    }


def _run_cluster_bench(*, workers: int, n_models: int, probe: int,
                       requests: int, quick: bool) -> dict:
    """The full cluster section: equivalence, capacity, 2x overload."""
    from repro.serving import ClusterConfig, ClusterService
    from repro.serving.smoke import DIM

    specs = _cluster_specs(n_models)
    model_ids = [spec.model_id for spec in specs]
    print(f"[bench_serving] cluster equivalence check "
          f"({n_models} models x {workers} workers) ...", flush=True)
    equivalence = _cluster_equivalence_check(specs, workers)

    rng = np.random.default_rng(5)
    inputs = rng.random((512, DIM)).astype(np.float32)
    with ClusterService(specs, ClusterConfig(workers=workers)) as cluster:
        if not cluster.wait_ready(timeout=120):
            raise RuntimeError("cluster workers never became ready")
        print("[bench_serving] measuring cluster capacity ...", flush=True)
        capacity = _cluster_capacity(cluster, inputs, model_ids, probe=probe)
        print(f"[bench_serving]   capacity ~{capacity:.1f} rps; "
              f"open-loop at 2x with worker kill ...", flush=True)
        overload = _open_loop_round(
            cluster, inputs, model_ids, target_rps=2.0 * capacity,
            requests=requests, kill_at=requests // 3)
        snap = cluster.stats_snapshot()

    shed_total = sum(overload["shed_by_tier"].values())
    print(f"[bench_serving]   goodput {overload['goodput_rps']} rps, "
          f"p99 {overload['latency_ms']['p99']} ms, "
          f"shed {shed_total} ({overload['shed_by_tier']}), "
          f"restarts {snap['cluster']['restarts']}", flush=True)
    return {
        "workers": workers,
        "models": model_ids,
        "quick": quick,
        "verdicts_identical_to_offline": equivalence,
        "capacity_rps": round(capacity, 2),
        "overload_2x": overload,
        "restarts": snap["cluster"]["restarts"],
        "shed_by_model": {mid: msnap["shed"]
                          for mid, msnap in snap["models"].items()},
        "adaptive_wait_ms": {mid: msnap["wait_ms"]
                             for mid, msnap in snap["models"].items()},
    }


def _cluster_gates(section: dict, *, require_shed: bool) -> bool:
    """Acceptance gates for the cluster section (printed on failure)."""
    ok = True
    divergent = [mid for mid, same
                 in section["verdicts_identical_to_offline"].items()
                 if not same]
    if divergent:
        print(f"[bench_serving] FAIL: cluster verdicts diverge from offline "
              f"decide_batch for {divergent}", file=sys.stderr)
        ok = False
    overload = section["overload_2x"]
    if overload["errors"]:
        print(f"[bench_serving] FAIL: {overload['errors']} accepted "
              "request(s) lost during the overload round", file=sys.stderr)
        ok = False
    if not overload["worker_killed"] or section["restarts"] < 1:
        print("[bench_serving] FAIL: worker kill/restart did not happen "
              f"(killed={overload['worker_killed']}, "
              f"restarts={section['restarts']})", file=sys.stderr)
        ok = False
    if require_shed and not sum(overload["shed_by_tier"].values()):
        print("[bench_serving] FAIL: 2x overload shed nothing",
              file=sys.stderr)
        ok = False
    return ok


def _merge_results(out_path: Path, update: dict) -> dict:
    """Update BENCH_serving.json in place, preserving unrelated keys."""
    existing = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing.update(update)
    with open(out_path, "w") as fh:
        json.dump(existing, fh, indent=2)
        fh.write("\n")
    return existing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=("dense", "conv"),
                        default="dense",
                        help="dense: overhead-bound toy MagNet (default); "
                             "conv: trained smoke digits MagNet")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="closed-loop client threads (default 32)")
    parser.add_argument("--requests-per-client", type=int, default=None,
                        help="requests each client issues "
                             "(default: 100 dense / 24 conv)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="micro-batch bound for the batched round")
    parser.add_argument("--cache-dir", default=None,
                        help="model cache for conv (default: fresh temp dir)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serving.json"))
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: skip the closed-loop rounds, run a "
                             "small cluster pass (2 workers, 2 models, "
                             "bitwise equivalence + crash recovery)")
    parser.add_argument("--cluster-workers", type=int, default=2,
                        help="worker processes for the cluster rounds")
    parser.add_argument("--cluster-models", type=int, default=2,
                        help="routed toy models for the cluster rounds")
    parser.add_argument("--skip-cluster", action="store_true",
                        help="closed-loop rounds only (pre-cluster behavior)")
    args = parser.parse_args(argv)
    if args.requests_per_client is None:
        args.requests_per_client = 100 if args.workload == "dense" else 24
    out_path = Path(args.out)

    if args.quick:
        cluster = _run_cluster_bench(
            workers=args.cluster_workers, n_models=args.cluster_models,
            probe=96, requests=200, quick=True)
        _merge_results(out_path, {"cluster": cluster,
                                  "cpu_count": os.cpu_count()})
        print(json.dumps({"cluster": cluster}, indent=2))
        return 0 if _cluster_gates(cluster, require_shed=False) else 1

    from repro.serving import ServingConfig

    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        if args.workload == "dense":
            magnet, inputs = _build_dense_magnet()
        else:
            cache_dir = Path(args.cache_dir) if args.cache_dir else Path(tmp)
            print("[bench_serving] training smoke-profile models ...",
                  flush=True)
            magnet, inputs = _build_conv_magnet(cache_dir)

        queue_bound = max(512, 4 * args.concurrency)
        rounds = {}
        for name, config in (
            ("baseline", ServingConfig(max_batch=1, max_wait_ms=0.0,
                                       max_queue=queue_bound)),
            ("batched", ServingConfig(max_batch=args.max_batch,
                                      max_wait_ms=5.0,
                                      max_queue=queue_bound)),
        ):
            print(f"[bench_serving] round '{name}' "
                  f"(max_batch={config.max_batch}, "
                  f"concurrency={args.concurrency}) ...", flush=True)
            rounds[name] = _closed_loop_round(
                magnet, inputs, config, args.concurrency,
                args.requests_per_client)
            print(f"[bench_serving]   {rounds[name]['throughput_rps']} rps, "
                  f"p95 {rounds[name]['latency_ms']['p95']} ms, "
                  f"mean batch {rounds[name]['mean_batch_size']}", flush=True)

        print("[bench_serving] verdict equality check ...", flush=True)
        identical = _verdict_equality_check(magnet, inputs)

    cluster = None
    if not args.skip_cluster:
        cluster = _run_cluster_bench(
            workers=args.cluster_workers, n_models=args.cluster_models,
            probe=256, requests=600, quick=False)

    speedup = (rounds["batched"]["throughput_rps"]
               / max(rounds["baseline"]["throughput_rps"], 1e-9))
    result = {
        "benchmark": "serving micro-batch vs batch-1 (closed loop) "
                     "+ cluster open-loop overload",
        "workload": args.workload,
        "cpu_count": os.cpu_count(),
        "concurrency": args.concurrency,
        "baseline": rounds["baseline"],
        "batched": rounds["batched"],
        "speedup": round(speedup, 3),
        "verdicts_identical_to_offline": identical,
    }
    if cluster is not None:
        result["cluster"] = cluster
    merged = _merge_results(out_path, result)
    print(json.dumps(merged, indent=2))

    ok = True
    if speedup < 3.0 and args.workload == "dense":
        print(f"[bench_serving] FAIL: speedup {speedup:.2f} < 3.0",
              file=sys.stderr)
        ok = False
    if not identical:
        print("[bench_serving] FAIL: serving verdicts differ from offline "
              "MagNet", file=sys.stderr)
        ok = False
    if rounds["baseline"]["errors"] or rounds["batched"]["errors"]:
        print("[bench_serving] FAIL: request errors during load",
              file=sys.stderr)
        ok = False
    if cluster is not None and not _cluster_gates(cluster, require_shed=True):
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
