#!/usr/bin/env python
"""Benchmark the serving layer: micro-batched vs serial-batch-1 throughput.

A closed-loop load generator (N client threads, each issuing its next
request only after the previous verdict returns) drives the in-process
:class:`~repro.serving.service.InferenceService` over a full MagNet
pipeline (detectors -> reformer -> classifier x2), twice:

* **baseline** — ``max_batch=1``: every request is served alone, the
  per-call overhead of the numpy pipeline is paid per request;
* **batched** — ``max_batch=32, max_wait_ms=5``: concurrent requests
  coalesce into micro-batches through one ``decide_batch`` pass.

Two workloads:

* ``dense`` (default) — the small dense MagNet from
  :mod:`repro.serving.smoke`.  Per-call dispatch overhead dominates the
  arithmetic, which is the operating regime dynamic micro-batching is
  built for; forward-pass throughput does not depend on the weight
  values, so the untrained models time exactly like trained ones.
* ``conv`` — the *trained* smoke-profile digits MagNet (convolutional).
  im2col convolutions scale linearly with batch size, so coalescing can
  only amortise the fixed per-call overhead (~3x ceiling on one core);
  reported for context, the acceptance gate runs on ``dense``.

Records throughput, queue/total latency percentiles and mean batch size
per round, plus the correctness cross-check that serving verdicts are
bitwise identical to the offline ``MagNet.decide`` pipeline on the same
batch composition.  Results land in ``BENCH_serving.json`` at the repo
root; exits non-zero if the batched round is not at least 3x the
baseline throughput or the verdict check fails.

This is a standalone script (not collected by pytest): one round spins
up a real worker pool and thousands of requests.

Usage:  PYTHONPATH=src python benchmarks/bench_serving.py [--concurrency N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _build_conv_magnet(cache_dir: Path):
    """Train (or load) the smoke-profile digits MagNet + test images."""
    from repro.experiments import SMOKE, ExperimentContext
    from repro.utils.cache import DiskCache

    ctx = ExperimentContext("digits", profile=SMOKE,
                            cache=DiskCache(cache_dir), seed=0)
    magnet = ctx.magnet("default")
    return magnet, ctx.splits.test.x


def _build_dense_magnet():
    """Small dense MagNet (no disk, no training) + random flat inputs."""
    from repro.serving.smoke import DIM, build_toy_magnet

    magnet = build_toy_magnet(seed=0)
    rng = np.random.default_rng(7)
    return magnet, rng.random((512, DIM)).astype(np.float32)


def _closed_loop_round(magnet, inputs, config, concurrency: int,
                       requests_per_client: int) -> dict:
    """Drive one service config with a closed-loop thread fleet."""
    from repro.serving import Client, InferenceService

    total = concurrency * requests_per_client
    latencies = [0.0] * total
    errors = [0]
    lock = threading.Lock()

    with InferenceService(magnet, config) as service:
        client = Client(service)

        def run_client(worker: int) -> None:
            for k in range(requests_per_client):
                idx = (worker * requests_per_client + k) % len(inputs)
                t0 = time.perf_counter()
                try:
                    client.predict(inputs[idx], timeout=120)
                except Exception:  # noqa: BLE001 - count, keep loading
                    with lock:
                        errors[0] += 1
                    continue
                latencies[worker * requests_per_client + k] = (
                    time.perf_counter() - t0) * 1000.0

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(concurrency)]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t_start
        snap = service.stats_snapshot()

    served = [ms for ms in latencies if ms > 0]
    p50, p95, p99 = (np.percentile(served, (50, 95, 99))
                     if served else (0.0, 0.0, 0.0))
    return {
        "max_batch": config.max_batch,
        "max_wait_ms": config.max_wait_ms,
        "requests": total,
        "errors": errors[0],
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(served) / wall_s, 2),
        "latency_ms": {"p50": round(float(p50), 2),
                       "p95": round(float(p95), 2),
                       "p99": round(float(p99), 2)},
        "mean_batch_size": snap["batches"]["mean_size"],
        "max_batch_seen": snap["batches"]["max_size"],
    }


def _verdict_equality_check(magnet, inputs, n: int = 32) -> bool:
    """Serving verdicts vs offline decide() on the same batch composition.

    Per-row BLAS results are not bitwise stable across batch *shapes*,
    so the check pins the composition: all n requests are queued before
    the worker starts with max_batch=n, producing one flush whose
    stacked input equals the offline batch exactly.
    """
    from repro.serving import InferenceService, ServingConfig

    xs = [np.asarray(x, dtype=np.float32) for x in inputs[:n]]
    service = InferenceService(
        magnet, ServingConfig(max_batch=n, max_wait_ms=60_000,
                              max_queue=2 * n))
    futures = [service.submit(x) for x in xs]
    service.start()
    try:
        verdicts = [f.result(timeout=300) for f in futures]
    finally:
        service.stop()

    offline = magnet.decide(np.stack(xs))
    for i, v in enumerate(verdicts):
        if (v.label != int(offline.labels_reformed[i])
                or v.label_raw != int(offline.labels_raw[i])
                or v.detected != bool(offline.detected[i])):
            return False
        for d, det in enumerate(magnet.detectors):
            if v.detector_flags[det.name] != bool(offline.detector_flags[d, i]):
                return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=("dense", "conv"),
                        default="dense",
                        help="dense: overhead-bound toy MagNet (default); "
                             "conv: trained smoke digits MagNet")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="closed-loop client threads (default 32)")
    parser.add_argument("--requests-per-client", type=int, default=None,
                        help="requests each client issues "
                             "(default: 100 dense / 24 conv)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="micro-batch bound for the batched round")
    parser.add_argument("--cache-dir", default=None,
                        help="model cache for conv (default: fresh temp dir)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serving.json"))
    args = parser.parse_args(argv)
    if args.requests_per_client is None:
        args.requests_per_client = 100 if args.workload == "dense" else 24

    from repro.serving import ServingConfig

    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        if args.workload == "dense":
            magnet, inputs = _build_dense_magnet()
        else:
            cache_dir = Path(args.cache_dir) if args.cache_dir else Path(tmp)
            print("[bench_serving] training smoke-profile models ...",
                  flush=True)
            magnet, inputs = _build_conv_magnet(cache_dir)

        queue_bound = max(512, 4 * args.concurrency)
        rounds = {}
        for name, config in (
            ("baseline", ServingConfig(max_batch=1, max_wait_ms=0.0,
                                       max_queue=queue_bound)),
            ("batched", ServingConfig(max_batch=args.max_batch,
                                      max_wait_ms=5.0,
                                      max_queue=queue_bound)),
        ):
            print(f"[bench_serving] round '{name}' "
                  f"(max_batch={config.max_batch}, "
                  f"concurrency={args.concurrency}) ...", flush=True)
            rounds[name] = _closed_loop_round(
                magnet, inputs, config, args.concurrency,
                args.requests_per_client)
            print(f"[bench_serving]   {rounds[name]['throughput_rps']} rps, "
                  f"p95 {rounds[name]['latency_ms']['p95']} ms, "
                  f"mean batch {rounds[name]['mean_batch_size']}", flush=True)

        print("[bench_serving] verdict equality check ...", flush=True)
        identical = _verdict_equality_check(magnet, inputs)

    speedup = (rounds["batched"]["throughput_rps"]
               / max(rounds["baseline"]["throughput_rps"], 1e-9))
    result = {
        "benchmark": "serving micro-batch vs batch-1 (closed loop)",
        "workload": args.workload,
        "cpu_count": os.cpu_count(),
        "concurrency": args.concurrency,
        "baseline": rounds["baseline"],
        "batched": rounds["batched"],
        "speedup": round(speedup, 3),
        "verdicts_identical_to_offline": identical,
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))

    ok = True
    if speedup < 3.0 and args.workload == "dense":
        print(f"[bench_serving] FAIL: speedup {speedup:.2f} < 3.0",
              file=sys.stderr)
        ok = False
    if not identical:
        print("[bench_serving] FAIL: serving verdicts differ from offline "
              "MagNet", file=sys.stderr)
        ok = False
    if rounds["baseline"]["errors"] or rounds["batched"]["errors"]:
        print("[bench_serving] FAIL: request errors during load",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
