#!/usr/bin/env python
"""Benchmark the pluggable kernel backends against the numpy default.

Three stages, each run for every registered backend (numpy / fft /
buffered):

* **conv microbench** — forward, backward-input and backward-weight
  timings on the paper profile's autoencoder conv shapes (256 filters at
  28x28, 3x3 same-padding: the 1->256 / 256->256 / 256->1 trio);
* **AE epoch** — one `Trainer.fit` epoch of a MagNet-style conv
  autoencoder, the training workload the paper profile spends most of
  its wall-clock on;
* **EAD step** — a small EAD run against a trained digits classifier,
  reported as seconds per model dispatch (the attack inner loop).

Every stage doubles as an **equivalence gate** (exit 1 on divergence):

* ``buffered`` must be *bitwise* identical to ``numpy`` everywhere —
  outputs, gradients, training losses, crafted examples;
* ``fft`` must match within its documented scale-relative tolerance on
  single dispatches (``FFT_GATE_RTOL`` x the output's max magnitude;
  see docs/nn_backends.md for why iterated trajectories are compared
  loosely instead: per-step tolerance errors compound and can flip
  borderline attack successes).

The acceptance budget (full mode only) is a >=1.5x speedup of the best
alternative backend over numpy on the summed paper-shape conv
microbench.  ``--quick`` shrinks batches/budgets for CI and skips the
wall-clock floor (timings on shared runners are noise) but keeps every
equivalence gate.

Results are written to ``BENCH_nn.json`` at the repo root.

Usage:  PYTHONPATH=src python benchmarks/bench_nn.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acceptance floor: best alternative backend vs numpy on the summed
#: paper-shape conv microbench (fwd + both backwards).
SPEEDUP_FLOOR = 1.5

#: Scale-relative gate for single FFT dispatches: max|a - ref| must stay
#: below this fraction of max|ref|.  The per-element float32 bound grows
#: ~sqrt(K) with the K = Ci*kh*kw accumulation length; 2e-3 covers the
#: paper profile's K = 2304 with margin (measured ~2e-4 at K <= 128).
FFT_GATE_RTOL = 2e-3

#: Paper-profile AE conv trio: (n, ci, co, hw, k, stride, padding).
#: n = 64 is the Trainer's default batch size — the batch every conv in
#: the paper profile's AE training loop actually sees.
PAPER_SHAPES = (
    ("conv_1_256", 64, 1, 256, 28, 3, 1, 1),
    ("conv_256_256", 64, 256, 256, 28, 3, 1, 1),
    ("conv_256_1", 64, 256, 1, 28, 3, 1, 1),
)
QUICK_SHAPES = tuple((spec[0], 1) + spec[2:] for spec in PAPER_SHAPES)


def _rel_err(a, ref) -> float:
    import numpy as np

    scale = float(np.abs(ref).max())
    if scale == 0.0:
        return float(np.abs(a).max())
    return float(np.abs(a - ref).max()) / scale


def _best_of(repeats, fn):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _bench_conv(backends, shapes, repeats, failures) -> dict:
    """Per-backend fwd/bwd conv timings + the hard equivalence gate."""
    import numpy as np

    from repro.nn.backend import get_backend

    stage = {}
    rng = np.random.default_rng(0)
    for name, n, ci, co, hw, k, stride, padding in shapes:
        x = rng.standard_normal((n, ci, hw, hw)).astype(np.float32)
        w = (rng.standard_normal((co, ci, k, k)).astype(np.float32)
             / np.sqrt(ci * k * k))
        b = rng.standard_normal(co).astype(np.float32)
        ref_out, ref_ctx = get_backend("numpy").conv2d_forward(
            x, w, b, stride, padding, 1, needs_grad=True)
        g = rng.standard_normal(ref_out.shape).astype(np.float32)
        ref_gx = get_backend("numpy").conv2d_backward_input(ref_ctx, g)
        ref_gw = get_backend("numpy").conv2d_backward_weight(ref_ctx, g)

        shape_row = {"shape": f"{n}x{ci}x{hw}x{hw} -> {co} ({k}x{k})"}
        for bk_name in backends:
            be = get_backend(bk_name)
            fwd_s, (out, ctx) = _best_of(repeats, lambda: be.conv2d_forward(
                x, w, b, stride, padding, 1, needs_grad=True))
            bx_s, gx = _best_of(
                repeats, lambda: be.conv2d_backward_input(ctx, g))
            bw_s, gw = _best_of(
                repeats, lambda: be.conv2d_backward_weight(ctx, g))
            errs = {"out": _rel_err(out, ref_out),
                    "gx": _rel_err(gx, ref_gx),
                    "gw": _rel_err(gw, ref_gw)}
            if be.bitwise:
                for field, (got, ref) in (("out", (out, ref_out)),
                                          ("gx", (gx, ref_gx)),
                                          ("gw", (gw, ref_gw))):
                    if not np.array_equal(got, ref):
                        failures.append(
                            f"conv/{name}: {bk_name} {field} not bitwise "
                            f"equal to numpy (max rel err {errs[field]:.2e})")
            else:
                for field, err in errs.items():
                    if err > FFT_GATE_RTOL:
                        failures.append(
                            f"conv/{name}: {bk_name} {field} rel err "
                            f"{err:.2e} exceeds gate {FFT_GATE_RTOL:.0e}")
            shape_row[bk_name] = {
                "fwd_s": round(fwd_s, 4),
                "bwd_input_s": round(bx_s, 4),
                "bwd_weight_s": round(bw_s, 4),
                "total_s": round(fwd_s + bx_s + bw_s, 4),
                "max_rel_err": max(errs.values()),
            }
        stage[name] = shape_row
        print(f"[bench_nn] conv {name}: " + ", ".join(
            f"{bk}={stage[name][bk]['total_s']:.3f}s" for bk in backends),
            flush=True)
    return stage


def _bench_ae_epoch(backends, width, batch, samples, repeats,
                    failures) -> dict:
    """One autoencoder training epoch per backend, loss-gated."""
    import numpy as np

    from repro.nn import Conv2D, Sequential, Sigmoid, Trainer

    rng = np.random.default_rng(3)
    x = rng.random((samples, 1, 28, 28)).astype(np.float32)

    def build():
        return Sequential(
            Conv2D(1, width, 3, rng=np.random.default_rng(10)), Sigmoid(),
            Conv2D(width, 1, 3, rng=np.random.default_rng(11)), Sigmoid())

    stage = {"width": width, "batch": batch, "samples": samples}
    losses = {}
    for bk_name in backends:
        def epoch():
            trainer = Trainer(build(), loss="mse", seed=0, backend=bk_name)
            return trainer.fit(x, None, epochs=1, batch_size=batch,
                               verbose=False).final_train_loss

        wall_s, loss = _best_of(repeats, epoch)
        losses[bk_name] = loss
        stage[bk_name] = {"epoch_s": round(wall_s, 3),
                          "final_loss": round(loss, 8)}
        print(f"[bench_nn] ae_epoch {bk_name}: {wall_s:.2f}s "
              f"loss={loss:.6f}", flush=True)

    from repro.nn.backend import get_backend
    for bk_name in backends:
        if bk_name == "numpy":
            continue
        if get_backend(bk_name).bitwise:
            if losses[bk_name] != losses["numpy"]:
                failures.append(
                    f"ae_epoch: {bk_name} loss {losses[bk_name]!r} != "
                    f"numpy loss {losses['numpy']!r} (bitwise backend)")
        elif abs(losses[bk_name] - losses["numpy"]) > \
                1e-2 * max(abs(losses["numpy"]), 1e-12):
            failures.append(
                f"ae_epoch: {bk_name} loss {losses[bk_name]:.8f} diverged "
                f"from numpy {losses['numpy']:.8f} beyond 1%")
    return stage


def _bench_ead(backends, budget, batch, failures) -> dict:
    """EAD per-dispatch seconds per backend, gated on crafted outputs."""
    import numpy as np

    from repro.attacks import EAD, logits_of
    from repro.datasets import load_digit_splits
    from repro.models import ClassifierSpec, ModelZoo
    from repro.obs import counter
    from repro.utils.cache import DiskCache

    import tempfile

    splits = load_digit_splits(n_train=400, n_val=100, n_test=200, seed=7)
    with tempfile.TemporaryDirectory(prefix="bench_nn_") as tmp:
        zoo = ModelZoo(splits, cache=DiskCache(tmp))
        model = zoo.classifier(ClassifierSpec(dataset="digits", epochs=2))
    preds = logits_of(model, splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == splits.test.y)[:batch]
    x0, y0 = splits.test.x[idx], splits.test.y[idx]

    stage = {"batch": int(idx.shape[0]), **budget}
    results = {}
    dispatches = counter("attack/dispatches")
    for bk_name in backends:
        attack = EAD(model, beta=1e-1, kappa=0.0,
                     backend=bk_name, **budget)
        before = dispatches.value
        t0 = time.perf_counter()
        result = attack.attack(x0, y0)
        wall_s = time.perf_counter() - t0
        n_disp = dispatches.value - before
        results[bk_name] = result
        stage[bk_name] = {
            "wall_s": round(wall_s, 3),
            "dispatches": int(n_disp),
            "step_ms": round(1e3 * wall_s / max(n_disp, 1), 3),
            "success_rate": round(result.success_rate, 3),
            "mean_l1": (round(result.mean_distortion("l1"), 4)
                        if result.success.any() else None),
        }
        print(f"[bench_nn] ead {bk_name}: {wall_s:.2f}s "
              f"({stage[bk_name]['step_ms']}ms/dispatch, "
              f"asr={result.success_rate:.2f})", flush=True)

    from repro.nn.backend import get_backend
    ref = results["numpy"]
    for bk_name in backends:
        if bk_name == "numpy":
            continue
        got = results[bk_name]
        if get_backend(bk_name).bitwise:
            if not np.array_equal(got.x_adv, ref.x_adv):
                failures.append(
                    f"ead: {bk_name} crafted examples not bitwise equal "
                    "to numpy (bitwise backend)")
        else:
            # Iterated FFT trajectories compound per-step tolerance
            # error; gate on aggregate agreement, not bitwise paths.
            agree = float((got.success == ref.success).mean())
            stage[bk_name]["success_agreement"] = round(agree, 3)
            if agree < 0.9:
                failures.append(
                    f"ead: {bk_name} success mask agrees with numpy on "
                    f"only {agree:.0%} of lanes (< 90%)")
            both = got.success & ref.success
            if both.any():
                rel = abs(float(got.l1[both].mean())
                          - float(ref.l1[both].mean()))
                rel /= max(float(ref.l1[both].mean()), 1e-12)
                stage[bk_name]["l1_rel_diff"] = round(rel, 4)
                # Loose by design: hundreds of ISTA steps + per-lane
                # binary search bifurcate on tolerance-level noise and
                # legitimately land on different (equally valid) minima.
                # Wrong *math* is caught by the tight single-dispatch
                # and AE-loss gates above; this bound only catches
                # grossly divergent attack behaviour.
                if rel > 0.25:
                    failures.append(
                        f"ead: {bk_name} mean L1 diverged {rel:.1%} "
                        "from numpy (> 25%)")
    return stage


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budget (fast, for CI); skips the "
                             "speedup floor but keeps equivalence gates")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (min reported; default 3, "
                             "1 with --quick)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_nn.json"))
    args = parser.parse_args(argv)

    from repro.nn.backend import available_backends, kernel_stats

    backends = list(available_backends())
    backends.sort(key=lambda n: (n != "numpy", n))  # numpy (reference) first
    repeats = args.repeats or (1 if args.quick else 3)
    shapes = QUICK_SHAPES if args.quick else PAPER_SHAPES
    ae_width = 32 if args.quick else 256
    ae_batch, ae_samples = (4, 8) if args.quick else (8, 16)
    # Full-mode const/budget chosen so the attack actually crafts
    # successes — the L1 agreement gate is vacuous on an all-fail run.
    ead_budget = (dict(binary_search_steps=1, max_iterations=10,
                       initial_const=1.0)
                  if args.quick
                  else dict(binary_search_steps=3, max_iterations=50,
                            initial_const=10.0))

    failures: list = []
    print(f"[bench_nn] backends: {backends}, repeats={repeats}", flush=True)
    conv = _bench_conv(backends, shapes, repeats, failures)
    ae = _bench_ae_epoch(backends, ae_width, ae_batch, ae_samples,
                         repeats, failures)
    ead = _bench_ead(backends, ead_budget, batch=4, failures=failures)

    totals = {bk: round(sum(conv[s][bk]["total_s"] for s in conv), 4)
              for bk in backends}
    alternatives = {bk: t for bk, t in totals.items() if bk != "numpy"}
    best = min(alternatives, key=alternatives.get)
    speedup = totals["numpy"] / max(alternatives[best], 1e-9)

    result = {
        "benchmark": "kernel backends: conv microbench + AE epoch + EAD",
        "mode": "quick" if args.quick else "paper-shape",
        "repeats": repeats,
        "speedup_floor": SPEEDUP_FLOOR,
        "fft_gate_rtol": FFT_GATE_RTOL,
        "conv": conv,
        "conv_total_s": totals,
        "best_backend": best,
        "conv_speedup": round(speedup, 2),
        "ae_epoch": ae,
        "ead": ead,
        "kernel_dispatches": {bk: stats["dispatches"]
                              for bk, stats in kernel_stats().items()},
        "equivalence_gate": "fail" if failures else "pass",
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))

    if not args.quick and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"conv: best alternative ({best}) speedup {speedup:.2f}x over "
            f"numpy is below the {SPEEDUP_FLOOR}x acceptance floor")
    for failure in failures:
        print(f"[bench_nn] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
