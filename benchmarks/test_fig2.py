"""Figure 2 — digits: accuracy-vs-confidence for four MagNet variants.

Paper's shape: against every variant, the EAD curves dip well below the
C&W curve somewhere in the confidence sweep (the paper's curves separate
dramatically at medium kappa).
"""


def _min_curve(series):
    return min(v for v in series if v == v)  # skip NaN


def test_fig2(benchmark, run_exp):
    report = run_exp(benchmark, "fig2")
    data = report.data
    for variant in ("default", "jsd", "wide", "wide_jsd"):
        curves = data[variant]
        cw_min = _min_curve(curves["C&W L2 attack"])
        ead_min = min(_min_curve(curves["EAD-L1 beta=0.1"]),
                      _min_curve(curves["EAD-EN beta=0.1"]))
        assert ead_min <= cw_min + 0.05, (
            f"{variant}: EAD should dip at least as low as C&W "
            f"(EAD {ead_min:.2f} vs C&W {cw_min:.2f})")
    # On the default variant the separation must be substantial.
    curves = data["default"]
    gap = _min_curve(curves["C&W L2 attack"]) - min(
        _min_curve(curves["EAD-L1 beta=0.1"]),
        _min_curve(curves["EAD-EN beta=0.1"]))
    assert gap > 0.05, f"default variant: EAD-vs-C&W gap too small ({gap:.2f})"
