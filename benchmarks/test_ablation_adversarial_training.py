"""Ablation — adversarial training vs MagNet against the same EAD batch.

The paper's conclusion asks for "additional defense mechanisms" beyond
MagNet.  This ablation adversarially trains the digits classifier (FGSM
augmentation) and evaluates the cached oblivious EAD examples against:

* the plain classifier (no defense),
* MagNet around the plain classifier (the paper's defense),
* the adversarially trained classifier alone.

Note the threat-model subtlety: the cached EAD batch was crafted against
the *plain* classifier, so for the AT model this measures *transfer*
robustness — precisely the black-box question the paper's protocol asks.

Observed result: FGSM-based adversarial training barely dents the
transferred L1 attack (ASR stays >90% at medium kappa) — consistent with
the paper's reference [12] ("Attacking the Madry defense model with
L1-based adversarial examples"), which found Linf-trained models remain
vulnerable to EAD.
"""

import numpy as np
import pytest

from repro.attacks import FGSM, logits_of
from repro.defenses.adversarial_training import adversarially_train_classifier
from repro.evaluation.reporting import format_table
from repro.experiments import get_context
from repro.models import build_digit_classifier
from repro.models.classifiers import ScaledLogits
from repro.nn import accuracy


def test_adversarial_training_comparison(benchmark):
    def run():
        ctx = get_context("digits")
        _, y0 = ctx.attack_seeds()
        magnet = ctx.magnet("default")
        kappa = ctx.profile.kappas("digits")[2]
        ead = ctx.ead(1e-1, kappa)["en"]

        at_model = adversarially_train_classifier(
            lambda: build_digit_classifier(seed=13),
            ctx.splits.train.x, ctx.splits.train.y,
            attack_factory=lambda m: FGSM(m, epsilon=0.1),
            epochs=4, batch_size=64, adversarial_fraction=0.5, lr=1e-3,
            seed=13)
        at_scaled = ScaledLogits(at_model,
                                 ctx.profile.logit_scale("digits"))

        clean_at = accuracy(at_scaled, ctx.splits.test.x, ctx.splits.test.y)
        raw_preds = logits_of(ctx.classifier, ead.x_adv).argmax(1)
        at_preds = logits_of(at_scaled, ead.x_adv).argmax(1)
        rows = [
            ["plain classifier (no defense)",
             100 * accuracy(ctx.classifier, ctx.splits.test.x,
                            ctx.splits.test.y),
             100 * float((raw_preds != y0).mean())],
            ["MagNet (detector + reformer)",
             100 * magnet.clean_accuracy(ctx.splits.test.x,
                                         ctx.splits.test.y),
             100 * magnet.attack_success_rate(ead.x_adv, y0)],
            ["adversarially trained classifier",
             100 * clean_at,
             100 * float((at_preds != y0).mean())],
        ]
        print()
        print(format_table(
            ["defense", "clean acc %", f"EAD ASR % (kappa={kappa:g})"],
            rows, title="Adversarial training vs MagNet "
                        "(same oblivious EAD batch, digits)"))
        return {
            "clean_at": clean_at,
            "asr_plain": float((raw_preds != y0).mean()),
            "asr_magnet": magnet.attack_success_rate(ead.x_adv, y0),
            "asr_at": float((at_preds != y0).mean()),
        }

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    # AT must stay usable on clean data.
    assert data["clean_at"] > 0.85
    # Transferred EAD examples must hurt the AT model less than the
    # model they were crafted against.
    assert data["asr_at"] < data["asr_plain"]
