"""Ablation — sparse-attack family vs MagNet: EAD (optimized L1) vs JSMA
(greedy L0).

Extends the paper's L1 theme: does MagNet fall to *any* sparse attack,
or specifically to elastic-net optimization?  JSMA saturates few pixels
greedily; EAD balances L1 against L2.  Both are evaluated obliviously
against the default digits MagNet.
"""

import numpy as np
import pytest

from repro.attacks import JSMA
from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_sparse_attack_family(benchmark):
    def run():
        ctx = get_context("digits")
        x0, y0 = ctx.attack_seeds()
        x0, y0 = x0[:16], y0[:16]
        magnet = ctx.magnet("default")

        jsma = JSMA(ctx.classifier, theta=1.0, max_fraction=0.1).attack(x0, y0)
        kappa = ctx.profile.kappas("digits")[2]
        ead = ctx.ead(1e-1, kappa)["en"]

        rows = []
        results = {"jsma": jsma, "ead": ead}
        for name, r in results.items():
            asr = magnet.attack_success_rate(r.x_adv[:16], y0)
            rows.append([name, 100 * r.success_rate,
                         r.mean_distortion("l0"), r.mean_distortion("l1"),
                         100 * asr])
        print()
        print(format_table(
            ["attack", "undefended succ %", "L0", "L1", "ASR vs MagNet %"],
            rows, title="Sparse attack family vs default MagNet (digits)"))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Both sparse attacks work against the undefended model.
    assert results["jsma"].success_rate > 0.3
    # JSMA's perturbations are genuinely sparse.
    if results["jsma"].success.any():
        assert results["jsma"].mean_distortion("l0") < 80
