"""Ablation — distortion growth with attack confidence.

The paper notes "the higher the confidence, the stronger the attack
strength, but also the greater the distortion" (§III-B).  This ablation
quantifies that trade-off from the cached sweeps: mean L1 and L2 of
successful examples per kappa, for C&W and EAD, on digits.

Shape criteria: distortions grow (weakly) monotonically with kappa, and
EAD's L1 stays well below C&W's at every kappa (the sparsity dividend).
"""

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_distortion_growth(benchmark):
    def run():
        ctx = get_context("digits")
        kappas = ctx.profile.kappas("digits")
        rows, data = [], {"kappas": list(kappas)}
        cw_l1, cw_l2, ead_l1, ead_l2 = [], [], [], []
        for kappa in kappas:
            cw = ctx.cw(kappa)
            ead = ctx.ead(1e-1, kappa)["en"]
            cw_l1.append(cw.mean_distortion("l1"))
            cw_l2.append(cw.mean_distortion("l2"))
            ead_l1.append(ead.mean_distortion("l1"))
            ead_l2.append(ead.mean_distortion("l2"))
            rows.append([f"{kappa:g}", cw_l1[-1], cw_l2[-1],
                         ead_l1[-1], ead_l2[-1]])
        data.update({"cw_l1": cw_l1, "cw_l2": cw_l2,
                     "ead_l1": ead_l1, "ead_l2": ead_l2})
        print()
        print(format_table(
            ["kappa", "C&W L1", "C&W L2", "EAD L1", "EAD L2"], rows,
            title="Distortion of successful examples vs confidence "
                  "(digits, EAD beta=0.1 EN rule)"))
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    cw_l2 = [v for v in data["cw_l2"] if v == v]
    ead_l1 = [v for v in data["ead_l1"] if v == v]
    cw_l1 = [v for v in data["cw_l1"] if v == v]
    # Distortion grows with confidence (allow small non-monotonic noise).
    assert cw_l2[-1] > cw_l2[0] - 0.1
    # The sparsity dividend: EAD's L1 below C&W's at every kappa.
    for e, c in zip(ead_l1, cw_l1):
        assert e < c, f"EAD L1 {e:.2f} should undercut C&W L1 {c:.2f}"
