"""Figure 7 — objects: EAD decomposition vs default MagNet, 8 panels.

Paper's shape: on CIFAR the default MagNet (which ships JSD detectors)
still leaks against EAD across the beta grid.
"""

import numpy as np


def test_fig7(benchmark, run_exp):
    report = run_exp(benchmark, "fig7")
    data = report.data
    dips = [np.array(curves["With detector & reformer"]).min()
            for key, curves in data.items() if "/" in str(key)]
    assert min(dips) < 0.8, (
        f"EAD should degrade the default objects MagNet "
        f"(best dip {min(dips):.2f})")
