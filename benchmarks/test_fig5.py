"""Figure 5 — objects: C&W defense decomposition for two variants.

Paper's shape: same decomposition ordering as digits; CIFAR MagNet's
full defense handles C&W substantially better than no defense.
"""

import numpy as np


def test_fig5(benchmark, run_exp):
    report = run_exp(benchmark, "fig5")
    data = report.data
    for variant in ("default", "wide"):
        curves = data[variant]
        none = np.array(curves["No defense"])
        det = np.array(curves["With detector"])
        ref = np.array(curves["With reformer"])
        full = np.array(curves["With detector & reformer"])
        assert (det >= none - 1e-9).all()
        assert (full >= ref - 1e-9).all()
        assert full.mean() > none.mean() + 0.2, (
            f"objects/{variant}: full defense should clearly beat none")
