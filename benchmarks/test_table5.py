"""Table V — robust MagNet CIFAR autoencoder architecture (structural)."""


def test_table5(benchmark, run_exp):
    report = run_exp(benchmark, "table5")
    data = report.data
    assert len(data["rows"]) == 3
    assert data["rows"][-1] == "Conv.Sigmoid 3x3x3"
    assert data["params"] > 0
