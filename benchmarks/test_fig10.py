"""Figure 10 — digits: EAD decomposition vs D+wide+JSD MagNet.

Paper's shape: the strongest variant still fails against ~50% of EAD
examples; hardening never restores robustness to L1 attacks.
"""

import numpy as np


def test_fig10(benchmark, run_exp):
    report = run_exp(benchmark, "fig10")
    data = report.data
    dips = [np.array(curves["With detector & reformer"]).min()
            for key, curves in data.items() if "/" in str(key)]
    assert min(dips) < 0.9, "EAD should still leak through D+wide+JSD"
