#!/usr/bin/env python
"""Benchmark the sharded artifact store + work-stealing sweep scheduler.

Drives a synthetic attack-grid sweep at >=10x the smoke profile's cell
count (smoke precomputes 6 attack cells; this sweep runs 120 full / 60
quick) through the three dispatch strategies — serial, static chunks,
work-stealing — and records:

* **Bitwise equivalence** — every scheduler must produce exactly the
  same artifact bytes as the serial baseline (the determinism contract
  that makes the scheduler a pure performance knob).
* **Scheduler efficiency** — per-worker busy/wall ratios and steal
  counts from :class:`repro.runtime.executor.SchedulerStats`.  The cell
  costs are deliberately skewed (every 7th cell is a ~20x straggler),
  the profile where static chunking strands idle workers.
* **Store dedup** — the artifacts are written to a
  :class:`repro.runtime.store.ShardedStore`; beta-rows of the synthetic
  grid share payloads, so content addressing must report >0% savings.

Exit status is non-zero if any scheduler diverges from the serial
baseline or dedup saves nothing — this file is the acceptance record
for ISSUE 8.

Results are written to ``BENCH_store.json`` at the repo root.

Usage:  PYTHONPATH=src python benchmarks/bench_store.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Cells per sweep: the smoke profile precomputes 6 attack cells, and
#: the ISSUE 8 acceptance bar is a sweep at >=10x that.
FULL_CELLS = 120
QUICK_CELLS = 60

#: Every Nth cell burns ~STRAGGLER_SCALE x the base cost — the skewed
#: profile that makes static chunking strand workers.
STRAGGLER_EVERY = 7
STRAGGLER_SCALE = 20

#: Distinct payload contents across the grid.  Cells map onto payload
#: groups the way beta rows reuse a crafted cell, so the store should
#: dedup ~(1 - UNIQUE_PAYLOADS/cells) of the logical bytes.
UNIQUE_PAYLOADS = 24

_BASE_ITERS = 400


def _craft_cell(cell, seed=None):
    """Synthetic sweep cell: deterministic, CPU-bound, skewed cost.

    The artifact depends only on the cell's payload group (not on the
    worker, the scheduler, or the per-item seed), so any two runs of
    any dispatch strategy must agree byte-for-byte.
    """
    group = cell % UNIQUE_PAYLOADS
    rng = np.random.default_rng(group)
    x = rng.standard_normal(2048)
    iters = _BASE_ITERS
    if cell % STRAGGLER_EVERY == 0:
        iters *= STRAGGLER_SCALE
    acc = np.zeros_like(x)
    for i in range(iters):
        acc += np.tanh(x * ((i % 13) + 1) * 1e-2)
    return {"adv": (acc / iters).astype(np.float64),
            "group": np.array([group], dtype=np.int64)}


def _run_sweep(cells, *, jobs, scheduler):
    from repro.runtime.executor import ParallelExecutor
    from repro.runtime.store import content_hash

    ex = ParallelExecutor(jobs, chunk_size=1, seed=0, scheduler=scheduler)
    t0 = time.perf_counter()
    results = ex.map(_craft_cell, cells)
    wall_s = time.perf_counter() - t0
    sched = ex.last_schedule
    digest = [content_hash(arrays) for arrays in results]
    return results, digest, sched, wall_s


def _sched_doc(sched, wall_s):
    # The static chunked pool doesn't lease per item, so it has no
    # per-worker busy times; report null rather than a misleading 0.
    eff = sched.worker_efficiency() or None
    return {
        "scheduler": sched.scheduler,
        "workers": sched.workers,
        "items": sched.items,
        "leases": sched.leases,
        "steals": sched.steals,
        "wall_s": round(wall_s, 3),
        "busy_s": ({str(k): round(v, 3)
                    for k, v in sorted(sched.busy_s.items())}
                   if sched.busy_s else None),
        "worker_efficiency": ({str(k): round(v, 4)
                               for k, v in sorted(eff.items())}
                              if eff else None),
        "mean_efficiency": (round(sched.mean_efficiency, 4)
                            if eff else None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_CELLS} cells instead of {FULL_CELLS} "
                             "(fast, for CI)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel sweeps "
                             "(default 4)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_store.json"))
    args = parser.parse_args(argv)

    from repro.runtime.store import ShardedStore

    n_cells = QUICK_CELLS if args.quick else FULL_CELLS
    cells = list(range(n_cells))
    print(f"[bench_store] sweep of {n_cells} cells "
          f"({n_cells // STRAGGLER_EVERY + 1} stragglers, "
          f"{UNIQUE_PAYLOADS} unique payloads), jobs={args.jobs}", flush=True)

    runs = {}
    digests = {}
    results, digests["serial"], sched, wall = _run_sweep(
        cells, jobs=1, scheduler="static")
    runs["serial"] = _sched_doc(sched, wall)
    print(f"[bench_store]   serial         {wall:7.2f}s", flush=True)

    for scheduler in ("static", "work_stealing"):
        _, digests[scheduler], sched, wall = _run_sweep(
            cells, jobs=args.jobs, scheduler=scheduler)
        runs[scheduler] = _sched_doc(sched, wall)
        eff = f"{sched.mean_efficiency:.3f}" if sched.busy_s else "n/a"
        print(f"[bench_store]   {scheduler:<14} {wall:7.2f}s  "
              f"steals={sched.steals}  eff={eff}", flush=True)

    with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
        store = ShardedStore(tmp, shards=64)
        t0 = time.perf_counter()
        for cell, arrays in zip(cells, results):
            store.put("attacks", f"cell{cell:04d}", arrays)
        put_wall = time.perf_counter() - t0
        dedup = store.dedup_report()
        scrub = store.verify()
    print(f"[bench_store]   store: {dedup['entries']} entries -> "
          f"{dedup['unique_blobs']} blobs, "
          f"saved {dedup['saved_pct']:.1f}%", flush=True)

    speedup = (runs["static"]["wall_s"] /
               max(runs["work_stealing"]["wall_s"], 1e-9))
    result = {
        "benchmark": "sharded store + work-stealing sweep scheduler",
        "mode": "quick" if args.quick else "full",
        "cells": n_cells,
        "jobs": args.jobs,
        "straggler_every": STRAGGLER_EVERY,
        "straggler_scale": STRAGGLER_SCALE,
        "unique_payloads": UNIQUE_PAYLOADS,
        "schedulers": runs,
        "stealing_speedup_vs_static": round(speedup, 3),
        "bitwise_identical": {
            name: digests[name] == digests["serial"]
            for name in ("static", "work_stealing")
        },
        "store": {
            "put_wall_s": round(put_wall, 3),
            "puts_per_s": round(n_cells / max(put_wall, 1e-9), 1),
            "scrub": scrub,
            **dedup,
        },
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))

    failures = []
    for name, same in result["bitwise_identical"].items():
        if not same:
            failures.append(f"{name} sweep diverged from the serial baseline")
    if dedup["saved_pct"] <= 0:
        failures.append("store dedup saved nothing on a grid with "
                        f"{UNIQUE_PAYLOADS}/{n_cells} unique payloads")
    if scrub["quarantined"] or scrub["dangling"]:
        failures.append(f"integrity scrub found damage: {scrub}")
    if runs["work_stealing"]["leases"] < n_cells:
        failures.append("work-stealing dispatched fewer leases than items")
    for failure in failures:
        print(f"[bench_store] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
