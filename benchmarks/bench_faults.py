#!/usr/bin/env python
"""Benchmark the fault-tolerance layer's overhead at zero fault rate.

The resilient executor path (per-item watchdog, retry bookkeeping,
chunk-level futures instead of a plain ``pool.map``) is only worth
having always-on in sweeps if it is close to free when nothing fails.
This benchmark maps a synthetic CPU-bound workload through both paths —
the plain fast path and the resilient path with a
:class:`~repro.runtime.faults.RetryPolicy` but 0% injected faults — and
reports the relative overhead.  Target: < 5%.

Also measured: the pure supervision cost on near-zero work items (an
upper bound — real attack cells run for seconds, drowning the
bookkeeping), and one chaos round (transient faults + retries) to
record what recovery costs when faults *do* fire.

Results are written to ``BENCH_faults.json`` at the repo root.

Usage:  PYTHONPATH=src python benchmarks/bench_faults.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _burn(n_iter, seed=None):
    """CPU-bound work item roughly comparable to a small attack step."""
    import numpy as np

    rng = np.random.default_rng(seed if seed is not None else n_iter)
    x = rng.standard_normal((64, 64))
    for _ in range(n_iter):
        x = np.tanh(x @ x.T / 64.0)
    return float(x.sum())


def _tiny(value, seed=None):
    return value * 2


def _time_map(fn, items, repeats, **kwargs):
    """Best-of-``repeats`` wall-clock for one parallel_map configuration."""
    from repro.runtime.executor import parallel_map

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        parallel_map(fn, items, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=max(2, os.cpu_count() or 2),
                        help="worker count for the pooled rounds")
    parser.add_argument("--items", type=int, default=24,
                        help="work items per round")
    parser.add_argument("--iters", type=int, default=200,
                        help="matmul iterations per realistic work item "
                             "(~10 ms each; real attack cells run for "
                             "seconds, so this still overstates overhead)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="rounds per configuration (best is kept)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_faults.json"))
    args = parser.parse_args(argv)

    from repro.runtime.faults import FaultPlan, RetryPolicy

    policy = RetryPolicy(timeout_s=300.0, retries=2, backoff_s=0.05)
    work = [args.iters] * args.items
    rounds = {}

    for label, jobs in (("serial", 1), ("pool", args.jobs)):
        print(f"[bench_faults] {label}: realistic workload "
              f"({args.items} items x {args.iters} iters) ...", flush=True)
        fast = _time_map(_burn, work, args.repeats, jobs=jobs, seed=0)
        resilient = _time_map(_burn, work, args.repeats, jobs=jobs, seed=0,
                              policy=policy)
        rounds[label] = {
            "jobs": jobs,
            "fast_path_s": round(fast, 4),
            "resilient_0pct_s": round(resilient, 4),
            "overhead_pct": round(100.0 * (resilient - fast) / fast, 2),
        }
        print(f"[bench_faults]   fast {fast:.3f}s, resilient {resilient:.3f}s "
              f"({rounds[label]['overhead_pct']:+.1f}%)", flush=True)

    # Upper bound: supervision cost dominates when items do ~no work.
    tiny_items = list(range(512))
    tiny_fast = _time_map(_tiny, tiny_items, args.repeats, jobs=1)
    tiny_resilient = _time_map(_tiny, tiny_items, args.repeats, jobs=1,
                               policy=policy)
    per_item_us = 1e6 * (tiny_resilient - tiny_fast) / len(tiny_items)

    # What recovery costs when faults actually fire (not part of the
    # <5% target; recorded for context).
    plan = FaultPlan(transients={i: 1 for i in range(0, args.items, 6)})
    chaos = _time_map(_burn, work, 1, jobs=args.jobs, seed=0,
                      policy=RetryPolicy(retries=2, backoff_s=0.05),
                      fault_plan=plan)

    target_pct = 5.0
    worst_pct = max(r["overhead_pct"] for r in rounds.values())
    result = {
        "benchmark": "fault-tolerance overhead at 0% faults",
        "cpu_count": os.cpu_count(),
        "items": args.items,
        "iters_per_item": args.iters,
        "repeats": args.repeats,
        **rounds,
        "supervision_cost_us_per_trivial_item": round(per_item_us, 2),
        "chaos_round_s": round(chaos, 4),
        "chaos_faults_injected": len(plan.transients),
        "target_overhead_pct": target_pct,
        "worst_overhead_pct": worst_pct,
        "within_target": bool(worst_pct < target_pct),
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if not result["within_target"]:
        print(f"[bench_faults] WARN: overhead {worst_pct:.1f}% exceeds "
              f"{target_pct:.0f}% target", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
