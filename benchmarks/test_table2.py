"""Table II — robust MagNet autoencoder architectures on digits.

Structural reproduction: the deep AE (Detector I & Reformer) has the
7-row conv/pool/upsample stack, the shallow AE (Detector II) the 3-row
stack, both ending in a single-channel sigmoid conv.
"""


def test_table2(benchmark, run_exp):
    report = run_exp(benchmark, "table2")
    data = report.data
    assert len(data["deep_rows"]) == 7
    assert len(data["shallow_rows"]) == 3
    assert data["deep_rows"][-1] == "Conv.Sigmoid 3x3x1"
    assert data["shallow_rows"][-1] == "Conv.Sigmoid 3x3x1"
    assert "AveragePooling 2x2" in data["deep_rows"]
    assert "Upsampling 2x2" in data["deep_rows"]
    assert data["deep_params"] > data["shallow_params"]
