"""Table III — digits clean test accuracy with/without each MagNet.

Paper's shape: the classifier keeps high clean accuracy behind every
MagNet variant; the drop from adding the defense is small (false
positives + reformer distortion), and JSD variants cost slightly more.
"""


def test_table3(benchmark, run_exp):
    report = run_exp(benchmark, "table3")
    data = report.data
    assert data["without"] > 0.95
    for variant in ("default", "jsd", "wide", "wide_jsd"):
        # With-defense accuracy tracks the undefended accuracy closely
        # (the reformer occasionally corrects a raw mistake, so a small
        # positive delta is legitimate) ...
        assert data[variant] <= data["without"] + 0.02
        # ... but the defense must not destroy clean performance.
        assert data[variant] > data["without"] - 0.15, (
            f"{variant}: clean accuracy dropped too much "
            f"({data[variant]:.3f} vs {data['without']:.3f})")
