"""Benchmark harness configuration.

Each benchmark reproduces one of the paper's tables or figures via the
experiment registry.  Runs are executed exactly once per session
(``benchmark.pedantic``): a "round" here is a full scientific experiment,
not a microbenchmark; repetition comes from the shared disk cache making
subsequent invocations cheap.

Profile selection: set ``REPRO_PROFILE`` (smoke | quick | paper) before
invoking pytest.  The default ``quick`` profile needs roughly an hour on
first run (training + attack crafting, all cached under .repro_cache);
subsequent runs complete in minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="session")
def run_exp():
    """Run one experiment by id (exactly once) and print its report."""

    def _run(benchmark, exp_id: str):
        report = benchmark.pedantic(run_experiment, args=(exp_id,),
                                    iterations=1, rounds=1)
        print()
        print(report)
        return report

    return _run
