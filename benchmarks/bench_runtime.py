#!/usr/bin/env python
"""Benchmark the parallel runtime: serial vs --jobs attack crafting.

Runs the smoke-profile attack grid twice against fresh caches — once
with ``jobs=1`` and once with ``jobs=N`` — and records wall-clock,
per-stage telemetry totals, and the cross-check that both paths produce
identical ``stable_hash`` values for every cached artifact.  Results are
written to ``BENCH_runtime.json`` at the repo root.

This is a standalone script (not collected by pytest): a "round" is a
full model-train + attack-sweep pipeline, and the serial/parallel runs
must not share a cache.

Usage:  PYTHONPATH=src python benchmarks/bench_runtime.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sweep_once(jobs: int, cache_dir: Path, telemetry_path: Path) -> dict:
    """Train + craft the smoke grid into a fresh cache; return metrics."""
    from repro.experiments import SMOKE, ExperimentContext
    from repro.experiments import sweeps
    from repro.runtime import configure_telemetry, load_events
    from repro.utils.cache import DiskCache, stable_hash

    configure_telemetry(telemetry_path)
    ctx = ExperimentContext("digits", profile=SMOKE,
                            cache=DiskCache(cache_dir), seed=0)
    t0 = time.perf_counter()
    summary = sweeps.precompute_attacks(ctx, jobs=jobs)
    wall_s = time.perf_counter() - t0

    hashes = {}
    for cell in sweeps.attack_grid(ctx):
        for slot, key in sweeps._cell_keys(ctx, cell).items():
            label = f"{sorted(cell.items())}/{slot}"
            hashes[label] = stable_hash(ctx.cache.load("attacks", key))
    stage_totals = {}
    for event in load_events(telemetry_path):
        duration = event.get("duration_s")
        if duration is not None:
            stage = event["stage"]
            stage_totals[stage] = stage_totals.get(stage, 0.0) + duration
    configure_telemetry(None)
    return {
        "jobs": jobs,
        "wall_s": round(wall_s, 3),
        "cells_computed": summary["computed"],
        "stage_totals_s": {k: round(v, 3)
                           for k, v in sorted(stage_totals.items())},
        "hashes": hashes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                        help="worker count for the parallel round")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_runtime.json"))
    args = parser.parse_args(argv)
    jobs = max(2, args.jobs)

    rounds = []
    with tempfile.TemporaryDirectory(prefix="bench_runtime_") as tmp:
        tmp = Path(tmp)
        for n in (1, jobs):
            print(f"[bench_runtime] sweep with jobs={n} ...", flush=True)
            rounds.append(_sweep_once(n, tmp / f"cache_j{n}",
                                      tmp / f"telemetry_j{n}.jsonl"))
            print(f"[bench_runtime]   {rounds[-1]['wall_s']:.2f}s, "
                  f"{rounds[-1]['cells_computed']} cells", flush=True)

    serial, parallel = rounds
    identical = serial["hashes"] == parallel["hashes"]
    result = {
        "benchmark": "runtime parallel sweep (smoke profile, digits)",
        "cpu_count": os.cpu_count(),
        "serial": {k: v for k, v in serial.items() if k != "hashes"},
        "parallel": {k: v for k, v in parallel.items() if k != "hashes"},
        "speedup": round(serial["wall_s"] / max(parallel["wall_s"], 1e-9), 3),
        "hashes_identical": identical,
        "n_artifacts": len(serial["hashes"]),
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if not identical:
        print("[bench_runtime] FAIL: parallel artifacts differ from serial",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
