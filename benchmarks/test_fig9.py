"""Figure 9 — digits: EAD decomposition vs D+wide MagNet.

Paper's shape: widening the autoencoders does NOT stop EAD — the paper
reports ~70% of EAD examples still bypassing (best ASR even slightly
higher than the default variant, Table IV).
"""

import numpy as np


def test_fig9(benchmark, run_exp):
    report = run_exp(benchmark, "fig9")
    data = report.data
    dips = [np.array(curves["With detector & reformer"]).min()
            for key, curves in data.items() if "/" in str(key)]
    assert min(dips) < 0.8, "EAD should still leak through D+wide"
