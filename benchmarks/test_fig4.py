"""Figure 4 — digits: C&W defense decomposition for four variants.

Paper's shape (supplementary): for the C&W attack, combining detector
and reformer dominates each alone, which dominates no defense; the full
defense keeps accuracy high across the kappa sweep.
"""

import numpy as np


def test_fig4(benchmark, run_exp):
    report = run_exp(benchmark, "fig4")
    data = report.data
    for variant in ("default", "jsd", "wide", "wide_jsd"):
        curves = data[variant]
        none = np.array(curves["No defense"])
        det = np.array(curves["With detector"])
        ref = np.array(curves["With reformer"])
        full = np.array(curves["With detector & reformer"])
        # Identities of the decomposition (hold pointwise by definition).
        assert (det >= none - 1e-9).all()
        assert (full >= ref - 1e-9).all()
        # C&W fails against the full defense: accuracy stays high.
        assert full.mean() > 0.7, (
            f"{variant}: C&W should be largely defended "
            f"(mean acc {full.mean():.2f})")
        # No defense = undefended ASR ~ 100% → accuracy near zero.
        assert none.mean() < 0.35
