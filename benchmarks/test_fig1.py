"""Figure 1 — adversarial-example gallery with bypass marks.

Paper's shape: at a medium confidence, EAD produces more examples that
bypass the default MagNet than C&W does (the paper's Figure 1 marks the
C&W rows with red crosses).
"""


def test_fig1(benchmark, run_exp):
    report = run_exp(benchmark, "fig1")
    bypass = report.data["bypass"]
    assert set(bypass) == {"C&W", "EAD-EN", "EAD-L1"}
    ead_total = sum(bypass["EAD-EN"]) + sum(bypass["EAD-L1"])
    cw_total = 2 * sum(bypass["C&W"])
    assert ead_total >= cw_total, (
        f"gallery should show EAD bypassing at least as often as C&W "
        f"(EAD {ead_total} vs C&W {cw_total})")
