"""Table IV — best EAD attack success rate per MagNet variant (digits).

Paper's shape: even the hardened variants (JSD detectors, wider
autoencoders, both) fail to push EAD's best ASR anywhere near zero,
and larger beta (more L1 pressure) tends to attack better at the
default width.
"""

import numpy as np


def test_table4(benchmark, run_exp):
    report = run_exp(benchmark, "table4")
    data = report.data
    # Even the strongest variant leaves EAD a substantial ASR.
    strongest = min(
        max(data[f"{rule}/{beta:g}/{variant}"]
            for rule in ("en", "l1") for beta in (1e-2, 5e-2, 1e-1))
        for variant in ("default", "jsd", "wide", "wide_jsd")
    )
    assert strongest > 0.1, (
        f"every MagNet variant should remain vulnerable to EAD, "
        f"but the best-defended variant held EAD to {strongest:.2f}")
    # Larger beta should not collapse the attack (monotone-ish trend).
    default_small = data["en/0.001/default"]
    default_large = max(data["en/0.05/default"], data["en/0.1/default"])
    assert default_large >= default_small - 0.15
