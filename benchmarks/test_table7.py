"""Table VII — best EAD attack success rate per MagNet variant (objects).

Paper's shape: EAD keeps a high best-over-kappa ASR against both the
default and the widened CIFAR MagNet, growing with beta on the wide
variant (the paper reports up to ~94%).
"""


def test_table7(benchmark, run_exp):
    report = run_exp(benchmark, "table7")
    data = report.data
    for variant in ("default", "wide"):
        best = max(data[f"{rule}/{beta:g}/{variant}"]
                   for rule in ("en", "l1")
                   for beta in (1e-2, 5e-2, 1e-1))
        assert best > 0.15, (
            f"objects/{variant}: EAD best ASR {best:.2f} unexpectedly low")
