"""Ablation — oblivious vs gray-box C&W against the default MagNet.

The paper's point is that EAD needs only the *weak* oblivious threat
model, whereas Carlini & Wagner required the gray-box setting (attack
through the autoencoder) to break MagNet.  This ablation runs C&W both
ways on digits: obliviously crafted examples should be largely defended,
gray-box ones should survive the reformer far more often.
"""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2, graybox_model
from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_graybox_vs_oblivious(benchmark):
    def run():
        ctx = get_context("digits")
        x0, y0 = ctx.attack_seeds()
        x0, y0 = x0[:16], y0[:16]
        magnet = ctx.magnet("default")
        kappa = ctx.profile.kappas("digits")[1]

        oblivious = ctx.cw(kappa)
        surrogate = graybox_model(magnet, mode="reformed")
        graybox = CarliniWagnerL2(
            surrogate, kappa=kappa, binary_search_steps=3,
            max_iterations=100, initial_const=1.0, lr=5e-2).attack(x0, y0)

        rows, data = [], {}
        for name, result in (("oblivious", oblivious), ("gray-box", graybox)):
            decision = magnet.decide(result.x_adv[:16])
            reformer_beaten = float(
                (decision.labels_reformed != y0).mean())
            asr = magnet.attack_success_rate(result.x_adv[:16], y0)
            rows.append([name, 100 * result.success_rate,
                         100 * reformer_beaten, 100 * asr])
            data[name] = {"reformer_beaten": reformer_beaten, "asr": asr}
        print()
        print(format_table(
            ["threat model", "crafting succ %", "beats reformer %",
             "ASR vs full MagNet %"],
            rows, title=f"C&W: oblivious vs gray-box (digits, kappa={kappa:g})"))
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    # Gray-box C&W must beat the reformer far more often than oblivious C&W
    # (the detector may still catch it — that is the paper's [20] story).
    assert (data["gray-box"]["reformer_beaten"]
            >= data["oblivious"]["reformer_beaten"])
