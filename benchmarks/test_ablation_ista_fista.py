"""Ablation — ISTA (paper eq. (4)) vs FISTA (reference EAD) iterations.

The paper describes plain ISTA; the reference EAD implementation uses
FISTA momentum.  Both must produce working attacks; FISTA typically
converges to lower-distortion examples within the same iteration budget.
"""

import numpy as np
import pytest

from repro.attacks import EAD
from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_ista_vs_fista(benchmark):
    def run():
        ctx = get_context("digits")
        x0, y0 = ctx.attack_seeds()
        x0, y0 = x0[:16], y0[:16]
        kappa = ctx.profile.kappas("digits")[2]
        results = {}
        for method in ("ista", "fista"):
            attack = EAD(ctx.classifier, beta=1e-2, kappa=kappa,
                         binary_search_steps=3, max_iterations=100,
                         initial_const=1.0, lr=ctx.profile.ead_lr,
                         method=method)
            results[method] = attack.attack(x0, y0)
        rows = [[m, 100 * r.success_rate, r.mean_distortion("l1"),
                 r.mean_distortion("l2")] for m, r in results.items()]
        print()
        print(format_table(["method", "success %", "L1", "L2"], rows,
                           title=f"ISTA vs FISTA (digits, kappa={kappa:g})"))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    assert results["ista"].success_rate > 0.5
    assert results["fista"].success_rate > 0.5
    # FISTA should not be substantially weaker than ISTA.
    assert (results["fista"].success_rate
            >= results["ista"].success_rate - 0.2)
