"""Figure 6 — digits: EAD decomposition vs *default* MagNet, 8 panels.

Paper's shape: for EAD, the full defense leaks badly somewhere in the
sweep — neither the detector nor the reformer rescues the medium-kappa
region (the paper's "dip").
"""

import numpy as np


def test_fig6(benchmark, run_exp):
    report = run_exp(benchmark, "fig6")
    data = report.data
    dips = []
    for key, curves in data.items():
        if "/" not in str(key):
            continue
        full = np.array(curves["With detector & reformer"])
        det = np.array(curves["With detector"])
        none = np.array(curves["No defense"])
        assert (det >= none - 1e-9).all()
        dips.append(full.min())
    # At least one (beta, rule) panel shows a pronounced leak.
    assert min(dips) <= 0.8, (
        f"EAD should substantially degrade the default MagNet "
        f"(best panel dip only to {min(dips):.2f})")
