"""Ablation — benign corruption robustness of the defended pipeline.

A deployment-facing question the paper leaves open: how does MagNet
behave on *benign* distribution shift?  Its detectors reject inputs far
from the training manifold, so corrupted-but-legitimate images risk
being flagged.  This ablation measures classifier accuracy and MagNet
clean accuracy under increasing Gaussian noise and blur.
"""

import pytest

from repro.datasets.corruptions import corrupt
from repro.evaluation.reporting import format_table
from repro.experiments import get_context
from repro.nn.training import accuracy


def test_corruption_robustness(benchmark):
    def run():
        ctx = get_context("digits")
        x = ctx.splits.test.x[:300]
        y = ctx.splits.test.y[:300]
        magnet = ctx.magnet("default")
        rows, data = [], {}
        for corruption in ("gaussian_noise", "gaussian_blur"):
            for severity in (1, 3, 5):
                xc = corrupt(x, corruption, severity, seed=severity)
                raw = accuracy(ctx.classifier, xc, y)
                defended = magnet.clean_accuracy(xc, y)
                flagged = float(magnet.detect(xc).mean())
                rows.append([corruption, severity, 100 * raw,
                             100 * defended, 100 * flagged])
                data[(corruption, severity)] = {
                    "raw": raw, "defended": defended, "flagged": flagged}
        print()
        print(format_table(
            ["corruption", "severity", "raw acc %", "MagNet acc %",
             "flagged %"],
            rows, title="Benign corruption robustness (digits)"))
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    # Severity-5 noise must be flagged far more than severity-1.
    assert (data[("gaussian_noise", 5)]["flagged"]
            >= data[("gaussian_noise", 1)]["flagged"])
    # Defended accuracy can never exceed raw accuracy by definition...
    # (detector rejections only remove correct answers on benign data)
    for key, cell in data.items():
        assert cell["defended"] <= cell["raw"] + 1e-9
