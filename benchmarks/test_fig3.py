"""Figure 3 — objects: accuracy-vs-confidence for two MagNet variants.

Paper's shape: as on digits, EAD degrades MagNet's defense performance
substantially more than C&W on both the default and wide variants.
"""


def _min_curve(series):
    return min(v for v in series if v == v)


def test_fig3(benchmark, run_exp):
    report = run_exp(benchmark, "fig3")
    data = report.data
    for variant in ("default", "wide"):
        curves = data[variant]
        cw_min = _min_curve(curves["C&W L2 attack"])
        ead_min = min(_min_curve(curves["EAD-L1 beta=0.1"]),
                      _min_curve(curves["EAD-EN beta=0.1"]))
        # Synthetic-objects noise band: EAD must dip comparably to C&W.
        assert ead_min <= cw_min + 0.15, (
            f"objects/{variant}: EAD min acc {ead_min:.2f} vs "
            f"C&W {cw_min:.2f}")
        # And the defense must genuinely leak somewhere in the sweep.
        assert ead_min < 0.8
