"""Ablation — feature squeezing vs MagNet on the same attack batches.

The paper's reference [15] (Sharma & Chen 2018) shows EAD also bypasses
feature squeezing.  This ablation calibrates a feature-squeezing defense
on the same validation data and scores it on the cached C&W and EAD
batches, alongside MagNet.
"""

import pytest

from repro.defenses import FeatureSqueezing
from repro.evaluation.reporting import format_table
from repro.experiments import get_context


def test_feature_squeezing_comparison(benchmark):
    def run():
        ctx = get_context("digits")
        _, y0 = ctx.attack_seeds()
        magnet = ctx.magnet("default")
        fs = FeatureSqueezing(ctx.classifier, dataset="digits")
        fs.calibrate(ctx.splits.val.x, fpr=0.02)

        kappa = ctx.profile.kappas("digits")[2]
        batches = {
            "C&W": ctx.cw(kappa),
            "EAD-EN b=0.1": ctx.ead(1e-1, kappa)["en"],
            "EAD-L1 b=0.1": ctx.ead(1e-1, kappa)["l1"],
        }
        rows, data = [], {}
        for name, result in batches.items():
            magnet_asr = magnet.attack_success_rate(result.x_adv, y0)
            fs_asr = fs.attack_success_rate(result.x_adv, y0)
            rows.append([name, 100 * magnet_asr, 100 * fs_asr])
            data[name] = {"magnet": magnet_asr, "squeezing": fs_asr}
        clean = fs.clean_accuracy(ctx.splits.test.x[:300],
                                  ctx.splits.test.y[:300])
        print()
        print(format_table(
            ["attack", "MagNet ASR %", "FeatSqueeze ASR %"], rows,
            title=f"Defense comparison at kappa={kappa:g} "
                  f"(squeezing clean acc {100 * clean:.1f}%)"))
        data["clean_accuracy"] = clean
        return data

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    # The squeezing defense must be usable on clean data.
    assert data["clean_accuracy"] > 0.6
