#!/usr/bin/env python
"""Benchmark the observability layer's overhead: disabled vs enabled.

Two concerns, two modes:

* ``--quick`` — synthetic micro-benchmark suitable for CI: a hot loop
  of spans + counter increments + histogram observations, run with the
  sink disabled and with it enabled, plus the bare-loop baseline.
  Verifies instrumentation left in hot paths is near-free when off.
* default — the smoke-profile attack sweep (the real pipeline) run
  twice against fresh caches, once with observability disabled and once
  enabled, cross-checking that the cached artifacts are bitwise
  identical (``stable_hash``) — tracing must never change results.

Results are written to ``BENCH_obs.json`` at the repo root, including
the relative overhead of the enabled run; the acceptance budget for the
disabled path is <5% over baseline.

Usage:  PYTHONPATH=src python benchmarks/bench_obs.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Quick synthetic mode (CI)
# ----------------------------------------------------------------------
def _hot_loop(iterations: int) -> float:
    """The instrumented loop: span + counter + histogram per iteration."""
    from repro.obs import counter, histogram, span

    c = counter("bench/iterations")
    h = histogram("bench/values")
    t0 = time.perf_counter()
    for i in range(iterations):
        with span("bench/step", step=i):
            c.inc()
            h.observe(i * 0.001)
    return time.perf_counter() - t0


def _bare_loop(iterations: int) -> float:
    """The same loop shape with no instrumentation at all."""
    total = 0.0
    t0 = time.perf_counter()
    for i in range(iterations):
        total += i * 0.001
    return time.perf_counter() - t0


def _bench_quick(iterations: int) -> dict:
    from repro.obs import configure_observability

    configure_observability(None)
    _hot_loop(1000)                                   # warm up
    bare_s = _bare_loop(iterations)
    disabled_s = _hot_loop(iterations)

    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        configure_observability(Path(tmp) / "trace.jsonl")
        try:
            enabled_s = _hot_loop(iterations)
        finally:
            configure_observability(None)

    return {
        "mode": "quick",
        "iterations": iterations,
        "bare_loop_s": round(bare_s, 4),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_us_per_span": round(1e6 * disabled_s / iterations, 3),
        "enabled_us_per_span": round(1e6 * enabled_s / iterations, 3),
        "enabled_over_disabled": round(enabled_s / max(disabled_s, 1e-9), 2),
    }


# ----------------------------------------------------------------------
# Full pipeline mode
# ----------------------------------------------------------------------
def _sweep_once(cache_dir: Path, telemetry_path) -> dict:
    """Train + craft the smoke grid into a fresh cache; return metrics."""
    from repro.experiments import SMOKE, ExperimentContext, sweeps
    from repro.obs import configure_observability
    from repro.utils.cache import DiskCache, stable_hash

    configure_observability(telemetry_path)
    try:
        ctx = ExperimentContext("digits", profile=SMOKE,
                                cache=DiskCache(cache_dir), seed=0)
        t0 = time.perf_counter()
        sweeps.precompute_attacks(ctx, jobs=1)
        wall_s = time.perf_counter() - t0
        hashes = {}
        for cell in sweeps.attack_grid(ctx):
            for slot, key in sweeps._cell_keys(ctx, cell).items():
                label = f"{sorted(cell.items())}/{slot}"
                hashes[label] = stable_hash(ctx.cache.load("attacks", key))
    finally:
        configure_observability(None)
    return {"wall_s": round(wall_s, 3), "hashes": hashes}


def _bench_full() -> dict:
    from repro.obs import load_events

    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        tmp = Path(tmp)
        print("[bench_obs] sweep with observability disabled ...", flush=True)
        off = _sweep_once(tmp / "cache_off", None)
        print(f"[bench_obs]   {off['wall_s']:.2f}s", flush=True)
        print("[bench_obs] sweep with observability enabled ...", flush=True)
        trace_path = tmp / "trace.jsonl"
        on = _sweep_once(tmp / "cache_on", trace_path)
        n_events = len(load_events(trace_path))
        print(f"[bench_obs]   {on['wall_s']:.2f}s, {n_events} events",
              flush=True)

    overhead = on["wall_s"] / max(off["wall_s"], 1e-9) - 1.0
    return {
        "mode": "full",
        "disabled_wall_s": off["wall_s"],
        "enabled_wall_s": on["wall_s"],
        "overhead_pct": round(100.0 * overhead, 2),
        "events_recorded": n_events,
        "hashes_identical": off["hashes"] == on["hashes"],
        "n_artifacts": len(off["hashes"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="synthetic hot-loop mode (fast, for CI)")
    parser.add_argument("--iterations", type=int, default=200_000,
                        help="hot-loop iterations in --quick mode")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_obs.json"))
    args = parser.parse_args(argv)

    result = {"benchmark": "observability overhead (spans+metrics)",
              "cpu_count": os.cpu_count()}
    result.update(_bench_quick(args.iterations) if args.quick
                  else _bench_full())
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if result.get("hashes_identical") is False:
        print("[bench_obs] FAIL: tracing changed the computed artifacts",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
