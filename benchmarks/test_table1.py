"""Table I — comparison of C&W and EAD attacks on the default MagNet.

Paper's shape: on both datasets, EAD (any β) attains a far higher attack
success rate against the default MagNet than the pure-L2 C&W attack.
"""


def test_table1(benchmark, run_exp):
    report = run_exp(benchmark, "table1")
    data = report.data
    for ds in ("digits", "objects"):
        cw_asr = data[f"{ds}/cw"]["asr"]
        best_ead = max(
            data[f"{ds}/ead_{rule}_beta{beta:g}"]["asr"]
            for rule in ("en", "l1")
            for beta in (1e-3, 1e-2, 5e-2, 1e-1)
            if f"{ds}/ead_{rule}_beta{beta:g}" in data
        )
        # The headline claim: L1-based EAD beats L2-based C&W vs MagNet.
        # (On the synthetic objects task the margin is small, so allow a
        # noise band there; digits must show a strict win.)
        slack = 0.0 if ds == "digits" else 0.06
        assert best_ead > cw_asr - slack, (
            f"{ds}: EAD best ASR {best_ead:.2f} should exceed "
            f"C&W ASR {cw_asr:.2f} (slack {slack})")
