"""Figure 12 — digits: MSE- vs MAE-trained autoencoders.

Paper's shape: switching the reconstruction loss from MSE to MAE leaves
the picture unchanged — both defend C&W but stay vulnerable to EAD.
The vulnerability is therefore not an artifact of the L2 training loss.
"""


def _min_curve(series):
    return min(v for v in series if v == v)


def test_fig12(benchmark, run_exp):
    report = run_exp(benchmark, "fig12")
    data = report.data
    for loss in ("mse", "mae"):
        curves = data[loss]
        cw_min = _min_curve(curves["C&W L2 attack"])
        ead_min = min(_min_curve(v) for k, v in curves.items()
                      if k.startswith("EAD"))
        assert ead_min <= cw_min + 0.05, (
            f"{loss}-trained AEs: EAD should attack at least as well as "
            f"C&W (EAD {ead_min:.2f} vs C&W {cw_min:.2f})")
