#!/usr/bin/env python
"""Benchmark the masked batch attack engine against the per-example path.

Runs EAD and C&W-L2 over the same seed batch twice — ``batch_mode=
"per_example"`` (the reference lane-at-a-time engine) and ``batch_mode=
"batched"`` (the wide masked engine) — and reports wall time, model
dispatch counts (via the ``attack/dispatches`` counter) and the
resulting speedup.  Success masks must agree between the two engines;
the acceptance budget is a >=3x speedup on the EAD stage at batch >= 32.

The wall-time speedup comes from two sources: amortising the
per-dispatch Python/graph overhead across all lanes, and letting BLAS
parallelise the wide GEMMs.  On a single-core host the second source
vanishes and the achievable ratio is bounded by (overhead + per-lane
compute) / per-lane compute — about 2.6x for the digits classifier —
so the wall-time floor is relaxed to ``SINGLE_CORE_FLOOR`` there.  The
structural win is host-independent and checked unconditionally: the
per-example engine must issue ~batch-times more model dispatches than
the batched engine.

* ``--quick`` — reduced optimization budget suitable for CI.
* default — the smoke-profile budget (3 binary-search steps, 50
  iterations), closer to real sweep cells.

Results are written to ``BENCH_attacks.json`` at the repo root.

Usage:  PYTHONPATH=src python benchmarks/bench_attacks.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SPEEDUP_FLOOR = 3.0
# Single-core ceiling is ~2.6x (no BLAS parallelism for the wide GEMMs);
# 2.0 leaves margin for scheduler noise on shared CI boxes.
SINGLE_CORE_FLOOR = 2.0


def _seed_batch(batch: int):
    """Train a small digits classifier and pick correctly-classified seeds."""
    import numpy as np

    from repro.attacks import logits_of
    from repro.datasets import load_digit_splits
    from repro.models import ClassifierSpec, ModelZoo
    from repro.utils.cache import DiskCache

    splits = load_digit_splits(n_train=700, n_val=150, n_test=300, seed=7)
    with tempfile.TemporaryDirectory(prefix="bench_attacks_") as tmp:
        zoo = ModelZoo(splits, cache=DiskCache(tmp))
        model = zoo.classifier(ClassifierSpec(dataset="digits", epochs=6))
    preds = logits_of(model, splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == splits.test.y)[:batch]
    if idx.shape[0] < batch:
        raise SystemExit(f"only {idx.shape[0]} correctly-classified seeds "
                         f"available, need {batch}")
    return model, splits.test.x[idx], splits.test.y[idx]


def _measure(make_attack, x0, y0, mode, repeats):
    """Best-of-``repeats`` engine run: wall time, dispatch delta, result.

    The minimum over repeats filters scheduler noise on busy CI boxes;
    dispatch counts are deterministic, so one run's delta is reported.
    """
    from repro.obs import counter

    dispatches = counter("attack/dispatches")
    wall_s, delta, result = float("inf"), 0, None
    for _ in range(repeats):
        before = dispatches.value
        t0 = time.perf_counter()
        result = make_attack(mode).attack(x0, y0)
        elapsed = time.perf_counter() - t0
        wall_s, delta = min(wall_s, elapsed), dispatches.value - before
    return wall_s, delta, result


def _bench_attack(name, make_attack, x0, y0, repeats) -> dict:
    import numpy as np

    print(f"[bench_attacks] {name}: per_example ...", flush=True)
    lane_s, lane_disp, lane_res = _measure(make_attack, x0, y0,
                                           "per_example", repeats)
    print(f"[bench_attacks]   {lane_s:.2f}s, {lane_disp} dispatches",
          flush=True)
    print(f"[bench_attacks] {name}: batched ...", flush=True)
    wide_s, wide_disp, wide_res = _measure(make_attack, x0, y0,
                                           "batched", repeats)
    print(f"[bench_attacks]   {wide_s:.2f}s, {wide_disp} dispatches",
          flush=True)

    return {
        "per_example_wall_s": round(lane_s, 3),
        "batched_wall_s": round(wide_s, 3),
        "speedup": round(lane_s / max(wide_s, 1e-9), 2),
        "per_example_dispatches": int(lane_disp),
        "batched_dispatches": int(wide_disp),
        "dispatch_ratio": round(lane_disp / max(wide_disp, 1), 1),
        "success_rate": round(wide_res.success_rate, 3),
        "success_masks_agree": bool(
            np.array_equal(lane_res.success, wide_res.success)),
        "mean_lane_iterations": round(float(wide_res.iterations.mean()), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budget (fast, for CI)")
    parser.add_argument("--batch", type=int, default=32,
                        help="seed batch size (acceptance target is >=32)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (min is reported)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_attacks.json"))
    args = parser.parse_args(argv)

    from repro.attacks import EAD, CarliniWagnerL2

    budget = (dict(binary_search_steps=2, max_iterations=20) if args.quick
              else dict(binary_search_steps=3, max_iterations=50))
    print(f"[bench_attacks] training classifier, batch={args.batch}, "
          f"budget={budget}", flush=True)
    model, x0, y0 = _seed_batch(args.batch)

    def make_ead(mode):
        return EAD(model, beta=1e-1, kappa=0.0, initial_const=1.0,
                   batch_mode=mode, **budget)

    def make_cw(mode):
        return CarliniWagnerL2(model, kappa=0.0, initial_const=1.0, lr=5e-2,
                               batch_mode=mode, **budget)

    cpus = os.cpu_count() or 1
    floor = SPEEDUP_FLOOR if cpus > 1 else SINGLE_CORE_FLOOR
    result = {
        "benchmark": "batched vs per-example attack engine",
        "mode": "quick" if args.quick else "smoke",
        "batch": args.batch,
        "cpu_count": cpus,
        "speedup_floor": floor,
        "repeats": args.repeats,
        **budget,
        "ead": _bench_attack("ead", make_ead, x0, y0, args.repeats),
        "cw_l2": _bench_attack("cw_l2", make_cw, x0, y0, args.repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))

    failures = []
    for name in ("ead", "cw_l2"):
        if not result[name]["success_masks_agree"]:
            failures.append(f"{name}: engines disagree on success masks")
        # abort_early trims lanes asymmetrically, so the ratio can dip a
        # little under batch; 0.75x still catches a broken masked loop.
        if result[name]["dispatch_ratio"] < 0.75 * args.batch:
            failures.append(
                f"{name}: dispatch ratio {result[name]['dispatch_ratio']}x "
                f"below ~batch ({args.batch}) — masked engine not "
                f"amortising dispatches")
    if args.batch >= 32 and result["ead"]["speedup"] < floor:
        failures.append(f"ead: speedup {result['ead']['speedup']}x below "
                        f"the {floor}x acceptance floor "
                        f"({cpus} cpu{'s' if cpus > 1 else ''})")
    for failure in failures:
        print(f"[bench_attacks] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
