"""Setup shim so the package can be installed editable without the
`wheel` package (this environment is offline): `python setup.py develop`.
`pip install -e . --no-build-isolation` also works once `wheel` exists."""
from setuptools import setup

setup()
