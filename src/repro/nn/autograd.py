"""A reverse-mode automatic-differentiation engine over numpy ndarrays.

This module is the substrate the whole reproduction stands on: the paper's
attacks (C&W, EAD) need gradients of scalar attack losses with respect to
*input images*, and the defense needs trainable classifiers and
autoencoders.  The original work used TensorFlow; this is a from-scratch
replacement with the same contract — build a computation graph eagerly,
then call :meth:`Tensor.backward` to populate ``.grad`` on every leaf that
``requires_grad``.

Design notes
------------
* A :class:`Tensor` wraps one ndarray plus an optional backward closure.
  Ops record ``(parent, vjp)`` pairs, where ``vjp`` maps the upstream
  gradient to this parent's contribution (a vector-Jacobian product).
* Broadcasting is supported everywhere through :func:`unbroadcast`,
  which sums gradient contributions back down to the parent's shape.
* ``no_grad()`` disables graph construction, which matters for the
  evaluation loops (defense inference over thousands of images).
* Gradients accumulate; call :meth:`Tensor.zero_grad` (or use the
  optimizers, which do it for you) between backward passes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.backend import get_backend

DEFAULT_DTYPE = np.float32

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Forward passes inside the block behave identically but record no
    backward closures, so they are cheaper and cannot be backpropagated
    through.  Mirrors ``torch.no_grad``.
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether graph construction is currently active."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    If an op broadcast a parent of shape ``shape`` up to ``grad.shape``,
    the parent's gradient is the sum of ``grad`` over every broadcast
    axis.
    """
    if grad.shape == shape:
        return grad
    # Leading axes added by broadcasting are summed away entirely.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Axes that were size-1 in the parent are summed with keepdims.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray node in a dynamically built computation graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 dtype: Optional[np.dtype] = None, name: Optional[str] = None):
        if isinstance(data, Tensor):
            raise TypeError("wrapping a Tensor in a Tensor is almost certainly a bug")
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        # List of (parent_tensor, vjp_fn) recorded by the op that made us.
        self._parents: List[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = []
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a 0-d / 1-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor to every reachable leaf.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        Leaf tensors with ``requires_grad`` accumulate into ``.grad``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        order = _topological_order(self)
        # Gradients flowing into each node during this traversal.
        flowing = {id(self): grad}
        for node in order:
            node_grad = flowing.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                if node.grad is None:
                    node.grad = node_grad.astype(node.data.dtype, copy=True)
                else:
                    node.grad = node.grad + node_grad
            for parent, vjp in node._parents:
                if not _needs_grad(parent):
                    continue
                contribution = vjp(node_grad)
                key = id(parent)
                if key in flowing:
                    flowing[key] = flowing[key] + contribution
                else:
                    flowing[key] = contribution

    # ------------------------------------------------------------------
    # Arithmetic operators (graph-building)
    # ------------------------------------------------------------------
    def __add__(self, other):
        return add(self, other)

    def __radd__(self, other):
        return add(other, self)

    def __sub__(self, other):
        return sub(self, other)

    def __rsub__(self, other):
        return sub(other, self)

    def __mul__(self, other):
        return mul(self, other)

    def __rmul__(self, other):
        return mul(other, self)

    def __truediv__(self, other):
        return div(self, other)

    def __rtruediv__(self, other):
        return div(other, self)

    def __neg__(self):
        return neg(self)

    def __pow__(self, exponent):
        return power(self, exponent)

    def __matmul__(self, other):
        return matmul(self, other)

    def __getitem__(self, index):
        return take(self, index)

    # Convenience methods mirroring the free functions.
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        return transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return transpose(self, None)

    def abs(self) -> "Tensor":
        return abs_(self)

    def exp(self) -> "Tensor":
        return exp(self)

    def log(self) -> "Tensor":
        return log(self)

    def clip(self, lo: float, hi: float) -> "Tensor":
        return clip(self, lo, hi)


def _needs_grad(t: Tensor) -> bool:
    return t.requires_grad or bool(t._parents)


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return nodes reachable from ``root`` in reverse-topological order."""
    order: List[Tensor] = []
    visited = set()
    # Iterative DFS to survive deep graphs (e.g. 1000-iteration attacks
    # would overflow a recursive implementation if graphs were retained).
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent, _vjp in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(value: Union[Tensor, ArrayLike], dtype=None) -> Tensor:
    """Coerce ndarray/scalar to a non-differentiable Tensor (pass Tensors through)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=False, dtype=dtype)


def _make(data: np.ndarray,
          parents: Iterable[Tuple[Tensor, Callable[[np.ndarray], np.ndarray]]]) -> Tensor:
    """Build an op output, recording parents only when grad mode is on."""
    out = Tensor(data, dtype=data.dtype)
    if _grad_enabled:
        out._parents = [(p, fn) for p, fn in parents if _needs_grad(p)]
    return out


# ----------------------------------------------------------------------
# Primitive ops
# ----------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data
    return _make(data, [
        (a, lambda g: unbroadcast(g, a.shape)),
        (b, lambda g: unbroadcast(g, b.shape)),
    ])


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data - b.data
    return _make(data, [
        (a, lambda g: unbroadcast(g, a.shape)),
        (b, lambda g: unbroadcast(-g, b.shape)),
    ])


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data
    return _make(data, [
        (a, lambda g: unbroadcast(g * b.data, a.shape)),
        (b, lambda g: unbroadcast(g * a.data, b.shape)),
    ])


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data / b.data
    return _make(data, [
        (a, lambda g: unbroadcast(g / b.data, a.shape)),
        (b, lambda g: unbroadcast(-g * a.data / (b.data ** 2), b.shape)),
    ])


def neg(a) -> Tensor:
    a = as_tensor(a)
    return _make(-a.data, [(a, lambda g: -g)])


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a python-scalar exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() supports scalar exponents only")
    exponent = float(exponent)
    data = a.data ** exponent
    return _make(data, [
        (a, lambda g: g * exponent * a.data ** (exponent - 1.0)),
    ])


def exp(a) -> Tensor:
    a = as_tensor(a)
    data = np.exp(a.data)
    return _make(data, [(a, lambda g: g * data)])


def log(a) -> Tensor:
    a = as_tensor(a)
    data = np.log(a.data)
    return _make(data, [(a, lambda g: g / a.data)])


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    data = np.sqrt(a.data)
    return _make(data, [(a, lambda g: g * 0.5 / data)])


def abs_(a) -> Tensor:
    """Elementwise absolute value; subgradient sign(x) (0 at 0)."""
    a = as_tensor(a)
    data = np.abs(a.data)
    return _make(data, [(a, lambda g: g * np.sign(a.data))])


def clip(a, lo: float, hi: float) -> Tensor:
    """Clip to [lo, hi]; gradient passes only through the interior."""
    a = as_tensor(a)
    data = np.clip(a.data, lo, hi)
    inside = ((a.data >= lo) & (a.data <= hi)).astype(a.data.dtype)
    return _make(data, [(a, lambda g: g * inside)])


def maximum(a, b) -> Tensor:
    """Elementwise max; gradient is split 50/50 on exact ties."""
    a, b = as_tensor(a), as_tensor(b)
    data = np.maximum(a.data, b.data)
    a_wins = (a.data > b.data).astype(data.dtype)
    ties = (a.data == b.data).astype(data.dtype) * 0.5
    wa, wb = a_wins + ties, (1.0 - a_wins) - ties
    return _make(data, [
        (a, lambda g: unbroadcast(g * wa, a.shape)),
        (b, lambda g: unbroadcast(g * wb, b.shape)),
    ])


def minimum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = np.minimum(a.data, b.data)
    a_wins = (a.data < b.data).astype(data.dtype)
    ties = (a.data == b.data).astype(data.dtype) * 0.5
    wa, wb = a_wins + ties, (1.0 - a_wins) - ties
    return _make(data, [
        (a, lambda g: unbroadcast(g * wa, a.shape)),
        (b, lambda g: unbroadcast(g * wb, b.shape)),
    ])


def relu(a) -> Tensor:
    a = as_tensor(a)
    # Single-pass forward; the backward mask is recomputed lazily so
    # forward-only passes never pay for it.  Dispatches through the
    # active kernel backend's elementwise contract (repro.nn.backend);
    # every registered backend keeps these bitwise-identical.
    be = get_backend()
    return _make(be.relu(a.data),
                 [(a, lambda g: g * be.relu_grad_mask(a.data))])


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    """max(x, slope*x); gradient is 1 above zero, ``negative_slope`` below."""
    a = as_tensor(a)
    slope = float(negative_slope)
    factor = np.where(a.data > 0, 1.0, slope).astype(a.data.dtype)
    return _make(a.data * factor, [(a, lambda g: g * factor)])


def softplus(a) -> Tensor:
    """log(1 + exp(x)), computed stably; gradient is sigmoid(x)."""
    a = as_tensor(a)
    x = a.data
    data = (np.maximum(x, 0) + np.log1p(np.exp(-np.abs(x)))).astype(x.dtype)
    sig = _stable_sigmoid(x)
    return _make(data, [(a, lambda g: g * sig)])


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic function without overflow in either tail."""
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z)).astype(x.dtype)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    data = get_backend().sigmoid(a.data)
    return _make(data, [(a, lambda g: g * data * (1.0 - data))])


def tanh(a) -> Tensor:
    a = as_tensor(a)
    data = get_backend().tanh(a.data)
    return _make(data, [(a, lambda g: g * (1.0 - data ** 2))])


def matmul(a, b) -> Tensor:
    """Matrix product; supports 2-D and leading-batch-dim operands."""
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def grad_a(g):
        ga = g @ np.swapaxes(b.data, -1, -2)
        return unbroadcast(ga, a.shape)

    def grad_b(g):
        gb = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(gb, b.shape)

    return _make(data, [(a, grad_a), (b, grad_b)])


def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def grad_fn(g):
        if axis is None:
            return np.broadcast_to(g, a.shape).astype(a.data.dtype)
        g_expanded = g
        if not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % a.ndim for ax in axes)
            for ax in sorted(axes):
                g_expanded = np.expand_dims(g_expanded, ax)
        return np.broadcast_to(g_expanded, a.shape).astype(a.data.dtype)

    return _make(np.asarray(data), [(a, grad_fn)])


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax % a.ndim] for ax in axes]))
    return sum_(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    data = a.data.reshape(shape)
    return _make(data, [(a, lambda g: g.reshape(a.shape))])


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)
    return _make(data, [(a, lambda g: np.transpose(g, inverse))])


def take(a, index) -> Tensor:
    """Fancy/basic indexing with scatter-add backward."""
    a = as_tensor(a)
    data = a.data[index]

    def grad_fn(g):
        out = np.zeros_like(a.data)
        np.add.at(out, index, g)
        return out

    return _make(np.asarray(data), [(a, grad_fn)])


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    parents = []
    offset = 0
    for t in tensors:
        width = t.shape[axis]
        start = offset

        def grad_fn(g, start=start, width=width):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, start + width)
            return g[tuple(slicer)]

        parents.append((t, grad_fn))
        offset += width
    return _make(data, parents)


def pad2d(a, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial axes of an (N, C, H, W) tensor."""
    a = as_tensor(a)
    if padding == 0:
        return a
    p = int(padding)
    data = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def grad_fn(g):
        return g[:, :, p:-p, p:-p]

    return _make(data, [(a, grad_fn)])


def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select by a boolean ndarray (condition is not differentiable)."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    mask = cond.astype(data.dtype)
    return _make(data, [
        (a, lambda g: unbroadcast(g * mask, a.shape)),
        (b, lambda g: unbroadcast(g * (1.0 - mask), b.shape)),
    ])
