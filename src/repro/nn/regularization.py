"""Regularization layers: Dropout and BatchNorm2D.

Not required by the paper's core pipeline (the MagNet nets use neither)
but part of any usable training substrate — the custom-model example and
downstream users training their own classifiers need them.  Both honor
``Module.training`` (set by ``model.train()`` / ``model.eval()``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, _make, as_tensor, is_grad_enabled
from repro.nn.layers import Module
from repro.utils.rng import rng_from_seed


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``p`` at train
    time, scaling survivors by ``1/(1-p)``; identity at eval time."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng_from_seed(seed)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        data = x.data * mask
        return _make(data, [(x, lambda g: g * mask)])

    def __repr__(self):
        return f"Dropout(p={self.p:g})"


class BatchNorm2D(Module):
    """Batch normalization over the channel axis of NCHW tensors.

    Training mode normalizes with batch statistics and updates running
    estimates; eval mode uses the running estimates.  ``gamma``/``beta``
    are learnable.
    """

    def __init__(self, num_channels: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_channels = int(num_channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = self.register_parameter(
            "gamma", Tensor(np.ones(num_channels, dtype=np.float32)))
        self.beta = self.register_parameter(
            "beta", Tensor(np.zeros(num_channels, dtype=np.float32)))
        # Running statistics are buffers, not parameters.
        self.running_mean = np.zeros(num_channels, dtype=np.float32)
        self.running_var = np.ones(num_channels, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"expected NCHW input with {self.num_channels} channels, "
                f"got shape {x.shape}")
        if self.training:
            axes = (0, 2, 3)
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean).astype(np.float32)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var

        m = mean[None, :, None, None]
        v = var[None, :, None, None]
        inv_std = 1.0 / np.sqrt(v + self.eps)
        x_hat = (x.data - m) * inv_std
        out = x_hat * self.gamma.data[None, :, None, None] \
            + self.beta.data[None, :, None, None]

        if not is_grad_enabled():
            return Tensor(out.astype(x.dtype))

        n = x.shape[0] * x.shape[2] * x.shape[3]
        gamma_b = self.gamma.data[None, :, None, None]

        if self.training:
            def grad_x(g):
                # Standard batchnorm backward through batch statistics.
                g_hat = g * gamma_b
                sum_g = g_hat.sum(axis=(0, 2, 3), keepdims=True)
                sum_gx = (g_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                return inv_std * (g_hat - sum_g / n - x_hat * sum_gx / n)
        else:
            def grad_x(g):
                return g * gamma_b * inv_std

        def grad_gamma(g):
            return (g * x_hat).sum(axis=(0, 2, 3))

        def grad_beta(g):
            return g.sum(axis=(0, 2, 3))

        return _make(out.astype(x.dtype), [
            (x, grad_x), (self.gamma, grad_gamma), (self.beta, grad_beta)])

    def __repr__(self):
        return f"BatchNorm2D({self.num_channels})"
