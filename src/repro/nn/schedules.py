"""Learning-rate schedules and gradient clipping.

The attacks already embed their published schedules (C&W uses constant
Adam, EAD uses square-root polynomial decay); these utilities give model
*training* the same flexibility, and are exercised by the training-loop
extensions and the custom-model example.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.optim import Optimizer


class LRSchedule:
    """Base schedule: maps epoch index -> learning rate."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = float(base_lr)

    def lr_at(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, epoch: int) -> float:
        """Set the optimizer's lr for this epoch; returns the value."""
        lr = self.lr_at(epoch)
        optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    """No decay."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1):
        super().__init__(base_lr)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing from base_lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0):
        super().__init__(base_lr)
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_lr < 0 or min_lr > base_lr:
            raise ValueError("min_lr must be in [0, base_lr]")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * t))


class SqrtDecayLR(LRSchedule):
    """The EAD paper's square-root polynomial decay, for completeness:
    ``lr_k = base * sqrt(1 - k / total)``."""

    def __init__(self, base_lr: float, total_epochs: int):
        super().__init__(base_lr)
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.total_epochs = int(total_epochs)

    def lr_at(self, epoch: int) -> float:
        frac = max(1.0 - epoch / self.total_epochs, 0.0)
        return self.base_lr * float(np.sqrt(frac))


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (torch convention).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params: List[Tensor] = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


def clip_grad_value(params: Iterable[Tensor], max_value: float) -> None:
    """Clamp every gradient element into [-max_value, max_value]."""
    if max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    for p in params:
        if p.grad is not None:
            p.grad = np.clip(p.grad, -max_value, max_value)
