"""Training losses.

The reproduction needs three losses:

* softmax cross-entropy — classifier training;
* mean squared error — MagNet's default autoencoder reconstruction loss;
* mean absolute error — the paper's MAE-trained autoencoder variant
  (Figures 12 and 13).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor, abs_, as_tensor


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy from raw logits.

    Args:
        logits: ``(N, K)`` unnormalized class scores.
        labels: ``(N,)`` integer class labels.
    """
    logits = as_tensor(logits)
    log_probs = F.log_softmax(logits, axis=-1)
    picked = F.select_index(log_probs, labels)
    return -picked.mean()


def mse(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae(prediction: Tensor, target) -> Tensor:
    """Mean absolute error over all elements (the paper's L1 reconstruction loss)."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return abs_(prediction - target).mean()


LOSSES = {"cross_entropy": cross_entropy, "mse": mse, "mae": mae}


def get_loss(name: str):
    """Look up a loss by name; raises KeyError with options listed."""
    try:
        return LOSSES[name]
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(LOSSES)}") from None
