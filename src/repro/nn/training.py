"""Minibatch training loop.

One :class:`Trainer` serves every model in the reproduction: the MNIST and
CIFAR stand-in classifiers (cross-entropy) and MagNet's autoencoders
(MSE or MAE reconstruction, where the target is the input itself —
pass ``targets=None``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.backend import flush_kernel_events, use_backend
from repro.nn.layers import Module
from repro.nn.losses import get_loss
from repro.nn.optim import Adam, Optimizer
from repro.utils.logging import get_logger
from repro.utils.rng import rng_from_seed

log = get_logger(__name__)


def iterate_minibatches(x: np.ndarray, y: Optional[np.ndarray], batch_size: int,
                        rng: Optional[np.random.Generator] = None,
                        shuffle: bool = True) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield (x_batch, y_batch) pairs; y may be None (autoencoder training)."""
    n = x.shape[0]
    if y is not None and y.shape[0] != n:
        raise ValueError(f"x has {n} rows but y has {y.shape[0]}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], (y[idx] if y is not None else None)


@dataclasses.dataclass
class EpochStats:
    """Loss/accuracy record for one epoch."""
    epoch: int
    train_loss: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None
    seconds: float = 0.0


@dataclasses.dataclass
class TrainingHistory:
    """Full record of a fit() call."""
    epochs: List[EpochStats] = dataclasses.field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.epochs[-1].train_loss if self.epochs else float("nan")

    @property
    def best_val_accuracy(self) -> float:
        accs = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        return max(accs) if accs else float("nan")


class Trainer:
    """Generic minibatch trainer.

    Args:
        model: module to train.
        loss: loss name (``cross_entropy``, ``mse``, ``mae``) or a callable
            ``loss(prediction, target) -> Tensor``.
        optimizer: optional pre-built optimizer (default Adam(lr=1e-3)).
        seed: controls minibatch shuffling.
        backend: kernel backend name for all fit/evaluate dispatches
            (``None``: the ambient selection).  Training numerics follow
            the backend's equivalence contract — bitwise for
            ``numpy``/``buffered``, tolerance-bounded for ``fft``.
    """

    def __init__(self, model: Module, loss: str = "cross_entropy",
                 optimizer: Optional[Optimizer] = None, lr: float = 1e-3,
                 seed: int = 0, backend: Optional[str] = None):
        self.model = model
        self.loss_fn: Callable = get_loss(loss) if isinstance(loss, str) else loss
        self.loss_name = loss if isinstance(loss, str) else getattr(loss, "__name__", "custom")
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.rng = rng_from_seed(seed)
        self.backend = backend

    def fit(self, x: np.ndarray, y: Optional[np.ndarray] = None, *,
            epochs: int = 5, batch_size: int = 64,
            x_val: Optional[np.ndarray] = None, y_val: Optional[np.ndarray] = None,
            lr_schedule=None, early_stopping_patience: Optional[int] = None,
            grad_clip_norm: Optional[float] = None,
            verbose: bool = True) -> TrainingHistory:
        """Train; ``y=None`` means autoencoder mode (target = input).

        Optional knobs:

        * ``lr_schedule`` — an :class:`~repro.nn.schedules.LRSchedule`
          applied at the start of each epoch;
        * ``early_stopping_patience`` — stop after this many epochs
          without val-loss improvement (requires ``x_val``);
        * ``grad_clip_norm`` — global-norm gradient clipping per step.
        """
        if early_stopping_patience is not None and x_val is None:
            raise ValueError("early stopping requires validation data")
        from repro.obs import histogram, span

        history = TrainingHistory()
        best_val = float("inf")
        stale = 0
        epoch_seconds = histogram("train/epoch_seconds")
        self.model.train()
        with use_backend(self.backend), \
                span(f"fit/{self.loss_name}", batch=min(batch_size, len(x)),
                     samples=len(x)) as fit_sp:
            for epoch in range(1, epochs + 1):
                if lr_schedule is not None:
                    lr_schedule.apply(self.optimizer, epoch - 1)
                t0 = time.time()
                losses = []
                for xb, yb in iterate_minibatches(x, y, batch_size,
                                                  rng=self.rng):
                    target = yb if yb is not None else xb
                    self.optimizer.zero_grad()
                    pred = self.model(Tensor(xb))
                    loss = self.loss_fn(pred, target)
                    loss.backward()
                    if grad_clip_norm is not None:
                        from repro.nn.schedules import clip_grad_norm

                        clip_grad_norm(self.model.parameters(), grad_clip_norm)
                    self.optimizer.step()
                    losses.append(loss.item())
                stats = EpochStats(epoch=epoch,
                                   train_loss=float(np.mean(losses)),
                                   seconds=time.time() - t0)
                epoch_seconds.observe(stats.seconds)
                if x_val is not None:
                    stats.val_loss = self.evaluate_loss(x_val, y_val)
                    if y_val is not None and self.loss_name == "cross_entropy":
                        stats.val_accuracy = accuracy(self.model, x_val, y_val)
                history.epochs.append(stats)
                if verbose:
                    msg = f"epoch {epoch}/{epochs} loss={stats.train_loss:.4f}"
                    if stats.val_loss is not None:
                        msg += f" val_loss={stats.val_loss:.4f}"
                    if stats.val_accuracy is not None:
                        msg += f" val_acc={stats.val_accuracy:.3f}"
                    log.info(msg)
                if early_stopping_patience is not None:
                    if (stats.val_loss is not None
                            and stats.val_loss < best_val - 1e-9):
                        best_val = stats.val_loss
                        stale = 0
                    else:
                        stale += 1
                        if stale > early_stopping_patience:
                            log.info("early stopping at epoch %d", epoch)
                            break
            fit_sp["epochs"] = len(history.epochs)
        # Fold the conv dispatch counts/wall-time accumulated by this fit
        # into the telemetry log (per-backend nn/kernels/<name> events).
        flush_kernel_events()
        self.model.eval()
        return history

    def evaluate_loss(self, x: np.ndarray, y: Optional[np.ndarray],
                      batch_size: int = 256) -> float:
        """Mean loss over a dataset without building graphs."""
        losses, weights = [], []
        with use_backend(self.backend), no_grad():
            for xb, yb in iterate_minibatches(x, y, batch_size, shuffle=False):
                target = yb if yb is not None else xb
                pred = self.model(Tensor(xb))
                losses.append(self.loss_fn(pred, target).item())
                weights.append(xb.shape[0])
        return float(np.average(losses, weights=weights))


def predict_logits(model: Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Forward a dataset in batches without graph construction."""
    outs = []
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            outs.append(model(Tensor(x[start:start + batch_size])).data)
    return np.concatenate(outs, axis=0) if outs else np.zeros((0,))


def predict_labels(model: Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Argmax class predictions (empty int64 array for an empty batch)."""
    if np.asarray(x).shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return predict_logits(model, x, batch_size).argmax(axis=1)


def accuracy(model: Module, x: np.ndarray, y: np.ndarray,
             batch_size: int = 256) -> float:
    """Top-1 accuracy of a classifier on (x, y)."""
    preds = predict_labels(model, x, batch_size)
    return float((preds == np.asarray(y)).mean())
