"""Layer and model containers.

The design mirrors familiar frameworks: a :class:`Module` owns named
parameters and submodules; :class:`Sequential` chains modules; concrete
layers wrap the ops in :mod:`repro.nn.functional`.  Models expose
``state_dict`` / ``load_state_dict`` for the disk-backed model zoo.

A key requirement from the paper's attacks is *differentiability with
respect to the input*: calling a model on a ``requires_grad`` input tensor
and backpropagating a scalar loss yields the input gradient the C&W and
EAD optimizers consume.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init as initializers
from repro.nn.autograd import Tensor, as_tensor, relu, sigmoid, tanh


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        if not isinstance(tensor, Tensor):
            raise TypeError(f"parameter {name!r} must be a Tensor")
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        if not isinstance(module, Module):
            raise TypeError(f"submodule {name!r} must be a Module")
        self._modules[name] = module
        return module

    def __setattr__(self, name, value):
        if isinstance(value, Module) and name not in ("_modules",):
            object.__setattr__(self, name, value)
            self._modules[name] = value
        else:
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable parameters in this module and its submodules."""
        return [p for _name, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and state
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → ndarray snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict`; strict matching."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {value.shape}, model {param.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Union[Tensor, np.ndarray]) -> Tensor:
        return self.forward(as_tensor(x))


class Sequential(Module):
    """Chain modules; ``Sequential(a, b, c)(x) == c(b(a(x)))``."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = []
        for i, layer in enumerate(layers):
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Dense(Module):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 weight_init: str = "glorot_uniform", bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        init_fn = initializers.get_initializer(weight_init)
        self.weight = self.register_parameter(
            "weight", Tensor(init_fn((self.in_features, self.out_features), rng))
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(initializers.zeros((self.out_features,)))
            )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return f"Dense({self.in_features} -> {self.out_features})"


class Conv2D(Module):
    """2-D convolution layer over NCHW inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, padding: Union[int, str] = "same",
                 rng: Optional[np.random.Generator] = None,
                 weight_init: str = "glorot_uniform", bias: bool = True,
                 backend: Optional[str] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.padding = padding
        # Kernel backend pin (None: resolve the ambient selection per
        # dispatch).  Not part of the state dict — a checkpoint trained
        # on one backend loads onto any other.
        self.backend = backend
        init_fn = initializers.get_initializer(weight_init)
        shape = (self.out_channels, self.in_channels, self.kernel, self.kernel)
        self.weight = self.register_parameter("weight", Tensor(init_fn(shape, rng)))
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(initializers.zeros((self.out_channels,)))
            )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding,
                        backend=self.backend)

    def __repr__(self):
        return (f"Conv2D({self.in_channels} -> {self.out_channels}, "
                f"{self.kernel}x{self.kernel}, stride={self.stride}, "
                f"padding={self.padding!r})")


class AvgPool2D(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel: int = 2, backend: Optional[str] = None):
        super().__init__()
        self.kernel = int(kernel)
        self.backend = backend

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, backend=self.backend)

    def __repr__(self):
        return f"AvgPool2D({self.kernel}x{self.kernel})"


class MaxPool2D(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel: int = 2, backend: Optional[str] = None):
        super().__init__()
        self.kernel = int(kernel)
        self.backend = backend

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, backend=self.backend)

    def __repr__(self):
        return f"MaxPool2D({self.kernel}x{self.kernel})"


class UpSample2D(Module):
    """Nearest-neighbour upsampling (MagNet's MNIST decoder uses 2x)."""

    def __init__(self, factor: int = 2):
        super().__init__()
        self.factor = int(factor)

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample2d(x, self.factor)

    def __repr__(self):
        return f"UpSample2D(x{self.factor})"


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0], -1))

    def __repr__(self):
        return "Flatten()"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return relu(x)

    def __repr__(self):
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return sigmoid(x)

    def __repr__(self):
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)

    def __repr__(self):
        return "Tanh()"


def describe(module: Module, indent: int = 0) -> str:
    """Render a human-readable architecture summary (used by Table II/V benches)."""
    pad = "  " * indent
    if isinstance(module, Sequential):
        lines = [f"{pad}Sequential("]
        for layer in module:
            lines.append(describe(layer, indent + 1))
        lines.append(f"{pad})")
        return "\n".join(lines)
    header = f"{pad}{module!r}"
    own_params = sum(p.size for p in module._parameters.values())
    if own_params:
        header += f"  [{own_params} params]"
    children = [describe(child, indent + 1) for child in module._modules.values()
                if not isinstance(module, Sequential)]
    return "\n".join([header] + children) if children else header
