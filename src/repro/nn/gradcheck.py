"""Finite-difference gradient checking for the autodiff engine.

Every attack in this reproduction differentiates a scalar loss with
respect to input images through :mod:`repro.nn.autograd`; a silently
wrong vector-Jacobian product would corrupt every downstream table.
This module is the guard rail: it compares each op's analytic gradient
against a central-difference numerical estimate.

Originally these helpers lived inside the test tree
(``tests/nn/gradcheck.py``, which now re-exports from here); they are
library code so that user-defined ops, custom layers and downstream
projects can verify their gradients with the same machinery::

    from repro.nn.gradcheck import check_gradients
    check_gradients(lambda a, b: (a * b).sum() + a.abs().sum(), x, y)

All checks are performed in float64: the engine preserves float64
inputs end-to-end, and central differences at ``eps=1e-5`` need that
precision to meet the default tolerances.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["check_gradient", "check_gradients", "numerical_gradient"]


def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of an ndarray."""
    x = x.astype(np.float64, copy=True)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradient(op: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Assert that autograd and numerical gradients agree for ``op``.

    ``op`` maps a Tensor to a Tensor; the scalar under test is the sum of
    squares of the op output (smooth and sensitive to every element).
    """
    x = x.astype(np.float64)

    def scalar(arr: np.ndarray) -> float:
        out = op(Tensor(arr, dtype=np.float64))
        return float((out.data.astype(np.float64) ** 2).sum())

    t = Tensor(x, requires_grad=True, dtype=np.float64)
    out = op(t)
    loss = (out * out).sum()
    loss.backward()
    assert t.grad is not None, "no gradient reached the input"
    numeric = numerical_gradient(scalar, x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=rtol)


def check_gradients(op: Callable[..., Tensor], *inputs: np.ndarray,
                    atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Check the gradient of a multi-input op with respect to every input.

    ``op`` takes one Tensor per entry of ``inputs`` and returns a Tensor
    (any shape); the scalar under test is the sum of squares of the
    output.  Each input's analytic gradient is compared against a
    central-difference estimate computed with the *other* inputs held
    fixed, so cross-terms (e.g. both operands of ``matmul``) are
    verified in one call.
    """
    if not inputs:
        raise ValueError("check_gradients needs at least one input array")
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]

    tensors = [Tensor(a, requires_grad=True, dtype=np.float64)
               for a in arrays]
    out = op(*tensors)
    loss = (out * out).sum()
    loss.backward()

    for pos, (tensor, array) in enumerate(zip(tensors, arrays)):
        assert tensor.grad is not None, (
            f"no gradient reached input {pos} of {len(arrays)}")

        def scalar(arr: np.ndarray, pos: int = pos) -> float:
            args = [Tensor(arr if i == pos else a, dtype=np.float64)
                    for i, a in enumerate(arrays)]
            value = op(*args)
            return float((value.data.astype(np.float64) ** 2).sum())

        numeric = numerical_gradient(scalar, array)
        np.testing.assert_allclose(
            tensor.grad, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch on input {pos}")
