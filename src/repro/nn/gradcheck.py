"""Finite-difference gradient checking for the autodiff engine.

Every attack in this reproduction differentiates a scalar loss with
respect to input images through :mod:`repro.nn.autograd`; a silently
wrong vector-Jacobian product would corrupt every downstream table.
This module is the guard rail: it compares each op's analytic gradient
against a central-difference numerical estimate.

Originally these helpers lived inside the test tree
(``tests/nn/gradcheck.py``, which now re-exports from here); they are
library code so that user-defined ops, custom layers and downstream
projects can verify their gradients with the same machinery::

    from repro.nn.gradcheck import check_gradients
    check_gradients(lambda a, b: (a * b).sum() + a.abs().sum(), x, y)

All checks are performed in float64: the engine preserves float64
inputs end-to-end, and central differences at ``eps=1e-5`` need that
precision to meet the default tolerances.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.backend import available_backends, get_backend, use_backend

__all__ = [
    "backend_equivalence_matrix",
    "check_gradient",
    "check_gradients",
    "combo_check",
    "numerical_gradient",
]


def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of an ndarray."""
    x = x.astype(np.float64, copy=True)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradient(op: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Assert that autograd and numerical gradients agree for ``op``.

    ``op`` maps a Tensor to a Tensor; the scalar under test is the sum of
    squares of the op output (smooth and sensitive to every element).
    """
    x = x.astype(np.float64)

    def scalar(arr: np.ndarray) -> float:
        out = op(Tensor(arr, dtype=np.float64))
        return float((out.data.astype(np.float64) ** 2).sum())

    t = Tensor(x, requires_grad=True, dtype=np.float64)
    out = op(t)
    loss = (out * out).sum()
    loss.backward()
    assert t.grad is not None, "no gradient reached the input"
    numeric = numerical_gradient(scalar, x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=rtol)


def check_gradients(op: Callable[..., Tensor], *inputs: np.ndarray,
                    atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Check the gradient of a multi-input op with respect to every input.

    ``op`` takes one Tensor per entry of ``inputs`` and returns a Tensor
    (any shape); the scalar under test is the sum of squares of the
    output.  Each input's analytic gradient is compared against a
    central-difference estimate computed with the *other* inputs held
    fixed, so cross-terms (e.g. both operands of ``matmul``) are
    verified in one call.
    """
    if not inputs:
        raise ValueError("check_gradients needs at least one input array")
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]

    tensors = [Tensor(a, requires_grad=True, dtype=np.float64)
               for a in arrays]
    out = op(*tensors)
    loss = (out * out).sum()
    loss.backward()

    for pos, (tensor, array) in enumerate(zip(tensors, arrays)):
        assert tensor.grad is not None, (
            f"no gradient reached input {pos} of {len(arrays)}")

        def scalar(arr: np.ndarray, pos: int = pos) -> float:
            args = [Tensor(arr if i == pos else a, dtype=np.float64)
                    for i, a in enumerate(arrays)]
            value = op(*args)
            return float((value.data.astype(np.float64) ** 2).sum())

        numeric = numerical_gradient(scalar, array)
        np.testing.assert_allclose(
            tensor.grad, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch on input {pos}")


def combo_check(op: Callable[..., Tensor], *arg_candidates: Sequence,
                backends: Optional[Sequence[str]] = None,
                atol: float = 1e-6, rtol: float = 1e-4,
                **kwarg_candidates: Sequence) -> int:
    """Exhaustively gradcheck ``op`` over argument combinations × backends.

    Autograd-test style: each positional entry of ``arg_candidates`` and
    each keyword entry of ``kwarg_candidates`` is a *list of candidate
    values*; every element of their cartesian product is gradchecked via
    :func:`check_gradients` under every backend in ``backends`` (default:
    all registered backends).  Positional candidates must be ndarrays
    (they become differentiable inputs); keyword candidates are passed
    through verbatim (strides, padding modes, dilations, ...).

    Combinations that raise :class:`ValueError` during the forward pass
    are skipped — the sweep deliberately includes shape/stride pairings
    that some settings reject (e.g. kernels overhanging the input), and
    a *consistent* rejection across backends is part of the contract: if
    one backend rejects a combination, every backend must.

    Returns the number of (combination, backend) pairs actually checked,
    so callers can assert the sweep was not vacuous.
    """
    if backends is None:
        backends = available_backends()
    for name in backends:
        get_backend(name)                    # validate before sweeping
    keys = list(kwarg_candidates)
    checked = 0
    for args in itertools.product(*arg_candidates):
        for values in itertools.product(*(kwarg_candidates[k] for k in keys)):
            kwargs = dict(zip(keys, values))
            rejected: Dict[str, bool] = {}
            for name in backends:
                with use_backend(name):
                    try:
                        check_gradients(
                            lambda *ts: op(*ts, **kwargs), *args,
                            atol=atol, rtol=rtol)
                        rejected[name] = False
                        checked += 1
                    except ValueError:
                        rejected[name] = True
            if len(set(rejected.values())) > 1:
                raise AssertionError(
                    f"backends disagree on rejecting kwargs={kwargs}: "
                    f"{rejected}")
    return checked


def backend_equivalence_matrix(op: Callable[..., Tensor],
                               *inputs: np.ndarray,
                               backends: Optional[Sequence[str]] = None,
                               reference: str = "numpy"
                               ) -> Dict[str, Dict[str, float]]:
    """Pin every backend's output/gradient divergence from the reference.

    Runs ``op`` forward and backward under each backend and measures the
    worst absolute difference from the ``reference`` backend for the
    output and for every input gradient.  Backends declaring
    ``bitwise=True`` are *asserted* exactly equal; tolerance backends are
    asserted within their declared ``rtol``/``atol``.  Returns the matrix
    ``{backend: {"out": max_abs_diff, "grad0": ..., ...}}`` so tests and
    benchmarks can report (and gate on) the observed bounds.
    """
    if backends is None:
        backends = available_backends()
    arrays = [np.asarray(x) for x in inputs]

    def run(name: str):
        tensors = [Tensor(a, requires_grad=True, dtype=a.dtype)
                   for a in arrays]
        with use_backend(name):
            out = op(*tensors)
            out.backward(np.ones_like(out.data))
        return out.data, [t.grad for t in tensors]

    ref_out, ref_grads = run(reference)
    matrix: Dict[str, Dict[str, float]] = {}
    for name in backends:
        backend = get_backend(name)
        out, grads = run(name)
        pairs = [("out", out, ref_out)] + [
            (f"grad{i}", g, rg) for i, (g, rg) in enumerate(zip(grads,
                                                                ref_grads))]
        row: Dict[str, float] = {}
        for label, got, want in pairs:
            row[label] = float(np.max(np.abs(got - want))) if got.size else 0.0
            if backend.bitwise:
                assert np.array_equal(got, want), (
                    f"backend {name!r} declares bitwise stability but "
                    f"{label} differs from {reference!r} by {row[label]:g}")
            else:
                np.testing.assert_allclose(
                    got, want, rtol=backend.rtol, atol=backend.atol,
                    err_msg=(f"backend {name!r} {label} out of declared "
                             f"tolerance vs {reference!r}"))
        matrix[name] = row
    return matrix
