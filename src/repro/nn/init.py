"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense (in, out) or conv (O, I, kh, kw) shapes."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   dtype=np.float32) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  dtype=np.float32) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(dtype)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
               dtype=np.float32) -> np.ndarray:
    """He uniform (appropriate before ReLU): U(-limit, limit), limit = sqrt(6/fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator,
              dtype=np.float32) -> np.ndarray:
    """He normal (appropriate before ReLU): N(0, 2/fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def zeros(shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
    """All-zeros initializer (standard for biases)."""
    return np.zeros(shape, dtype=dtype)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises KeyError with options listed."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(INITIALIZERS)}"
        ) from None
