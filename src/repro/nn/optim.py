"""Gradient-based optimizers.

Adam drives both model training and the C&W attack's inner optimization
(Carlini & Wagner use Adam on the tanh-reparameterized perturbation); SGD
with momentum is provided as the classical baseline.  Both operate on any
list of :class:`~repro.nn.autograd.Tensor` parameters, which lets the
attacks reuse them on *input* tensors.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / b1t
            v_hat = self._v[i] / b2t
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        """Clear moment estimates (the C&W binary-search loop restarts Adam)."""
        self._m = [None] * len(self.params)
        self._v = [None] * len(self.params)
        self._t = 0
