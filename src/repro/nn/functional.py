"""Neural-network operations built on the autograd engine.

Contains the structured ops the MagNet/EAD reproduction needs beyond basic
arithmetic: im2col convolutions, average/max pooling, nearest-neighbour
upsampling (the MagNet decoder uses it), softmax / log-softmax (for
classifier probabilities and the JSD detector), and the label-gather used
by the cross-entropy loss.

All ops follow the NCHW layout convention: images are
``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.autograd import Tensor, _make, as_tensor

__all__ = [
    "avg_pool2d",
    "conv2d",
    "conv_output_size",
    "log_softmax",
    "logsumexp",
    "max_pool2d",
    "one_hot",
    "same_padding",
    "select_index",
    "softmax",
    "upsample2d",
]


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def same_padding(kernel: int) -> int:
    """Padding that preserves spatial size for stride-1 odd kernels."""
    if kernel % 2 == 0:
        raise ValueError(f"'same' padding requires an odd kernel, got {kernel}")
    return (kernel - 1) // 2


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            dilation: int = 1) -> np.ndarray:
    """Extract sliding windows: (N, C, H, W) -> (N, Ho, Wo, C, kh, kw).

    Filled tap-by-tap (kh*kw strided slice copies) directly into the
    output layout — substantially faster than gathering through a
    ``sliding_window_view`` and leaves the result contiguous, so the
    caller's flattening reshape is free.  ``dilation`` spaces the kernel
    taps (effective kernel size ``(k-1)*dilation + 1``).
    """
    n, c, h, w = x.shape
    eff_kh = (kh - 1) * dilation + 1
    eff_kw = (kw - 1) * dilation + 1
    ho = (h - eff_kh) // stride + 1
    wo = (w - eff_kw) // stride + 1
    out = np.empty((n, ho, wo, c, kh, kw), dtype=x.dtype)
    for i in range(kh):
        row = i * dilation
        for j in range(kw):
            col = j * dilation
            patch = x[:, :, row:row + stride * ho:stride,
                      col:col + stride * wo:stride]
            out[:, :, :, :, i, j] = patch.transpose(0, 2, 3, 1)
    return out


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            stride: int, dilation: int = 1) -> np.ndarray:
    """Scatter-add window gradients back to image shape (inverse of _im2col).

    Accumulates in NHWC (both sides of the ``+=`` keep their natural
    layout, no per-tap transposes) and converts to NCHW once at the end.
    """
    n, c, h, w = x_shape
    _, ho, wo = cols.shape[0], cols.shape[1], cols.shape[2]
    out = np.zeros((n, h, w, c), dtype=cols.dtype)
    for i in range(kh):
        row = i * dilation
        h_stop = row + stride * ho
        for j in range(kw):
            col = j * dilation
            w_stop = col + stride * wo
            out[:, row:h_stop:stride, col:w_stop:stride, :] += (
                cols[:, :, :, :, i, j]
            )
    return np.ascontiguousarray(out.transpose(0, 3, 1, 2))


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Union[int, str] = 0,
           dilation: int = 1) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Args:
        x: input images ``(N, C_in, H, W)``.
        weight: filters ``(C_out, C_in, kh, kw)``.
        bias: optional per-filter bias ``(C_out,)``.
        stride: spatial stride (same in both axes).
        padding: integer zero-padding, or ``"same"`` for stride-1 odd kernels.
        dilation: spacing between kernel taps (atrous convolution).

    Returns:
        Output tensor ``(N, C_out, Ho, Wo)``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects OIHW weight, got shape {weight.shape}")
    co, ci, kh, kw = weight.shape
    if x.shape[1] != ci:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {ci}")
    dilation = int(dilation)
    if dilation < 1:
        raise ValueError(f"dilation must be >= 1, got {dilation}")
    eff_kh = (kh - 1) * dilation + 1
    eff_kw = (kw - 1) * dilation + 1
    if padding == "same":
        if stride != 1:
            raise ValueError("'same' padding supported for stride=1 only")
        padding = same_padding(eff_kh)
    padding = int(padding)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")

    xd = x.data
    if padding:
        xd = np.pad(xd, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, _, hp, wp = xd.shape
    ho = conv_output_size(x.shape[2], eff_kh, stride, padding)
    wo = conv_output_size(x.shape[3], eff_kw, stride, padding)
    if ho < 1 or wo < 1:
        raise ValueError(
            f"conv2d output would be empty: input {x.shape}, kernel ({kh},{kw}), "
            f"stride {stride}, padding {padding}, dilation {dilation}"
        )

    cols = _im2col(xd, kh, kw, stride, dilation)           # (N, Ho, Wo, C, kh, kw)
    cols_flat = cols.reshape(n, ho, wo, ci * kh * kw)
    w_flat = weight.data.reshape(co, ci * kh * kw)
    out = cols_flat @ w_flat.T                             # (N, Ho, Wo, C_out)
    if bias is not None:
        out = out + bias.data
    out = out.transpose(0, 3, 1, 2)                        # (N, C_out, Ho, Wo)
    out = np.ascontiguousarray(out, dtype=x.dtype)

    padded_shape = xd.shape

    def grad_x(g):
        # g: (N, C_out, Ho, Wo)
        g_nhwc = g.transpose(0, 2, 3, 1)                   # (N, Ho, Wo, C_out)
        gc = g_nhwc @ w_flat                               # (N, Ho, Wo, C*kh*kw)
        gc = gc.reshape(n, ho, wo, ci, kh, kw)
        gx = _col2im(gc, padded_shape, kh, kw, stride, dilation)
        if padding:
            gx = gx[:, :, padding:-padding, padding:-padding]
        return gx

    def grad_w(g):
        g_flat = g.transpose(0, 2, 3, 1).reshape(-1, co)   # (N*Ho*Wo, C_out)
        cols_2d = cols_flat.reshape(-1, ci * kh * kw)
        gw = g_flat.T @ cols_2d                            # (C_out, C*kh*kw)
        return gw.reshape(co, ci, kh, kw)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return _make(out, parents)


# ----------------------------------------------------------------------
# Pooling and upsampling
# ----------------------------------------------------------------------

def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with ``kernel``×``kernel`` windows.

    Input spatial dims must be divisible by ``kernel`` (MagNet's MNIST
    autoencoders pool 28→14, which satisfies this).
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    k = int(kernel)
    if h % k or w % k:
        raise ValueError(f"avg_pool2d: spatial dims ({h},{w}) not divisible by {k}")
    ho, wo = h // k, w // k
    blocks = x.data.reshape(n, c, ho, k, wo, k)
    out = blocks.mean(axis=(3, 5))

    def grad_fn(g):
        g_scaled = (g / (k * k)).astype(x.dtype)
        g_up = np.repeat(np.repeat(g_scaled, k, axis=2), k, axis=3)
        return g_up

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling; gradient routes to the first argmax."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    k = int(kernel)
    if h % k or w % k:
        raise ValueError(f"max_pool2d: spatial dims ({h},{w}) not divisible by {k}")
    ho, wo = h // k, w // k
    blocks = x.data.reshape(n, c, ho, k, wo, k)
    # Pairwise maximum over the k*k taps (strided views, no copies) —
    # much faster than a strided-axis ``.max()`` reduction or the
    # transpose+argmax route, and bitwise-identical to both.
    taps = [blocks[:, :, :, i, :, j] for i in range(k) for j in range(k)]
    if len(taps) == 1:
        out = taps[0].copy()
    else:
        out = np.maximum(taps[0], taps[1])
        for tap in taps[2:]:
            np.maximum(out, tap, out=out)

    def grad_fn(g):
        # Route the gradient to the first maximum tap in (i, j) row-major
        # order — the same winner the flat argmax picked — by comparing
        # taps sequentially against the pooled maximum.  No argmax, no
        # transposed copies.
        gx = np.zeros((n, c, h, w), dtype=g.dtype)
        gblocks = gx.reshape(n, c, ho, k, wo, k)
        taken = np.zeros(out.shape, dtype=bool)
        for i in range(k):
            for j in range(k):
                win = (blocks[:, :, :, i, :, j] == out) & ~taken
                np.copyto(gblocks[:, :, :, i, :, j], g, where=win)
                taken |= win
        return gx

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def upsample2d(x: Tensor, factor: int) -> Tensor:
    """Nearest-neighbour spatial upsampling by an integer factor."""
    x = as_tensor(x)
    f = int(factor)
    if f < 1:
        raise ValueError(f"upsample factor must be >= 1, got {factor}")
    if f == 1:
        return x
    n, c, h, w = x.shape
    out = np.repeat(np.repeat(x.data, f, axis=2), f, axis=3)

    def grad_fn(g):
        return g.reshape(n, c, h, f, w, f).sum(axis=(3, 5))

    return _make(out, [(x, grad_fn)])


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp along ``axis``."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - m
    s = np.exp(shifted).sum(axis=axis, keepdims=True)
    out = m + np.log(s)
    softmax_vals = np.exp(shifted) / s

    def grad_fn(g):
        g_expanded = g if keepdims else np.expand_dims(g, axis)
        return g_expanded * softmax_vals

    data = out if keepdims else np.squeeze(out, axis=axis)
    return _make(data.astype(x.dtype), [(x, grad_fn)])


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) along ``axis``, computed stably."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    probs = np.exp(out)

    def grad_fn(g):
        return g - probs * g.sum(axis=axis, keepdims=True)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """softmax(x) along ``axis``, computed stably."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    e = np.exp(x.data - m)
    out = e / e.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


# ----------------------------------------------------------------------
# Indexing helpers
# ----------------------------------------------------------------------

def select_index(x: Tensor, indices: np.ndarray) -> Tensor:
    """Gather ``x[i, indices[i]]`` for each row i of a 2-D tensor.

    Used by cross-entropy (pick the true-class log-probability) and by the
    attack losses (pick the target-class logit).
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"select_index expects a 2-D tensor, got shape {x.shape}")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.shape != (x.shape[0],):
        raise ValueError(f"indices shape {idx.shape} != ({x.shape[0]},)")
    rows = np.arange(x.shape[0])
    out = x.data[rows, idx]

    def grad_fn(g):
        gx = np.zeros_like(x.data)
        gx[rows, idx] = g
        return gx

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Return a one-hot ndarray encoding (plain numpy; labels carry no grad)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1
    return out
