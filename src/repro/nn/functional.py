"""Neural-network operations built on the autograd engine.

Contains the structured ops the MagNet/EAD reproduction needs beyond basic
arithmetic: backend-dispatched convolutions and pooling (see
:mod:`repro.nn.backend` for the pluggable kernel layer), nearest-neighbour
upsampling (the MagNet decoder uses it), softmax / log-softmax (for
classifier probabilities and the JSD detector), and the label-gather used
by the cross-entropy loss.

The conv/pool entry points are thin dispatchers: they validate arguments,
resolve the active :class:`~repro.nn.backend.KernelBackend` (explicit
``backend=`` argument, else the ambient selection), meter the dispatch,
and wire the backend's forward/backward primitives into the autograd
graph.  Existing call sites need no changes — ``backend=`` is a new
optional keyword everywhere.

All ops follow the NCHW layout convention: images are
``(batch, channels, height, width)``.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.autograd import Tensor, _make, as_tensor, is_grad_enabled
from repro.nn.backend import get_backend, record_dispatch

__all__ = [
    "avg_pool2d",
    "conv2d",
    "conv_output_size",
    "log_softmax",
    "logsumexp",
    "max_pool2d",
    "one_hot",
    "same_padding",
    "select_index",
    "softmax",
    "upsample2d",
]


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises :class:`ValueError` when the (effective) kernel overhangs the
    padded input — the historical behaviour of silently returning a zero
    or negative size produced empty arrays or wrong-shaped scatter
    targets far from the misconfiguration that caused them.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution output size would be {out}: kernel {kernel} "
            f"does not fit in padded input {size + 2 * padding} "
            f"(size {size}, padding {padding}, stride {stride})"
        )
    return out


def same_padding(kernel: int) -> int:
    """Padding that preserves spatial size for stride-1 odd kernels."""
    if kernel % 2 == 0:
        raise ValueError(f"'same' padding requires an odd kernel, got {kernel}")
    return (kernel - 1) // 2


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            dilation: int = 1) -> np.ndarray:
    """Deprecated private seam; use the backend interface instead.

    .. deprecated::
        Call ``get_backend("numpy").im2col(...)`` (any backend exposes
        the primitive).  This shim delegates to the reference backend
        and will be removed.
    """
    warnings.warn(
        "repro.nn.functional._im2col is deprecated; use "
        "repro.nn.backend.get_backend(...).im2col instead",
        DeprecationWarning, stacklevel=2,
    )
    return get_backend("numpy").im2col(x, kh, kw, stride, dilation)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            stride: int, dilation: int = 1) -> np.ndarray:
    """Deprecated private seam; use the backend interface instead.

    .. deprecated::
        Call ``get_backend("numpy").col2im(...)``.  This shim delegates
        to the reference backend and will be removed.
    """
    warnings.warn(
        "repro.nn.functional._col2im is deprecated; use "
        "repro.nn.backend.get_backend(...).col2im instead",
        DeprecationWarning, stacklevel=2,
    )
    return get_backend("numpy").col2im(cols, x_shape, kh, kw, stride, dilation)


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Union[int, str] = 0,
           dilation: int = 1, backend: Optional[str] = None) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Args:
        x: input images ``(N, C_in, H, W)``.
        weight: filters ``(C_out, C_in, kh, kw)``.
        bias: optional per-filter bias ``(C_out,)``.
        stride: spatial stride (same in both axes).
        padding: integer zero-padding, or ``"same"`` for stride-1 odd kernels.
        dilation: spacing between kernel taps (atrous convolution).
        backend: kernel backend name; ``None`` uses the active selection
            (see :func:`repro.nn.backend.use_backend`).

    Returns:
        Output tensor ``(N, C_out, Ho, Wo)``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects OIHW weight, got shape {weight.shape}")
    co, ci, kh, kw = weight.shape
    if x.shape[1] != ci:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {ci}")
    dilation = int(dilation)
    if dilation < 1:
        raise ValueError(f"dilation must be >= 1, got {dilation}")
    eff_kh = (kh - 1) * dilation + 1
    eff_kw = (kw - 1) * dilation + 1
    if padding == "same":
        if stride != 1:
            raise ValueError("'same' padding supported for stride=1 only")
        padding = same_padding(eff_kh)
    padding = int(padding)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    # Raises a clear ValueError when the kernel overhangs the padded input.
    conv_output_size(x.shape[2], eff_kh, stride, padding)
    conv_output_size(x.shape[3], eff_kw, stride, padding)

    be = get_backend(backend)
    t0 = time.perf_counter()
    out, ctx = be.conv2d_forward(
        x.data, weight.data, bias.data if bias is not None else None,
        stride, padding, dilation, needs_grad=is_grad_enabled())
    record_dispatch(be.name, time.perf_counter() - t0)

    def grad_x(g):
        t0 = time.perf_counter()
        gx = be.conv2d_backward_input(ctx, g)
        record_dispatch(be.name, time.perf_counter() - t0)
        return gx

    def grad_w(g):
        t0 = time.perf_counter()
        gw = be.conv2d_backward_weight(ctx, g)
        record_dispatch(be.name, time.perf_counter() - t0)
        return gw

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return _make(out, parents)


# ----------------------------------------------------------------------
# Pooling and upsampling
# ----------------------------------------------------------------------

def avg_pool2d(x: Tensor, kernel: int, backend: Optional[str] = None) -> Tensor:
    """Non-overlapping average pooling with ``kernel``×``kernel`` windows.

    Input spatial dims must be divisible by ``kernel`` (MagNet's MNIST
    autoencoders pool 28→14, which satisfies this).
    """
    x = as_tensor(x)
    _, _, h, w = x.shape
    k = int(kernel)
    if h % k or w % k:
        raise ValueError(f"avg_pool2d: spatial dims ({h},{w}) not divisible by {k}")
    be = get_backend(backend)
    out = be.avg_pool2d_forward(x.data, k)

    def grad_fn(g):
        return be.avg_pool2d_backward(g, k, x.dtype)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def max_pool2d(x: Tensor, kernel: int, backend: Optional[str] = None) -> Tensor:
    """Non-overlapping max pooling; gradient routes to the first argmax."""
    x = as_tensor(x)
    _, _, h, w = x.shape
    k = int(kernel)
    if h % k or w % k:
        raise ValueError(f"max_pool2d: spatial dims ({h},{w}) not divisible by {k}")
    be = get_backend(backend)
    out, ctx = be.max_pool2d_forward(x.data, k)

    def grad_fn(g):
        return be.max_pool2d_backward(ctx, g)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def upsample2d(x: Tensor, factor: int) -> Tensor:
    """Nearest-neighbour spatial upsampling by an integer factor."""
    x = as_tensor(x)
    f = int(factor)
    if f < 1:
        raise ValueError(f"upsample factor must be >= 1, got {factor}")
    if f == 1:
        return x
    n, c, h, w = x.shape
    out = np.repeat(np.repeat(x.data, f, axis=2), f, axis=3)

    def grad_fn(g):
        return g.reshape(n, c, h, f, w, f).sum(axis=(3, 5))

    return _make(out, [(x, grad_fn)])


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp along ``axis``."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - m
    s = np.exp(shifted).sum(axis=axis, keepdims=True)
    out = m + np.log(s)
    softmax_vals = np.exp(shifted) / s

    def grad_fn(g):
        g_expanded = g if keepdims else np.expand_dims(g, axis)
        return g_expanded * softmax_vals

    data = out if keepdims else np.squeeze(out, axis=axis)
    return _make(data.astype(x.dtype), [(x, grad_fn)])


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) along ``axis``, computed stably."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    probs = np.exp(out)

    def grad_fn(g):
        return g - probs * g.sum(axis=axis, keepdims=True)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """softmax(x) along ``axis``, computed stably."""
    x = as_tensor(x)
    m = x.data.max(axis=axis, keepdims=True)
    e = np.exp(x.data - m)
    out = e / e.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return _make(out.astype(x.dtype), [(x, grad_fn)])


# ----------------------------------------------------------------------
# Indexing helpers
# ----------------------------------------------------------------------

def select_index(x: Tensor, indices: np.ndarray) -> Tensor:
    """Gather ``x[i, indices[i]]`` for each row i of a 2-D tensor.

    Used by cross-entropy (pick the true-class log-probability) and by the
    attack losses (pick the target-class logit).
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"select_index expects a 2-D tensor, got shape {x.shape}")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.shape != (x.shape[0],):
        raise ValueError(f"indices shape {idx.shape} != ({x.shape[0]},)")
    rows = np.arange(x.shape[0])
    out = x.data[rows, idx]

    def grad_fn(g):
        gx = np.zeros_like(x.data)
        gx[rows, idx] = g
        return gx

    return _make(out.astype(x.dtype), [(x, grad_fn)])


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Return a one-hot ndarray encoding (plain numpy; labels carry no grad)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1
    return out
