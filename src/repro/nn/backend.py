"""Pluggable kernel backends for the ``repro.nn`` hot loops.

EAD's L1 attack and MagNet's autoencoder training both bottom out in 2-D
convolutions, so the conv/pool/elementwise primitives live behind an
explicit backend interface: :class:`KernelBackend` defines the contract,
a registry maps names to singleton instances, and
:mod:`repro.nn.functional` dispatches through the active backend while
keeping its public signatures unchanged.

Registered backends
-------------------
``"numpy"``
    The reference im2col path (the default).  Bitwise-stable: its outputs
    define the ground truth every other backend is checked against.
``"fft"``
    Frequency-domain convolution via ``scipy.fft`` (falls back to
    ``numpy.fft`` with a float64 round-trip when scipy is absent).  Wins
    when channel counts are large — the ``paper`` profile's 256-filter
    autoencoders — because the per-pixel contraction collapses into a
    batched complex matmul over O(H·W) frequencies instead of an
    O(H·W·k²) tap gather.  Tolerance-matched, not bitwise (see
    :attr:`FFTBackend.rtol`/:attr:`FFTBackend.atol`).
``"buffered"``
    The numpy path with per-thread scratch reuse: padded inputs, im2col
    column blocks and col2im accumulators are recycled across dispatches
    instead of reallocated per optimizer step.  Bitwise-identical to
    ``"numpy"`` — only allocation behaviour differs.

Selection
---------
The active backend resolves in order: an explicit ``backend=`` argument
at a call site, the ambient :func:`use_backend` context (a
``contextvars.ContextVar``, so concurrent serving threads can pin
different backends), then the process-wide default set by
:func:`set_default_backend` (what ``--nn-backend`` and the experiment
profiles configure; new threads that never entered :func:`use_backend`
inherit it, since context vars do not cross thread creation).

Every conv dispatch is metered through :mod:`repro.obs`
(``nn/conv_dispatches`` counters and per-backend ``nn/kernel_seconds``
histograms); :func:`flush_kernel_events` folds the deltas into the
telemetry JSONL so ``repro-experiments timings`` can attribute conv time.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np


try:  # scipy's pocketfft keeps float32 in complex64; numpy.fft promotes.
    from scipy import fft as _scipy_fft
except ImportError:  # pragma: no cover - scipy is part of the toolchain
    _scipy_fft = None

__all__ = [
    "BufferedBackend",
    "FFTBackend",
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "flush_kernel_events",
    "get_backend",
    "get_default_backend_name",
    "kernel_stats",
    "record_dispatch",
    "register_backend",
    "set_default_backend",
    "use_backend",
]


# ----------------------------------------------------------------------
# Dispatch metering
# ----------------------------------------------------------------------
# ``repro.nn`` sits at the bottom of the import graph and ``repro.obs``
# (the package) transitively reaches ``repro.runtime``, so the metric
# handles bind lazily at the first dispatch — long after import time —
# instead of at module load.

_METRICS_BY_BACKEND: Dict[str, Tuple[Any, Any, Any]] = {}
_LAST_FLUSH: Dict[str, Tuple[int, float]] = {}
_METRICS_LOCK = threading.Lock()


def _backend_metrics(name: str) -> Tuple[Any, Any, Any]:
    cached = _METRICS_BY_BACKEND.get(name)
    if cached is None:
        from repro.obs.metrics import counter, histogram
        with _METRICS_LOCK:
            cached = _METRICS_BY_BACKEND.get(name)
            if cached is None:
                cached = (counter("nn/conv_dispatches"),
                          counter(f"nn/conv_dispatches/{name}"),
                          histogram(f"nn/kernel_seconds/{name}"))
                _METRICS_BY_BACKEND[name] = cached
    return cached


def record_dispatch(backend_name: str, seconds: float) -> None:
    """Meter one kernel dispatch (conv forward or backward) for a backend."""
    total, dispatches, seconds_hist = _backend_metrics(backend_name)
    total.inc()
    dispatches.inc()
    seconds_hist.observe(seconds)


def kernel_stats() -> Dict[str, Dict[str, float]]:
    """Cumulative ``{backend: {dispatches, seconds}}`` for this process."""
    stats: Dict[str, Dict[str, float]] = {}
    for name, (_, dispatches, seconds_hist) in sorted(
            _METRICS_BY_BACKEND.items()):
        snap = seconds_hist.snapshot()
        stats[name] = {"dispatches": dispatches.value,
                       "seconds": snap["sum"]}
    return stats


def flush_kernel_events() -> None:
    """Emit per-backend ``nn/kernels/<name>`` telemetry for new dispatches.

    Called at the natural kernel-burst boundaries (end of a training fit,
    end of an attack) so the JSONL event log — and therefore the
    ``timings`` report — shows where conv time went without paying a
    telemetry write per dispatch.  Deltas since the previous flush, so
    repeated calls never double-count.
    """
    from repro.obs.trace import event    # deferred: avoids an import cycle
    for name, stat in kernel_stats().items():
        count, seconds = int(stat["dispatches"]), float(stat["seconds"])
        last_count, last_seconds = _LAST_FLUSH.get(name, (0, 0.0))
        if count <= last_count:
            continue
        _LAST_FLUSH[name] = (count, seconds)
        event(f"nn/kernels/{name}", duration_s=seconds - last_seconds,
              backend=name, dispatches=count - last_count)


# ----------------------------------------------------------------------
# The primitive contract
# ----------------------------------------------------------------------

class KernelBackend:
    """Conv/pool/elementwise primitives behind ``repro.nn.functional``.

    Subclasses override the conv trio (and optionally the buffer hooks);
    the base class carries the reference numpy implementations so a new
    backend only has to reimplement what it accelerates.  The contract
    every backend must honour:

    * ``conv2d_forward(x, weight, bias, stride, padding, dilation,
      needs_grad) -> (out, ctx)`` — ``x`` is NCHW *unpadded*; ``out`` is
      the finished NCHW output (bias included).  ``ctx`` is an opaque
      handle threaded to the backward methods; when ``needs_grad`` is
      false the backward methods will never be called on it.
    * ``conv2d_backward_input(ctx, g) -> gx`` — gradient w.r.t. the
      original (unpadded) input.
    * ``conv2d_backward_weight(ctx, g) -> gw`` — gradient w.r.t. the
      OIHW weight.
    * Pool/elementwise primitives as below.
    * Arrays returned to callers are freshly owned (never views of
      internal scratch), match the input dtype, and are C-contiguous.

    ``bitwise`` declares the equivalence contract: a bitwise backend must
    reproduce the ``"numpy"`` reference exactly; a tolerance backend must
    stay within its declared ``rtol``/``atol`` (checked by the gradcheck
    equivalence matrix and enforced by ``benchmarks/bench_nn.py``).
    """

    name = "abstract"
    #: True when outputs are bit-for-bit identical to the numpy reference.
    bitwise = True
    #: Equivalence bounds vs the numpy reference (0.0 means exact).
    rtol = 0.0
    atol = 0.0

    # -------------------------------------------------- conv primitives
    def im2col(self, x: np.ndarray, kh: int, kw: int, stride: int,
               dilation: int = 1, out: Optional[np.ndarray] = None
               ) -> np.ndarray:
        """Extract sliding windows: (N, C, H, W) -> (N, Ho, Wo, C, kh, kw).

        Filled tap-by-tap (kh*kw strided slice copies) directly into the
        output layout — substantially faster than gathering through a
        ``sliding_window_view`` and leaves the result contiguous, so the
        caller's flattening reshape is free.  ``dilation`` spaces the
        kernel taps (effective kernel size ``(k-1)*dilation + 1``).
        """
        n, c, h, w = x.shape
        eff_kh = (kh - 1) * dilation + 1
        eff_kw = (kw - 1) * dilation + 1
        if eff_kh > h or eff_kw > w:
            raise ValueError(
                f"im2col: effective kernel ({eff_kh}, {eff_kw}) exceeds "
                f"input spatial size ({h}, {w}); pad the input or shrink "
                f"the kernel/dilation"
            )
        ho = (h - eff_kh) // stride + 1
        wo = (w - eff_kw) // stride + 1
        if out is None:
            out = np.empty((n, ho, wo, c, kh, kw), dtype=x.dtype)
        for i in range(kh):
            row = i * dilation
            for j in range(kw):
                col = j * dilation
                patch = x[:, :, row:row + stride * ho:stride,
                          col:col + stride * wo:stride]
                out[:, :, :, :, i, j] = patch.transpose(0, 2, 3, 1)
        return out

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, ...], kh: int,
               kw: int, stride: int, dilation: int = 1) -> np.ndarray:
        """Scatter-add window gradients back to image shape (im2col inverse).

        Accumulates in NHWC (both sides of the ``+=`` keep their natural
        layout, no per-tap transposes) and converts to NCHW once at the
        end.
        """
        n, c, h, w = x_shape
        ho, wo = cols.shape[1], cols.shape[2]
        out = self._col2im_accumulator((n, h, w, c), cols.dtype)
        for i in range(kh):
            row = i * dilation
            h_stop = row + stride * ho
            for j in range(kw):
                col = j * dilation
                w_stop = col + stride * wo
                out[:, row:h_stop:stride, col:w_stop:stride, :] += (
                    cols[:, :, :, :, i, j]
                )
        return self._to_nchw(out, (n, c, h, w), cols.dtype)

    def conv2d_forward(self, x: np.ndarray, weight: np.ndarray,
                       bias: Optional[np.ndarray], stride: int, padding: int,
                       dilation: int, needs_grad: bool
                       ) -> Tuple[np.ndarray, Any]:
        co, ci, kh, kw = weight.shape
        xp = self._pad(x, padding)
        n, _, hp, wp = xp.shape
        eff_kh = (kh - 1) * dilation + 1
        eff_kw = (kw - 1) * dilation + 1
        ho = (hp - eff_kh) // stride + 1
        wo = (wp - eff_kw) // stride + 1
        cols_out = self._cols_buffer((n, ho, wo, ci, kh, kw), x.dtype,
                                     needs_grad)
        cols = self.im2col(xp, kh, kw, stride, dilation, out=cols_out)
        cols_flat = cols.reshape(n, ho, wo, ci * kh * kw)
        w_flat = weight.reshape(co, ci * kh * kw)
        out = self._nhwc_product(cols_flat, w_flat)     # (N, Ho, Wo, C_out)
        if bias is not None:
            out += bias
        out = self._to_nchw(out, (n, co, ho, wo), x.dtype)
        ctx = {
            "cols_flat": cols_flat if needs_grad else None,
            "w_flat": w_flat,
            "shape": (n, co, ci, kh, kw, ho, wo),
            "padded_shape": xp.shape,
            "stride": stride, "padding": padding, "dilation": dilation,
        }
        return out, ctx

    def conv2d_backward_input(self, ctx: Any, g: np.ndarray) -> np.ndarray:
        n, co, ci, kh, kw, ho, wo = ctx["shape"]
        g_nhwc = g.transpose(0, 2, 3, 1)                # (N, Ho, Wo, C_out)
        gc = self._cols_product(g_nhwc, ctx["w_flat"])  # (N, Ho, Wo, C*kh*kw)
        gc = gc.reshape(n, ho, wo, ci, kh, kw)
        gx = self.col2im(gc, ctx["padded_shape"], kh, kw, ctx["stride"],
                         ctx["dilation"])
        p = ctx["padding"]
        if p:
            gx = gx[:, :, p:-p, p:-p]
        return gx

    def conv2d_backward_weight(self, ctx: Any, g: np.ndarray) -> np.ndarray:
        n, co, ci, kh, kw, ho, wo = ctx["shape"]
        g_flat = g.transpose(0, 2, 3, 1).reshape(-1, co)  # (N*Ho*Wo, C_out)
        cols_2d = ctx["cols_flat"].reshape(-1, ci * kh * kw)
        gw = g_flat.T @ cols_2d                           # (C_out, C*kh*kw)
        return gw.reshape(co, ci, kh, kw)

    # -------------------------------------------------- pool primitives
    def avg_pool2d_forward(self, x: np.ndarray, k: int) -> np.ndarray:
        n, c, h, w = x.shape
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        return blocks.mean(axis=(3, 5))

    def avg_pool2d_backward(self, g: np.ndarray, k: int,
                            dtype: np.dtype) -> np.ndarray:
        g_scaled = (g / (k * k)).astype(dtype)
        return np.repeat(np.repeat(g_scaled, k, axis=2), k, axis=3)

    def max_pool2d_forward(self, x: np.ndarray, k: int
                           ) -> Tuple[np.ndarray, Any]:
        n, c, h, w = x.shape
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        # Pairwise maximum over the k*k taps (strided views, no copies) —
        # much faster than a strided-axis ``.max()`` reduction or the
        # transpose+argmax route, and bitwise-identical to both.
        taps = [blocks[:, :, :, i, :, j] for i in range(k) for j in range(k)]
        if len(taps) == 1:
            out = taps[0].copy()
        else:
            out = np.maximum(taps[0], taps[1])
            for tap in taps[2:]:
                np.maximum(out, tap, out=out)
        ctx = {"blocks": blocks, "out": out, "shape": x.shape, "k": k}
        return out, ctx

    def max_pool2d_backward(self, ctx: Any, g: np.ndarray) -> np.ndarray:
        # Route the gradient to the first maximum tap in (i, j) row-major
        # order — the same winner the flat argmax picked — by comparing
        # taps sequentially against the pooled maximum.  No argmax, no
        # transposed copies.
        n, c, h, w = ctx["shape"]
        k, blocks, out = ctx["k"], ctx["blocks"], ctx["out"]
        ho, wo = h // k, w // k
        gx = np.zeros((n, c, h, w), dtype=g.dtype)
        gblocks = gx.reshape(n, c, ho, k, wo, k)
        taken = np.zeros(out.shape, dtype=bool)
        for i in range(k):
            for j in range(k):
                win = (blocks[:, :, :, i, :, j] == out) & ~taken
                np.copyto(gblocks[:, :, :, i, :, j], g, where=win)
                taken |= win
        return gx

    # ------------------------------------------- elementwise primitives
    def relu(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)

    def relu_grad_mask(self, x: np.ndarray) -> np.ndarray:
        return x > 0

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        """Logistic function without overflow in either tail."""
        z = np.exp(-np.abs(x))
        return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z)).astype(x.dtype)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    # ------------------------------------------------------ buffer hooks
    # Subclasses (the buffered backend) override these to recycle scratch;
    # the defaults allocate fresh arrays, matching the historical code
    # path exactly.
    def _pad(self, x: np.ndarray, padding: int) -> np.ndarray:
        if not padding:
            return x
        return np.pad(x, ((0, 0), (0, 0), (padding, padding),
                          (padding, padding)))

    def _cols_buffer(self, shape: Tuple[int, ...], dtype: np.dtype,
                     needs_grad: bool) -> Optional[np.ndarray]:
        return None

    def _nhwc_product(self, cols_flat: np.ndarray,
                      w_flat: np.ndarray) -> np.ndarray:
        return cols_flat @ w_flat.T

    def _cols_product(self, g_nhwc: np.ndarray,
                      w_flat: np.ndarray) -> np.ndarray:
        return g_nhwc @ w_flat

    def _col2im_accumulator(self, shape: Tuple[int, ...],
                            dtype: np.dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def _to_nchw(self, nhwc: np.ndarray, shape: Tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
        return np.ascontiguousarray(nhwc.transpose(0, 3, 1, 2), dtype=dtype)


class NumpyBackend(KernelBackend):
    """The reference im2col path — the bitwise ground truth."""

    name = "numpy"
    bitwise = True


class FFTBackend(KernelBackend):
    """Frequency-domain convolution for wide-channel workloads.

    All three conv passes become ``rfft2`` → one batched complex matmul
    over frequencies (the channel contraction) → ``irfft2``:

    * *forward* — circular cross-correlation at the padded spatial size
      ``(Hp, Wp)``: exact because the kernel support fits inside the
      padded input (validated before dispatch), so no wraparound reaches
      the retained output positions; stride subsamples afterwards.
    * *input gradient* — full convolution of the stride-upsampled output
      gradient with the (dilation-embedded) kernel.  Its linear support
      is ``(Ho-1)·s + ek ≤ Hp``, so the same ``(Hp, Wp)`` circular
      transform is already exact.
    * *weight gradient* — circular correlation of the upsampled gradient
      with the forward's cached input spectrum; kernel taps are sliced
      out at the dilated positions.

    Work per pass is O(N·C·HW·log HW) for the transforms plus
    O(HW·N·Ci·Co) for the contraction, versus im2col's
    O(HW·N·Ci·Co·k²) — the k² factor is the win, so this backend pays
    off when channel products are large (the paper profile's 256-filter
    autoencoders) and loses on the thin smoke/quick models.  Stride > 1
    computes the stride-1 result and subsamples (correct, not
    optimised); the target workload is stride-1 ``same`` convolution.

    Not bitwise: transforms reorder the floating-point reduction.  With
    scipy present the whole pipeline stays in float32/complex64 and
    errors sit well inside ``rtol``/``atol`` below; without scipy the
    ``numpy.fft`` fallback round-trips through float64, which *tightens*
    accuracy at some extra memory cost.
    """

    name = "fft"
    bitwise = False
    rtol = 2e-4
    atol = 1e-5

    @staticmethod
    def _rfft2(a: np.ndarray, s: Tuple[int, int]) -> np.ndarray:
        if _scipy_fft is not None:
            return _scipy_fft.rfft2(a, s=s, axes=(-2, -1))
        return np.fft.rfft2(a, s=s, axes=(-2, -1))

    @staticmethod
    def _irfft2(a: np.ndarray, s: Tuple[int, int], dtype: np.dtype,
                axes: Tuple[int, int] = (-2, -1)) -> np.ndarray:
        if _scipy_fft is not None:
            out = _scipy_fft.irfft2(a, s=s, axes=axes)
        else:
            out = np.fft.irfft2(a, s=s, axes=axes)
        return out.astype(dtype, copy=False)

    @staticmethod
    def _support_phase(taps_h: np.ndarray, taps_w: np.ndarray,
                       hp: int, wp: int, cdtype) -> np.ndarray:
        """rfft2 phase matrix restricted to a small spatial support.

        ``P[(i, j), (fy, fx)] = exp(-2pi*i*(fy*u_i/Hp + fx*v_j/Wp))`` for
        tap positions ``u_i``/``v_j``.  A k x k kernel only occupies k^2
        of the Hp x Wp padded grid, so its spectrum is this tiny matrix
        applied to the taps — ``Co*Ci`` full FFTs of mostly-zero planes
        collapse into one GEMM over the k^2 support.
        """
        fy = np.arange(hp)
        fx = np.arange(wp // 2 + 1)
        ph_y = np.exp((-2j * np.pi / hp) * np.outer(taps_h, fy))
        ph_x = np.exp((-2j * np.pi / wp) * np.outer(taps_w, fx))
        p = ph_y[:, None, :, None] * ph_x[None, :, None, :]
        return p.reshape(taps_h.size * taps_w.size,
                         hp * fx.size).astype(cdtype)

    @classmethod
    def _support_inverse_phase(cls, taps_h: np.ndarray, taps_w: np.ndarray,
                               hp: int, wp: int, cdtype) -> np.ndarray:
        """Adjoint of :meth:`_support_phase`: half-spectrum -> taps.

        Evaluates the real ``irfft2`` at the tap positions only.  The
        dropped conjugate half of the spectrum contributes the complex
        conjugate of the kept half (Hermitian symmetry of a real
        signal's DFT), so non-self-conjugate columns count twice and the
        caller takes the real part of ``spectrum @ Q``.
        """
        q = np.conj(cls._support_phase(taps_h, taps_w, hp, wp, cdtype)).T
        fw = wp // 2 + 1
        weights = np.full(fw, 2.0)
        weights[0] = 1.0
        if wp % 2 == 0:
            weights[-1] = 1.0
        scale = (np.tile(weights, hp) / (hp * wp)).astype(q.real.dtype)
        return q * scale[:, None]

    @staticmethod
    def _weight_spectrum(w2: np.ndarray, phase: np.ndarray,
                         conj: bool) -> np.ndarray:
        """Spectrum of a small-support kernel, bins-first and contiguous.

        ``w2`` is (rows, taps) real, ``phase`` is (taps, F) complex from
        :meth:`_support_phase`.  Returns ``(F, rows)`` — the layout the
        batched frequency GEMMs consume — built with two *real* GEMMs
        (the kernel is real, so real/imag parts never mix) instead of
        one complex GEMM into a transposed copy.  ``conj=True`` folds
        the conjugation needed for cross-correlation into the build.
        """
        out = np.empty((phase.shape[1], w2.shape[0]), dtype=phase.dtype)
        out.real = phase.real.T @ w2.T
        if conj:
            np.negative(phase.imag.T @ w2.T, out=out.imag)
        else:
            out.imag = phase.imag.T @ w2.T
        return out

    def _upsampled_grad_spectrum(self, ctx: Any,
                                 g: np.ndarray) -> np.ndarray:
        """Bins-first rfft2 of the gradient scattered to stride positions.

        Returns ``(F, N, Co)`` so both backward contractions are single
        contiguous batched GEMMs over the frequency axis.  The result is
        memoized on the ctx for the (standard) case where the input and
        weight gradients are driven by the same output-gradient array.
        """
        cached = ctx.get("_gf")
        if cached is not None and cached[0] is g:
            return cached[1]
        n, co, ci, kh, kw, ho, wo = ctx["shape"]
        hp, wp = ctx["padded_shape"][2], ctx["padded_shape"][3]
        s = ctx["stride"]
        gup = np.zeros((n, co, hp, wp), dtype=g.dtype)
        gup[:, :, :(ho - 1) * s + 1:s, :(wo - 1) * s + 1:s] = g
        gf = self._rfft2(gup, (hp, wp))               # (N, Co, fh, fw)
        fh, fw = gf.shape[-2], gf.shape[-1]
        gf = gf.transpose(2, 3, 0, 1).reshape(fh * fw, n, co)
        ctx["_gf"] = (g, gf)
        return gf

    def conv2d_forward(self, x: np.ndarray, weight: np.ndarray,
                       bias: Optional[np.ndarray], stride: int, padding: int,
                       dilation: int, needs_grad: bool
                       ) -> Tuple[np.ndarray, Any]:
        co, ci, kh, kw = weight.shape
        xp = self._pad(x, padding)
        n, _, hp, wp = xp.shape
        eff_kh = (kh - 1) * dilation + 1
        eff_kw = (kw - 1) * dilation + 1
        ho = (hp - eff_kh) // stride + 1
        wo = (wp - eff_kw) // stride + 1

        xf4 = self._rfft2(xp, (hp, wp))               # (N, Ci, fh, fw)
        fh, fw = xf4.shape[-2], xf4.shape[-1]
        # Bins-first layout: (F, N, Ci), contiguous, so the channel
        # contraction below is one batched GEMM with no hidden copies.
        xf = xf4.transpose(2, 3, 0, 1).reshape(fh * fw, n, ci)
        # Weight spectrum via the k^2-support phase GEMM: equivalent to
        # rfft2 of the zero-padded (dilation-embedded) kernel, without
        # materializing or transforming Co*Ci mostly-zero Hp x Wp planes.
        # Conjugated at build time: cross-correlation = IDFT(X·conj(W)).
        taps_h = np.arange(kh) * dilation
        taps_w = np.arange(kw) * dilation
        phase = self._support_phase(taps_h, taps_w, hp, wp, xf.dtype)
        w2 = weight.transpose(1, 0, 2, 3).reshape(ci * co, kh * kw)
        wfc = self._weight_spectrum(w2, phase, conj=True)
        wfc = wfc.reshape(fh * fw, ci, co)            # (F, Ci, Co)
        yf = xf @ wfc                                 # (F, N, Co)
        # Invert over the leading (frequency) axes and only then move
        # the small cropped result back to NCHW.
        y = self._irfft2(yf.reshape(fh, fw, n, co), (hp, wp), x.dtype,
                         axes=(0, 1))
        y = y[:(ho - 1) * stride + 1:stride,
              :(wo - 1) * stride + 1:stride]
        out = np.ascontiguousarray(y.transpose(2, 3, 0, 1))
        if bias is not None:
            out += bias.reshape(-1, 1, 1)
        ctx = {
            "xf": xf if needs_grad else None,
            "wfc": wfc if needs_grad else None,
            "shape": (n, co, ci, kh, kw, ho, wo),
            "padded_shape": xp.shape,
            "stride": stride, "padding": padding, "dilation": dilation,
            "eff_k": (eff_kh, eff_kw),
        }
        return out, ctx

    def conv2d_backward_input(self, ctx: Any, g: np.ndarray) -> np.ndarray:
        n, co, ci, kh, kw, ho, wo = ctx["shape"]
        hp, wp = ctx["padded_shape"][2], ctx["padded_shape"][3]
        fh, fw = hp, wp // 2 + 1
        gf = self._upsampled_grad_spectrum(ctx, g)    # (F, N, Co)
        # Full convolution = IDFT(G · W); the linear support fits in
        # (Hp, Wp), so the circular transform is exact.  The cached
        # spectrum is conj(W) as (F, Ci, Co); rather than rebuilding W,
        # conjugate the *small* G side:  G·W = conj(conj(G)·conj(W)).
        cm = np.conj(gf) @ ctx["wfc"].transpose(0, 2, 1)   # (F, N, Ci)
        gx = self._irfft2(np.conj(cm).reshape(fh, fw, n, ci),
                          (hp, wp), g.dtype, axes=(0, 1))
        p = ctx["padding"]
        if p:
            gx = gx[p:-p, p:-p]
        return np.ascontiguousarray(gx.transpose(2, 3, 0, 1))

    def conv2d_backward_weight(self, ctx: Any, g: np.ndarray) -> np.ndarray:
        n, co, ci, kh, kw, ho, wo = ctx["shape"]
        hp, wp = ctx["padded_shape"][2], ctx["padded_shape"][3]
        d = ctx["dilation"]
        gf = self._upsampled_grad_spectrum(ctx, g)    # (F, N, Co)
        nf = gf.shape[0]
        # Correlation = IDFT(conj(G) · X), contracted over N per bin.
        gwf = np.conj(gf).transpose(0, 2, 1) @ ctx["xf"]   # (F, Co, Ci)
        # Only the k^2 dilated tap positions of the inverse transform
        # are kernel gradient; evaluate exactly those via the adjoint
        # phase GEMM instead of Co*Ci full irfft2 planes.
        taps_h = np.arange(kh) * d
        taps_w = np.arange(kw) * d
        inv = self._support_inverse_phase(taps_h, taps_w, hp, wp, gf.dtype)
        gw = (gwf.reshape(nf, co * ci).T @ inv).real
        gw = gw.astype(g.dtype, copy=False)
        return np.ascontiguousarray(gw.reshape(co, ci, kh, kw))


class BufferedBackend(KernelBackend):
    """The numpy path with per-thread scratch-array recycling.

    Attack loops dispatch the same conv shapes hundreds of times, so the
    allocator traffic for padded inputs, im2col column blocks, matmul
    outputs and col2im accumulators is pure overhead.  This backend keeps
    a small per-thread pool keyed by ``(role, shape, dtype)`` and reuses
    buffers across dispatches.

    Only arrays that provably never escape a dispatch are recycled: the
    padded input copy, the NHWC matmul outputs, the col2im accumulator,
    and — only when the forward runs with ``needs_grad=False`` — the
    im2col column block (under grad the columns are captured by the
    weight-gradient closure and must survive).  Everything handed back to
    callers is freshly copied, so results are bitwise-identical to
    ``"numpy"``.
    """

    name = "buffered"
    bitwise = True

    #: Pool entries per thread before the pool is dropped wholesale — a
    #: safety valve for pathological shape churn, far above the handful
    #: of distinct shapes a training/attack loop touches.
    MAX_BUFFERS = 64

    def __init__(self) -> None:
        self._local = threading.local()

    def _scratch(self, role: str, shape: Tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        key = (role, shape, np.dtype(dtype).str)
        buf = pool.get(key)
        if buf is None:
            if len(pool) >= self.MAX_BUFFERS:
                pool.clear()
            buf = np.empty(shape, dtype=dtype)
            pool[key] = buf
        return buf

    def pool_size(self) -> int:
        """Live scratch entries for the calling thread (test hook)."""
        return len(getattr(self._local, "pool", None) or {})

    def clear(self) -> None:
        """Drop the calling thread's scratch pool."""
        self._local.pool = {}

    def _pad(self, x: np.ndarray, padding: int) -> np.ndarray:
        if not padding:
            return x
        n, c, h, w = x.shape
        p = padding
        buf = self._scratch("pad", (n, c, h + 2 * p, w + 2 * p), x.dtype)
        buf.fill(0)
        buf[:, :, p:-p, p:-p] = x
        return buf

    def _cols_buffer(self, shape: Tuple[int, ...], dtype: np.dtype,
                     needs_grad: bool) -> Optional[np.ndarray]:
        # Under grad the columns outlive the dispatch (weight-gradient
        # closure), so they must be freshly allocated.
        if needs_grad:
            return None
        return self._scratch("cols", shape, dtype)

    def _nhwc_product(self, cols_flat: np.ndarray,
                      w_flat: np.ndarray) -> np.ndarray:
        shape = cols_flat.shape[:3] + (w_flat.shape[0],)
        dtype = np.result_type(cols_flat.dtype, w_flat.dtype)
        out = self._scratch("nhwc_out", shape, dtype)
        return np.matmul(cols_flat, w_flat.T, out=out)

    def _cols_product(self, g_nhwc: np.ndarray,
                      w_flat: np.ndarray) -> np.ndarray:
        shape = g_nhwc.shape[:3] + (w_flat.shape[1],)
        dtype = np.result_type(g_nhwc.dtype, w_flat.dtype)
        out = self._scratch("cols_grad", shape, dtype)
        return np.matmul(g_nhwc, w_flat, out=out)

    def _col2im_accumulator(self, shape: Tuple[int, ...],
                            dtype: np.dtype) -> np.ndarray:
        buf = self._scratch("col2im", shape, dtype)
        buf.fill(0)
        return buf

    def _to_nchw(self, nhwc: np.ndarray, shape: Tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
        # ``ascontiguousarray`` may return a view for degenerate shapes;
        # the NHWC source is scratch here, so always copy into a fresh
        # caller-owned array (same values, guaranteed ownership).
        out = np.empty(shape, dtype=dtype)
        np.copyto(out, nhwc.transpose(0, 3, 1, 2))
        return out


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {}
_REGISTRY_LOCK = threading.Lock()
_DEFAULT_NAME = "numpy"
#: Per-context override (``use_backend``); falls back to the module-wide
#: default for threads that never entered the context manager.
_ACTIVE: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_nn_backend", default=None)


def register_backend(name: str, backend: KernelBackend, *,
                     replace: bool = False) -> KernelBackend:
    """Register a backend singleton under ``name``.

    Third-party backends subclass :class:`KernelBackend` and register an
    instance; ``replace=True`` permits overriding an existing name (used
    by tests to install instrumented doubles).
    """
    if not isinstance(backend, KernelBackend):
        raise TypeError(f"backend must be a KernelBackend instance, "
                        f"got {type(backend).__name__}")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ValueError(f"backend {name!r} is already registered; "
                             f"pass replace=True to override")
        _REGISTRY[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend: explicit name, else the active/default one."""
    if name is None:
        name = _ACTIVE.get() or _DEFAULT_NAME
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(f"unknown nn backend {name!r}; "
                         f"available: {', '.join(available_backends())}")
    return backend


def get_default_backend_name() -> str:
    """The name the next backend-less dispatch in this context resolves to."""
    return _ACTIVE.get() or _DEFAULT_NAME


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous name.

    This is what ``--nn-backend`` and profile defaults configure.  New
    threads inherit it (context vars don't cross thread creation, so the
    module-wide default is the cross-thread mechanism); scoped overrides
    should prefer :func:`use_backend`.
    """
    global _DEFAULT_NAME
    get_backend(name)                                 # validate eagerly
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Scope the active backend to a ``with`` block (``None`` is a no-op).

    Context-local: concurrent serving threads and asyncio tasks can each
    pin their own backend without interfering.
    """
    if name is None:
        yield
        return
    get_backend(name)                                 # validate eagerly
    token = _ACTIVE.set(name)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


register_backend("numpy", NumpyBackend())
register_backend("fft", FFTBackend())
register_backend("buffered", BufferedBackend())
