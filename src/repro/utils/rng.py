"""Deterministic random-number utilities.

Every stochastic component in the library (dataset synthesis, weight
initialization, minibatch shuffling, attack tie-breaking) draws from a
``numpy.random.Generator`` built here, so that a single integer seed
pins down the entire experiment pipeline.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


class SeedSequence:
    """A tiny deterministic seed dispenser.

    Wraps :class:`numpy.random.SeedSequence` with a friendlier interface:
    ``SeedSequence(123).next()`` hands out an endless stream of independent
    32-bit seeds, so components can be seeded in construction order without
    correlated streams.
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)
        self._seq = np.random.SeedSequence(self.root_seed)
        self._count = 0

    def next(self) -> int:
        """Return the next independent 32-bit seed."""
        child = self._seq.spawn(1)[0]
        self._count += 1
        return int(child.generate_state(1, dtype=np.uint32)[0])

    def next_rng(self) -> np.random.Generator:
        """Return a Generator seeded with the next independent seed."""
        return np.random.default_rng(self.next())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequence(root_seed={self.root_seed}, dispensed={self._count})"


def rng_from_seed(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an int (deterministic), an existing Generator (passed through),
    or None (OS entropy — only appropriate for exploratory use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build an RNG from {type(seed).__name__}")


def spawn_seeds(root_seed: int, n: int) -> List[int]:
    """Derive ``n`` independent integer seeds from one root seed."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0]) for c in children]
