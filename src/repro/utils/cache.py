"""Disk caching of expensive artifacts keyed by stable config hashes.

Trained models and attack sweeps dominate experiment wall-clock; the
benchmarks for 7 tables and 13 figures share one pool of artifacts through
this cache.  Keys are derived from :func:`stable_hash`, which canonicalizes
nested dict/list/tuple/scalar configs into JSON and hashes with SHA-256, so
the same logical config always maps to the same file across processes.

The store is safe for concurrent writers (the parallel runtime fans
attack cells out across processes that share one cache root): every
write lands in a uniquely-named temp file in the destination directory,
is fsync'd, and is published with an atomic ``os.replace``.  Readers
treat any unreadable entry — e.g. a truncated ``.npz`` left by a crash
of an older, non-atomic writer — as a miss: the stale file is discarded
and the artifact is recomputed and rewritten instead of poisoning the
run.  Per-instance :class:`CacheStats` counters expose hit/miss/byte
traffic for telemetry and debugging.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.obs import counter
from repro.utils.logging import get_logger

log = get_logger(__name__)


def _canonicalize(obj: Any) -> Any:
    """Convert a config object to a JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr keeps full precision and is stable across platforms for
        # the magnitudes used in configs.
        return ("__float__", repr(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return ("__float__", repr(float(obj)))
    if isinstance(obj, np.ndarray):
        return ("__ndarray__", obj.shape, str(obj.dtype), hashlib.sha256(obj.tobytes()).hexdigest())
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    # Fall back to the type name + repr for simple value objects.
    return (type(obj).__name__, repr(obj))


def stable_hash(config: Any, length: int = 16) -> str:
    """Return a hex digest of a canonicalized config object.

    The digest is stable across processes and platforms for configs built
    from dicts, lists, tuples, scalars and ndarrays.
    """
    blob = json.dumps(_canonicalize(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


@dataclasses.dataclass
class CacheStats:
    """Traffic counters for one :class:`DiskCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    stale_discards: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["hit_rate"] = round(self.hit_rate, 4)
        return data

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def __str__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes}, stale={self.stale_discards}, "
                f"read={self.bytes_read}B, written={self.bytes_written}B)")


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power loss.

    ``os.replace`` makes the rename atomic against concurrent readers,
    but the *directory entry* itself is only durable once the directory
    inode reaches disk — without this, a kill at the wrong moment can
    roll a checkpoint manifest back to its previous (or no) version.
    Best-effort: platforms that cannot fsync a directory are skipped.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, write_fn: Callable[[Any], None],
                  suffix: str) -> int:
    """Write via unique temp file + fsync + rename + dir fsync; returns
    bytes written.

    Unique temp names make concurrent writers of the same key safe: each
    publishes a complete file and the last ``os.replace`` wins.  The file
    fsync closes the crash window where a rename could outlive its data;
    the directory fsync makes the rename itself durable.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=suffix)
    try:
        # mkstemp creates 0600; restore the umask-default perms a plain
        # open() would have given the destination file.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        size = os.path.getsize(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return size


class DiskCache:
    """A content-addressed npz store for numpy-array payloads.

    Each entry is a dict of ndarrays (plus a JSON metadata sidecar) stored
    as ``<root>/<namespace>/<key>.npz``.  Writes are atomic and readers
    self-heal: unreadable entries are discarded and surface as misses
    (see the module docstring for the concurrency contract).
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        self.root = Path(root)
        self.stats = CacheStats()
        self._hits = counter("cache/hits")
        self._misses = counter("cache/misses")
        self._writes = counter("cache/writes")

    def _path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.npz"

    def contains(self, namespace: str, key: str) -> bool:
        return self._path(namespace, key).exists()

    def save(self, namespace: str, key: str, arrays: Dict[str, np.ndarray],
             meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically store a dict of arrays under (namespace, key)."""
        path = self._path(namespace, key)
        written = _atomic_write(path, lambda fh: np.savez(fh, **arrays),
                                suffix=".npz.tmp")
        if meta is not None:
            meta_path = path.with_suffix(".json")
            blob = json.dumps(meta, indent=2, default=str).encode("utf-8")
            written += _atomic_write(meta_path, lambda fh: fh.write(blob),
                                     suffix=".json.tmp")
        self.stats.writes += 1
        self.stats.bytes_written += written
        self._writes.inc()
        return path

    def _discard_stale(self, namespace: str, key: str, reason: str) -> None:
        """Remove an unreadable entry (and its sidecar) so it is rewritten."""
        path = self._path(namespace, key)
        log.warning("discarding unreadable cache entry %s/%s: %s",
                    namespace, key, reason)
        self.stats.stale_discards += 1
        for victim in (path, path.with_suffix(".json")):
            try:
                victim.unlink()
            except OSError:
                pass

    def load(self, namespace: str, key: str) -> Dict[str, np.ndarray]:
        """Load a dict of arrays; raises KeyError if absent or unreadable.

        A truncated or corrupt file (e.g. from an interrupted legacy
        writer or a torn copy) is deleted and reported as a miss rather
        than crashing the run.
        """
        path = self._path(namespace, key)
        if not path.exists():
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(f"cache miss: {namespace}/{key}")
        try:
            size = path.stat().st_size
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            self._discard_stale(namespace, key, f"{type(exc).__name__}: {exc}")
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(
                f"cache entry unreadable: {namespace}/{key}") from None
        self.stats.hits += 1
        self._hits.inc()
        self.stats.bytes_read += size
        return arrays

    # ------------------------------------------------------------------
    # Small JSON documents (checkpoint manifests, run metadata)
    # ------------------------------------------------------------------
    def _json_path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.json"

    def save_json(self, namespace: str, key: str, obj: Dict[str, Any]) -> Path:
        """Atomically store a JSON document under (namespace, key).

        Same crash-safety contract as :meth:`save`: the document is
        published whole or not at all, so a checkpoint manifest can be
        rewritten after every completed sweep cell without a kill window
        ever leaving a torn file behind.
        """
        path = self._json_path(namespace, key)
        blob = json.dumps(obj, indent=2, sort_keys=True,
                          default=str).encode("utf-8")
        written = _atomic_write(path, lambda fh: fh.write(blob),
                                suffix=".json.tmp")
        self.stats.writes += 1
        self.stats.bytes_written += written
        self._writes.inc()
        return path

    def load_json(self, namespace: str, key: str) -> Dict[str, Any]:
        """Load a JSON document; raises KeyError if absent or unreadable.

        A corrupt document (torn legacy write, injected fault) is
        discarded and surfaces as a miss, mirroring :meth:`load`.
        """
        path = self._json_path(namespace, key)
        if not path.exists():
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(f"cache miss: {namespace}/{key}")
        try:
            size = path.stat().st_size
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.stats.stale_discards += 1
            self.stats.misses += 1
            self._misses.inc()
            log.warning("discarding unreadable cache json %s/%s: %s",
                        namespace, key, type(exc).__name__)
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"cache json unreadable: {namespace}/{key}") from None
        self.stats.hits += 1
        self._hits.inc()
        self.stats.bytes_read += size
        return obj

    def load_meta(self, namespace: str, key: str) -> Dict[str, Any]:
        path = self._path(namespace, key).with_suffix(".json")
        if not path.exists():
            raise KeyError(f"cache meta miss: {namespace}/{key}")
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self._discard_stale(namespace, key, f"meta {type(exc).__name__}")
            raise KeyError(
                f"cache meta unreadable: {namespace}/{key}") from None

    def get_or_compute(self, namespace: str, key: str,
                       compute: Callable[[], Dict[str, np.ndarray]],
                       meta: Optional[Dict[str, Any]] = None) -> Dict[str, np.ndarray]:
        """Return the cached arrays, computing and storing them on a miss."""
        try:
            return self.load(namespace, key)
        except KeyError:
            pass
        log.info("cache miss %s/%s — computing", namespace, key)
        arrays = compute()
        if not isinstance(arrays, dict):
            raise TypeError("compute() must return a dict of ndarrays")
        self.save(namespace, key, arrays, meta=meta)
        return arrays

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        base = self.root / namespace if namespace else self.root
        if not base.exists():
            return 0
        removed = 0
        for path in sorted(base.rglob("*")):
            if path.is_file():
                path.unlink()
                removed += 1
        return removed


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    """Process-wide cache rooted at $REPRO_CACHE_DIR (default .repro_cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
