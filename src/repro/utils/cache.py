"""Disk caching of expensive artifacts keyed by stable config hashes.

Trained models and attack sweeps dominate experiment wall-clock; the
benchmarks for 7 tables and 13 figures share one pool of artifacts through
this cache.  Keys are derived from :func:`stable_hash`, which canonicalizes
nested dict/list/tuple/scalar configs into JSON and hashes with SHA-256, so
the same logical config always maps to the same file across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.utils.logging import get_logger

log = get_logger(__name__)


def _canonicalize(obj: Any) -> Any:
    """Convert a config object to a JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr keeps full precision and is stable across platforms for
        # the magnitudes used in configs.
        return ("__float__", repr(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return ("__float__", repr(float(obj)))
    if isinstance(obj, np.ndarray):
        return ("__ndarray__", obj.shape, str(obj.dtype), hashlib.sha256(obj.tobytes()).hexdigest())
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    # Fall back to the type name + repr for simple value objects.
    return (type(obj).__name__, repr(obj))


def stable_hash(config: Any, length: int = 16) -> str:
    """Return a hex digest of a canonicalized config object.

    The digest is stable across processes and platforms for configs built
    from dicts, lists, tuples, scalars and ndarrays.
    """
    blob = json.dumps(_canonicalize(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


class DiskCache:
    """A content-addressed npz store for numpy-array payloads.

    Each entry is a dict of ndarrays (plus a JSON metadata sidecar) stored
    as ``<root>/<namespace>/<key>.npz``.  Writes are atomic (tempfile +
    rename) so concurrent benchmark runs cannot observe torn files.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        self.root = Path(root)

    def _path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.npz"

    def contains(self, namespace: str, key: str) -> bool:
        return self._path(namespace, key).exists()

    def save(self, namespace: str, key: str, arrays: Dict[str, np.ndarray],
             meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically store a dict of arrays under (namespace, key)."""
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        if meta is not None:
            meta_path = path.with_suffix(".json")
            meta_tmp = meta_path.with_suffix(".json.tmp")
            meta_tmp.write_text(json.dumps(meta, indent=2, default=str))
            os.replace(meta_tmp, meta_path)
        return path

    def load(self, namespace: str, key: str) -> Dict[str, np.ndarray]:
        """Load a dict of arrays; raises KeyError if absent."""
        path = self._path(namespace, key)
        if not path.exists():
            raise KeyError(f"cache miss: {namespace}/{key}")
        with np.load(path, allow_pickle=False) as data:
            return {name: data[name] for name in data.files}

    def load_meta(self, namespace: str, key: str) -> Dict[str, Any]:
        path = self._path(namespace, key).with_suffix(".json")
        if not path.exists():
            raise KeyError(f"cache meta miss: {namespace}/{key}")
        return json.loads(path.read_text())

    def get_or_compute(self, namespace: str, key: str,
                       compute: Callable[[], Dict[str, np.ndarray]],
                       meta: Optional[Dict[str, Any]] = None) -> Dict[str, np.ndarray]:
        """Return the cached arrays, computing and storing them on a miss."""
        try:
            return self.load(namespace, key)
        except KeyError:
            pass
        log.info("cache miss %s/%s — computing", namespace, key)
        arrays = compute()
        if not isinstance(arrays, dict):
            raise TypeError("compute() must return a dict of ndarrays")
        self.save(namespace, key, arrays, meta=meta)
        return arrays

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        base = self.root / namespace if namespace else self.root
        if not base.exists():
            return 0
        removed = 0
        for path in sorted(base.rglob("*")):
            if path.is_file():
                path.unlink()
                removed += 1
        return removed


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    """Process-wide cache rooted at $REPRO_CACHE_DIR (default .repro_cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
