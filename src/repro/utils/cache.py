"""Disk caching of expensive artifacts keyed by stable config hashes.

Trained models and attack sweeps dominate experiment wall-clock; the
benchmarks for 7 tables and 13 figures share one pool of artifacts through
this cache.  Keys are derived from :func:`stable_hash`, which canonicalizes
nested dict/list/tuple/scalar configs into JSON and hashes with SHA-256, so
the same logical config always maps to the same file across processes.

Since PR 8 the array store is backed by
:class:`repro.runtime.store.ShardedStore`: artifacts are content-addressed
(``shards/<shard>/<hash>.npz``), identical payloads are deduplicated
across cells, total size can be bounded by LRU eviction, and a flat
pre-sharding cache directory is read through and migrated in place.
:class:`DiskCache` remains the public API — a thin facade — and small
JSON documents (checkpoint manifests, scenario outcomes) keep the
original flat ``<root>/<namespace>/<key>.json`` layout, so existing
checkpoints remain valid.

The store is safe for concurrent writers (the parallel runtime fans
attack cells out across processes that share one cache root): every
write lands in a uniquely-named temp file in the destination directory,
is fsync'd, and is published with an atomic ``os.replace``.  Readers
treat any unreadable entry — e.g. a truncated ``.npz`` left by a crash
of an older, non-atomic writer — as a miss: the stale file is discarded
(sharded blobs are quarantined for post-mortem) and the artifact is
recomputed and rewritten instead of poisoning the run.  Per-instance
:class:`CacheStats` counters expose hit/miss/byte traffic for telemetry
and debugging.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.obs import counter
from repro.runtime.store import (
    CacheStats,
    ShardedStore,
    atomic_write as _atomic_write,
    _fsync_dir,
)
from repro.utils.logging import get_logger

log = get_logger(__name__)

__all__ = ["CacheStats", "DiskCache", "default_cache", "stable_hash"]


def _canonicalize(obj: Any) -> Any:
    """Convert a config object to a JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr keeps full precision and is stable across platforms for
        # the magnitudes used in configs.
        return ("__float__", repr(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return ("__float__", repr(float(obj)))
    if isinstance(obj, np.ndarray):
        return ("__ndarray__", obj.shape, str(obj.dtype), hashlib.sha256(obj.tobytes()).hexdigest())
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    # Fall back to the type name + repr for simple value objects.
    return (type(obj).__name__, repr(obj))


def stable_hash(config: Any, length: int = 16) -> str:
    """Return a hex digest of a canonicalized config object.

    The digest is stable across processes and platforms for configs built
    from dicts, lists, tuples, scalars and ndarrays.
    """
    blob = json.dumps(_canonicalize(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


class DiskCache:
    """Array/JSON artifact cache: the public facade over the sharded store.

    Each array entry is a dict of ndarrays (plus a JSON metadata sidecar)
    addressed by ``(namespace, key)``; with the default ``"sharded"``
    backend the bytes live in a content-addressed
    :class:`~repro.runtime.store.ShardedStore` (dedup, LRU eviction,
    quarantine), while ``backend="flat"`` keeps the original
    ``<root>/<namespace>/<key>.npz`` layout.  Writes are atomic and
    readers self-heal: unreadable entries are discarded and surface as
    misses (see the module docstring for the concurrency contract).

    Args:
        root: cache directory (default ``$REPRO_CACHE_DIR`` or
            ``.repro_cache``).
        backend: ``"sharded"`` (default) or ``"flat"``.
        shards: shard fan-out for the sharded backend.
        max_bytes: optional stored-bytes cap enforced by LRU eviction
            (sharded backend only).
    """

    def __init__(self, root: Optional[os.PathLike] = None, *,
                 backend: str = "sharded", shards: int = 256,
                 max_bytes: Optional[int] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        if backend not in ("sharded", "flat"):
            raise ValueError(f"unknown cache backend: {backend!r} "
                             "(expected 'sharded' or 'flat')")
        self.root = Path(root)
        self.backend = backend
        self.stats = CacheStats()
        self._store: Optional[ShardedStore] = None
        if backend == "sharded":
            self._store = ShardedStore(self.root, shards=shards,
                                       max_bytes=max_bytes, stats=self.stats)
        elif max_bytes is not None:
            raise ValueError("max_bytes requires the sharded backend")
        self._hits = counter("cache/hits")
        self._misses = counter("cache/misses")
        self._writes = counter("cache/writes")

    @property
    def store(self) -> Optional[ShardedStore]:
        """The sharded backend (None on the flat backend)."""
        return self._store

    def _path(self, namespace: str, key: str) -> Path:
        """On-disk artifact path for a key.

        On the sharded backend this resolves an existing entry to its
        content-addressed blob; an unknown key maps to the legacy flat
        location (where a pre-sharding writer would have put it), which
        keeps corruption-injection tooling meaningful on both layouts.
        """
        if self._store is not None:
            return self._store.artifact_path(namespace, key)
        return self.root / namespace / f"{key}.npz"

    def contains(self, namespace: str, key: str) -> bool:
        if self._store is not None:
            return self._store.contains(namespace, key)
        return self._path(namespace, key).exists()

    def save(self, namespace: str, key: str, arrays: Dict[str, np.ndarray],
             meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically store a dict of arrays under (namespace, key).

        Returns the path of the stored artifact (the content-addressed
        blob on the sharded backend).
        """
        if self._store is not None:
            path = self._store.put(namespace, key, arrays, meta=meta)
            self._writes.inc()
            return path
        path = self._path(namespace, key)
        written = _atomic_write(path, lambda fh: np.savez(fh, **arrays),
                                suffix=".npz.tmp")
        if meta is not None:
            meta_path = path.with_suffix(".json")
            blob = json.dumps(meta, indent=2, default=str).encode("utf-8")
            written += _atomic_write(meta_path, lambda fh: fh.write(blob),
                                     suffix=".json.tmp")
        self.stats.writes += 1
        self.stats.bytes_written += written
        self._writes.inc()
        return path

    def _discard_stale(self, namespace: str, key: str, reason: str) -> None:
        """Remove an unreadable flat entry (and sidecar) so it is rewritten."""
        path = self.root / namespace / f"{key}.npz"
        log.warning("discarding unreadable cache entry %s/%s: %s",
                    namespace, key, reason)
        self.stats.stale_discards += 1
        for victim in (path, path.with_suffix(".json")):
            try:
                victim.unlink()
            except OSError:
                pass

    def load(self, namespace: str, key: str) -> Dict[str, np.ndarray]:
        """Load a dict of arrays; raises KeyError if absent or unreadable.

        A truncated or corrupt file (e.g. from an interrupted legacy
        writer or a torn copy) is discarded — quarantined on the sharded
        backend — and reported as a miss rather than crashing the run.
        """
        if self._store is not None:
            try:
                arrays = self._store.get(namespace, key)
            except KeyError:
                self._misses.inc()
                raise
            self._hits.inc()
            return arrays
        path = self._path(namespace, key)
        if not path.exists():
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(f"cache miss: {namespace}/{key}")
        try:
            size = path.stat().st_size
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            self._discard_stale(namespace, key, f"{type(exc).__name__}: {exc}")
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(
                f"cache entry unreadable: {namespace}/{key}") from None
        self.stats.hits += 1
        self._hits.inc()
        self.stats.bytes_read += size
        return arrays

    # ------------------------------------------------------------------
    # Small JSON documents (checkpoint manifests, run metadata)
    # ------------------------------------------------------------------
    def _json_path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.json"

    def save_json(self, namespace: str, key: str, obj: Dict[str, Any]) -> Path:
        """Atomically store a JSON document under (namespace, key).

        Same crash-safety contract as :meth:`save`: the document is
        published whole or not at all, so a checkpoint manifest can be
        rewritten after every completed sweep cell without a kill window
        ever leaving a torn file behind.  JSON documents always use the
        flat layout — they are tiny, human-inspectable, and existing
        checkpoints must stay valid across the backend switch.
        """
        path = self._json_path(namespace, key)
        blob = json.dumps(obj, indent=2, sort_keys=True,
                          default=str).encode("utf-8")
        written = _atomic_write(path, lambda fh: fh.write(blob),
                                suffix=".json.tmp")
        self.stats.writes += 1
        self.stats.bytes_written += written
        self._writes.inc()
        return path

    def load_json(self, namespace: str, key: str) -> Dict[str, Any]:
        """Load a JSON document; raises KeyError if absent or unreadable.

        A corrupt document (torn legacy write, injected fault) is
        discarded and surfaces as a miss, mirroring :meth:`load`.
        """
        path = self._json_path(namespace, key)
        if not path.exists():
            self.stats.misses += 1
            self._misses.inc()
            raise KeyError(f"cache miss: {namespace}/{key}")
        try:
            size = path.stat().st_size
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.stats.stale_discards += 1
            self.stats.misses += 1
            self._misses.inc()
            log.warning("discarding unreadable cache json %s/%s: %s",
                        namespace, key, type(exc).__name__)
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"cache json unreadable: {namespace}/{key}") from None
        self.stats.hits += 1
        self._hits.inc()
        self.stats.bytes_read += size
        return obj

    def load_meta(self, namespace: str, key: str) -> Dict[str, Any]:
        if self._store is not None:
            return self._store.get_meta(namespace, key)
        path = self._path(namespace, key).with_suffix(".json")
        if not path.exists():
            raise KeyError(f"cache meta miss: {namespace}/{key}")
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self._discard_stale(namespace, key, f"meta {type(exc).__name__}")
            raise KeyError(
                f"cache meta unreadable: {namespace}/{key}") from None

    def get_or_compute(self, namespace: str, key: str,
                       compute: Callable[[], Dict[str, np.ndarray]],
                       meta: Optional[Dict[str, Any]] = None) -> Dict[str, np.ndarray]:
        """Return the cached arrays, computing and storing them on a miss."""
        try:
            return self.load(namespace, key)
        except KeyError:
            pass
        log.info("cache miss %s/%s — computing", namespace, key)
        arrays = compute()
        if not isinstance(arrays, dict):
            raise TypeError("compute() must return a dict of ndarrays")
        self.save(namespace, key, arrays, meta=meta)
        return arrays

    # ------------------------------------------------------------------
    # Eviction pinning (no-op on the flat backend)
    # ------------------------------------------------------------------
    def pin(self, namespace: str, key: str) -> None:
        """Protect an entry from LRU eviction while a sweep checkpoint
        still references it."""
        if self._store is not None:
            self._store.pin(namespace, key)

    def unpin(self, namespace: str, key: str) -> None:
        if self._store is not None:
            self._store.unpin(namespace, key)

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        if self._store is not None and namespace is not None:
            removed = self._store.clear(namespace)
            # JSON documents live outside the store but share the
            # namespace directory sweep above, so nothing extra to do.
            return removed
        base = self.root / namespace if namespace else self.root
        if not base.exists():
            return 0
        removed = 0
        for path in sorted(base.rglob("*")):
            if path.is_file():
                path.unlink()
                removed += 1
        if self._store is not None:
            self._store.unpin_all()
        return removed


_DEFAULT: Optional[DiskCache] = None


def default_cache() -> DiskCache:
    """Process-wide cache rooted at $REPRO_CACHE_DIR (default .repro_cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache()
    return _DEFAULT
