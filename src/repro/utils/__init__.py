"""Shared utilities: seeded RNG helpers, config hashing, disk caching, logging.

These utilities underpin the determinism guarantees of the whole
reproduction: every stochastic component receives an explicit seed, and
every expensive artifact (trained model, attack sweep) is cached on disk
under a key derived from a stable hash of its full configuration.
"""

from repro.utils.cache import CacheStats, DiskCache, default_cache, stable_hash
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequence, rng_from_seed, spawn_seeds

__all__ = [
    "CacheStats",
    "DiskCache",
    "SeedSequence",
    "default_cache",
    "get_logger",
    "rng_from_seed",
    "spawn_seeds",
    "stable_hash",
]
