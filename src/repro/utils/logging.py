"""Minimal logging setup shared by the library, benches and examples."""

from __future__ import annotations

import logging
import os

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG_LEVEL", "INFO").upper()
    level = getattr(logging, level_name, logging.INFO)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s", "%H:%M:%S")
    )
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        root.addHandler(handler)
    root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace, configuring it lazily.

    Level is controlled with the ``REPRO_LOG_LEVEL`` environment variable
    (default INFO).
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
