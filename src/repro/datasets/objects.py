"""SyntheticObjects — the offline stand-in for CIFAR-10.

32x32 RGB scenes: one of ten parametric object classes (shapes, stripe
patterns, multi-blob scenes) drawn in a class-correlated but noisy color
over a textured background.  By construction this task is *harder* than
SyntheticDigits — textured backgrounds raise the reconstruction noise
floor of MagNet's autoencoders and lower classifier accuracy — matching
the MNIST-vs-CIFAR difficulty ordering the paper's experiments exploit.
"""

from __future__ import annotations

import colorsys
import numpy as np

from repro.datasets.base import Dataset, DataSplits
from repro.datasets.rendering import (
    add_pixel_noise,
    gaussian_blur,
    perlin_like_texture,
    pixel_grid,
    soft_mask,
)
from repro.utils.rng import rng_from_seed

IMAGE_SIZE = 32
NUM_CLASSES = 10

CLASS_NAMES = (
    "disc", "square", "triangle", "ring", "cross",
    "hstripes", "vstripes", "checker", "diagonal", "blobs",
)

# Base hue per class (class-correlated color, like CIFAR's sky/grass priors).
_CLASS_HUES = np.linspace(0.0, 0.9, NUM_CLASSES)


def _hsv_to_rgb(h: float, s: float, v: float) -> np.ndarray:
    return np.array(colorsys.hsv_to_rgb(h % 1.0, s, v), dtype=np.float32)


def _shape_mask(cls: int, rng: np.random.Generator, size: int) -> np.ndarray:
    """Return a soft foreground mask in [0,1] for the class's shape family."""
    px, py = pixel_grid(size)
    cx = rng.uniform(0.35, 0.65)
    cy = rng.uniform(0.35, 0.65)
    radius = rng.uniform(0.18, 0.30)
    edge = 2.0 / size
    name = CLASS_NAMES[cls]

    if name == "disc":
        sd = np.hypot(px - cx, py - cy) - radius
        return soft_mask(sd, edge)
    if name == "square":
        angle = rng.uniform(-0.4, 0.4)
        ux = np.cos(angle) * (px - cx) + np.sin(angle) * (py - cy)
        uy = -np.sin(angle) * (px - cx) + np.cos(angle) * (py - cy)
        sd = np.maximum(np.abs(ux), np.abs(uy)) - radius
        return soft_mask(sd, edge)
    if name == "triangle":
        # Equilateral-ish triangle via three half-plane constraints.
        angle = rng.uniform(0, 2 * np.pi)
        sd = np.full_like(px, -np.inf)
        for k in range(3):
            theta = angle + 2 * np.pi * k / 3
            nx, ny = np.cos(theta), np.sin(theta)
            plane = nx * (px - cx) + ny * (py - cy) - radius * 0.75
            sd = np.maximum(sd, plane)
        return soft_mask(sd, edge)
    if name == "ring":
        r = np.hypot(px - cx, py - cy)
        width = radius * rng.uniform(0.28, 0.42)
        sd = np.abs(r - radius) - width
        return soft_mask(sd, edge)
    if name == "cross":
        angle = rng.uniform(-0.3, 0.3)
        ux = np.cos(angle) * (px - cx) + np.sin(angle) * (py - cy)
        uy = -np.sin(angle) * (px - cx) + np.cos(angle) * (py - cy)
        arm = radius * rng.uniform(0.30, 0.42)
        bar1 = np.maximum(np.abs(ux) - radius, np.abs(uy) - arm)
        bar2 = np.maximum(np.abs(uy) - radius, np.abs(ux) - arm)
        sd = np.minimum(bar1, bar2)
        return soft_mask(sd, edge)
    if name == "hstripes":
        freq = rng.integers(3, 6)
        phase = rng.uniform(0, 2 * np.pi)
        return (0.5 + 0.5 * np.sin(2 * np.pi * freq * py + phase)).astype(np.float32)
    if name == "vstripes":
        freq = rng.integers(3, 6)
        phase = rng.uniform(0, 2 * np.pi)
        return (0.5 + 0.5 * np.sin(2 * np.pi * freq * px + phase)).astype(np.float32)
    if name == "checker":
        freq = rng.integers(2, 5)
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        wave = (np.sin(2 * np.pi * freq * px + phase_x)
                * np.sin(2 * np.pi * freq * py + phase_y))
        return (0.5 + 0.5 * np.sign(wave) * np.minimum(np.abs(wave) * 3, 1)).astype(np.float32)
    if name == "diagonal":
        angle = rng.uniform(np.pi / 6, np.pi / 3) * rng.choice([-1.0, 1.0])
        nx, ny = np.sin(angle), np.cos(angle)
        width = rng.uniform(0.10, 0.18)
        sd = np.abs(nx * (px - cx) + ny * (py - cy)) - width
        return soft_mask(sd, edge)
    if name == "blobs":
        sd = np.full_like(px, np.inf)
        for _ in range(3):
            bx, by = rng.uniform(0.2, 0.8, size=2)
            br = rng.uniform(0.08, 0.16)
            sd = np.minimum(sd, np.hypot(px - bx, py - by) - br)
        return soft_mask(sd, edge)
    raise ValueError(f"unknown class {cls}")  # pragma: no cover


def render_object(cls: int, rng: np.random.Generator,
                  size: int = IMAGE_SIZE) -> np.ndarray:
    """Render one object scene as a (3, size, size) float32 image in [0, 1]."""
    if not 0 <= cls < NUM_CLASSES:
        raise ValueError(f"class must be 0-{NUM_CLASSES - 1}, got {cls}")
    mask = _shape_mask(cls, rng, size)

    fg_hue = _CLASS_HUES[cls] + rng.normal(0, 0.05)
    fg = _hsv_to_rgb(fg_hue, rng.uniform(0.55, 0.95), rng.uniform(0.65, 1.0))
    bg_hue = fg_hue + rng.uniform(0.3, 0.7)
    bg = _hsv_to_rgb(bg_hue, rng.uniform(0.1, 0.45), rng.uniform(0.25, 0.75))

    texture = perlin_like_texture(size, rng)
    bg_field = bg[:, None, None] * (0.7 + 0.5 * texture)[None, :, :]
    fg_texture = 0.85 + 0.3 * perlin_like_texture(size, rng, octaves=2)
    fg_field = fg[:, None, None] * fg_texture[None, :, :]

    image = bg_field * (1.0 - mask[None]) + fg_field * mask[None]
    image = np.clip(image, 0.0, 1.0)
    image = gaussian_blur(image, rng.uniform(0.2, 0.5))
    # Heterogeneous per-image noise, for the same detector-headroom
    # reasons as SyntheticDigits (see repro.datasets.digits).
    image = add_pixel_noise(image, rng.uniform(0.01, 0.06), rng)
    return image.astype(np.float32)


def generate_objects(n: int, seed: int = 0, size: int = IMAGE_SIZE) -> Dataset:
    """Generate a class-balanced SyntheticObjects dataset of ``n`` images."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = rng_from_seed(seed)
    labels = np.arange(n) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.stack([render_object(int(c), rng, size=size) for c in labels])
    return Dataset(images, labels, name="synthetic_objects")


def load_object_splits(n_train: int = 2500, n_val: int = 600, n_test: int = 1200,
                       seed: int = 0) -> DataSplits:
    """Generate disjoint train/val/test SyntheticObjects splits."""
    return DataSplits(
        train=generate_objects(n_train, seed=seed * 3 + 11),
        val=generate_objects(n_val, seed=seed * 3 + 12),
        test=generate_objects(n_test, seed=seed * 3 + 13),
        name="synthetic_objects",
    )
