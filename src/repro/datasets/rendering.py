"""Procedural 2-D rendering primitives for the synthetic datasets.

The offline environment has no MNIST/CIFAR-10, so the stand-in datasets
are rendered from parametric descriptions: digits as anti-aliased stroke
fields, objects as soft shape masks over textured backgrounds.  Everything
here is deterministic given the caller's RNG.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import ndimage

Point = Tuple[float, float]


def pixel_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (X, Y) coordinate grids in [0, 1] for a square canvas."""
    coords = (np.arange(size) + 0.5) / size
    return np.meshgrid(coords, coords, indexing="xy")


def segment_distance(px: np.ndarray, py: np.ndarray,
                     a: Point, b: Point) -> np.ndarray:
    """Euclidean distance from each pixel to the segment a-b (unit coords)."""
    ax, ay = a
    bx, by = b
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq < 1e-12:
        return np.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / length_sq
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(px - (ax + t * dx), py - (ay + t * dy))


def render_strokes(strokes: Sequence[Sequence[Point]], size: int,
                   thickness: float, softness: float = 0.35) -> np.ndarray:
    """Render polylines as an anti-aliased intensity field in [0, 1].

    ``thickness`` is the stroke half-width in unit coordinates; ``softness``
    controls the width of the intensity falloff at the stroke edge
    (relative to thickness), which gives the glyphs MNIST-like soft edges.
    """
    px, py = pixel_grid(size)
    dist = np.full((size, size), np.inf)
    for stroke in strokes:
        for a, b in zip(stroke[:-1], stroke[1:]):
            dist = np.minimum(dist, segment_distance(px, py, a, b))
    edge = max(thickness * softness, 1e-6)
    intensity = np.clip((thickness - dist) / edge + 1.0, 0.0, 1.0)
    return intensity.astype(np.float32)


def affine_points(points: Sequence[Point], rotation: float, scale: float,
                  shear: float, shift: Tuple[float, float],
                  center: Point = (0.5, 0.5)) -> list:
    """Apply rotation/scale/shear/shift about ``center`` to unit-space points."""
    cx, cy = center
    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    out = []
    for x, y in points:
        ux, uy = x - cx, y - cy
        ux = ux + shear * uy                      # shear in x
        rx = scale * (cos_r * ux - sin_r * uy)    # rotate + scale
        ry = scale * (sin_r * ux + cos_r * uy)
        out.append((rx + cx + shift[0], ry + cy + shift[1]))
    return out


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Blur trailing spatial axes; channels (leading axes) are independent."""
    if sigma <= 0:
        return image
    pad = [0] * (image.ndim - 2) + [sigma, sigma]
    return ndimage.gaussian_filter(image, sigma=pad).astype(np.float32)


def add_pixel_noise(image: np.ndarray, level: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Additive Gaussian pixel noise, clipped back into [0, 1]."""
    if level <= 0:
        return image
    noisy = image + rng.normal(0.0, level, size=image.shape)
    return np.clip(noisy, 0.0, 1.0).astype(np.float32)


def soft_mask(signed_distance: np.ndarray, edge: float) -> np.ndarray:
    """Convert a signed distance field (inside < 0) into a soft 0..1 mask."""
    return np.clip(0.5 - signed_distance / max(edge, 1e-6), 0.0, 1.0).astype(np.float32)


def perlin_like_texture(size: int, rng: np.random.Generator,
                        octaves: int = 3, base_scale: int = 4) -> np.ndarray:
    """Cheap multi-octave value noise in [0, 1] for object backgrounds."""
    texture = np.zeros((size, size), dtype=np.float64)
    amplitude, total = 1.0, 0.0
    scale = base_scale
    for _ in range(octaves):
        coarse = rng.random((scale, scale))
        zoom = size / scale
        layer = ndimage.zoom(coarse, zoom, order=1, mode="nearest")[:size, :size]
        texture += amplitude * layer
        total += amplitude
        amplitude *= 0.5
        scale *= 2
    texture /= total
    lo, hi = texture.min(), texture.max()
    if hi - lo > 1e-9:
        texture = (texture - lo) / (hi - lo)
    return texture.astype(np.float32)
