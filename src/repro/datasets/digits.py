"""SyntheticDigits — the offline stand-in for MNIST.

28x28 single-channel digit glyphs rendered from seven-segment skeletons
with handwriting-like variation: per-endpoint jitter, random affine
(rotation / scale / shear / shift), variable stroke thickness, Gaussian
blur and pixel noise.  The result is a 10-class image manifold with the
properties the paper's experiments rely on: a small conv net classifies
it with ~99% accuracy, and a small conv autoencoder learns its manifold
well enough for MagNet's reconstruction-error detectors to work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import Dataset, DataSplits
from repro.datasets.rendering import (
    add_pixel_noise,
    affine_points,
    gaussian_blur,
    render_strokes,
)
from repro.utils.rng import rng_from_seed

IMAGE_SIZE = 28
NUM_CLASSES = 10

# Canonical glyph box in unit coordinates.
_L, _R = 0.30, 0.70
_T, _M, _B = 0.18, 0.50, 0.82

# Seven-segment endpoints (x grows right, y grows down).
_SEGMENTS: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "A": ((_L, _T), (_R, _T)),   # top
    "B": ((_R, _T), (_R, _M)),   # top-right
    "C": ((_R, _M), (_R, _B)),   # bottom-right
    "D": ((_L, _B), (_R, _B)),   # bottom
    "E": ((_L, _M), (_L, _B)),   # bottom-left
    "F": ((_L, _T), (_L, _M)),   # top-left
    "G": ((_L, _M), (_R, _M)),   # middle
}

DIGIT_SEGMENTS: Dict[int, str] = {
    0: "ABCDEF",
    1: "BC",
    2: "ABGED",
    3: "ABGCD",
    4: "FGBC",
    5: "AFGCD",
    6: "AFGECD",
    7: "ABC",
    8: "ABCDEFG",
    9: "ABCDFG",
}


def digit_skeleton(digit: int) -> List[List[Tuple[float, float]]]:
    """Return the canonical stroke list (polylines) for ``digit``."""
    if digit not in DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    return [list(_SEGMENTS[s]) for s in DIGIT_SEGMENTS[digit]]


def render_digit(digit: int, rng: np.random.Generator,
                 size: int = IMAGE_SIZE, clean: bool = False) -> np.ndarray:
    """Render one digit as a (1, size, size) float32 image in [0, 1].

    ``clean=True`` disables all randomness (canonical glyph) — useful for
    tests and for the Figure-1 gallery's reference row.
    """
    strokes = digit_skeleton(digit)
    if clean:
        thickness, blur_sigma, noise = 0.045, 0.5, 0.0
    else:
        rotation = rng.uniform(-0.20, 0.20)
        scale = rng.uniform(0.85, 1.10)
        shear = rng.uniform(-0.18, 0.18)
        shift = (rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05))
        jitter = 0.018
        strokes = [
            [(x + rng.normal(0, jitter), y + rng.normal(0, jitter))
             for x, y in affine_points(stroke, rotation, scale, shear, shift)]
            for stroke in strokes
        ]
        thickness = rng.uniform(0.034, 0.060)
        blur_sigma = rng.uniform(0.35, 0.75)
        # Heterogeneous per-image noise. MNIST backgrounds are nearly
        # clean, but MNIST's *data manifold* is far richer than a
        # seven-segment renderer's, which spreads MagNet's clean
        # reconstruction scores over a wide range.  Sampling the noise
        # level per image reproduces that spread — and hence the same
        # *relative* detector headroom over typical clean images that the
        # paper's kappa sweeps rely on (see DESIGN.md §2).
        noise = rng.uniform(0.02, 0.075)

    image = render_strokes(strokes, size, thickness)
    image = gaussian_blur(image, blur_sigma)
    # Renormalize so strokes saturate like MNIST's ink does.
    peak = image.max()
    if peak > 1e-6:
        image = np.clip(image / max(peak, 0.75), 0.0, 1.0)
    image = add_pixel_noise(image, noise, rng)
    return image[None, :, :].astype(np.float32)


def generate_digits(n: int, seed: int = 0, size: int = IMAGE_SIZE) -> Dataset:
    """Generate a class-balanced SyntheticDigits dataset of ``n`` images."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = rng_from_seed(seed)
    labels = np.arange(n) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.stack([render_digit(int(d), rng, size=size) for d in labels])
    return Dataset(images, labels, name="synthetic_digits")


def load_digit_splits(n_train: int = 3000, n_val: int = 600, n_test: int = 1500,
                      seed: int = 0) -> DataSplits:
    """Generate disjoint train/val/test SyntheticDigits splits.

    The splits use independent RNG streams derived from ``seed``, so they
    are disjoint samples of the same generative process — the synthetic
    analogue of MNIST's train/test division.
    """
    return DataSplits(
        train=generate_digits(n_train, seed=seed * 3 + 1),
        val=generate_digits(n_val, seed=seed * 3 + 2),
        test=generate_digits(n_test, seed=seed * 3 + 3),
        name="synthetic_digits",
    )
