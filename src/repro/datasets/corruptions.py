"""Common image corruptions for robustness evaluation.

Adversarial robustness (the paper's subject) and corruption robustness
are complementary axes; a downstream user evaluating MagNet-style
defenses typically reports both.  These corruptions follow the
Hendrycks & Dietterich (2019) families that make sense at 28-32 px:
Gaussian noise, blur, contrast reduction, brightness shift, pixelation
and occlusion — each with a 1-5 severity scale.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np
from scipy import ndimage

from repro.utils.rng import rng_from_seed

CorruptionFn = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


def _check(x: np.ndarray, severity: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"expected NCHW images, got shape {x.shape}")
    if not 1 <= severity <= 5:
        raise ValueError(f"severity must be 1-5, got {severity}")
    return x


def gaussian_noise(x: np.ndarray, severity: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Additive Gaussian noise; sigma grows with severity."""
    x = _check(x, severity)
    sigma = [0.04, 0.08, 0.12, 0.18, 0.26][severity - 1]
    return np.clip(x + rng.normal(0, sigma, x.shape), 0, 1).astype(np.float32)


def gaussian_blur(x: np.ndarray, severity: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Isotropic blur of the spatial axes."""
    x = _check(x, severity)
    sigma = [0.4, 0.7, 1.0, 1.5, 2.0][severity - 1]
    return ndimage.gaussian_filter(
        x, sigma=(0, 0, sigma, sigma)).astype(np.float32)


def contrast(x: np.ndarray, severity: int,
             rng: np.random.Generator) -> np.ndarray:
    """Compress pixel values toward the per-image mean."""
    x = _check(x, severity)
    factor = [0.75, 0.6, 0.45, 0.3, 0.2][severity - 1]
    mean = x.mean(axis=(2, 3), keepdims=True)
    return np.clip((x - mean) * factor + mean, 0, 1).astype(np.float32)


def brightness(x: np.ndarray, severity: int,
               rng: np.random.Generator) -> np.ndarray:
    """Additive brightness shift (sign alternates per image)."""
    x = _check(x, severity)
    shift = [0.05, 0.1, 0.15, 0.22, 0.3][severity - 1]
    signs = rng.choice([-1.0, 1.0], size=(x.shape[0], 1, 1, 1))
    return np.clip(x + shift * signs, 0, 1).astype(np.float32)


def pixelate(x: np.ndarray, severity: int,
             rng: np.random.Generator) -> np.ndarray:
    """Downsample then nearest-neighbour upsample."""
    x = _check(x, severity)
    factor = [1, 2, 2, 4, 4][severity - 1]
    if factor == 1:
        return x
    n, c, h, w = x.shape
    if h % factor or w % factor:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by {factor}")
    small = x.reshape(n, c, h // factor, factor, w // factor, factor
                      ).mean(axis=(3, 5))
    return np.repeat(np.repeat(small, factor, axis=2), factor,
                     axis=3).astype(np.float32)


def occlusion(x: np.ndarray, severity: int,
              rng: np.random.Generator) -> np.ndarray:
    """Zero out a random square patch per image."""
    x = _check(x, severity).copy()
    n, c, h, w = x.shape
    frac = [0.1, 0.15, 0.2, 0.3, 0.4][severity - 1]
    size = max(1, int(min(h, w) * frac))
    for i in range(n):
        top = rng.integers(0, h - size + 1)
        left = rng.integers(0, w - size + 1)
        x[i, :, top:top + size, left:left + size] = 0.0
    return x


CORRUPTIONS: Dict[str, CorruptionFn] = {
    "gaussian_noise": gaussian_noise,
    "gaussian_blur": gaussian_blur,
    "contrast": contrast,
    "brightness": brightness,
    "pixelate": pixelate,
    "occlusion": occlusion,
}


def corrupt(x: np.ndarray, corruption: str, severity: int,
            seed: int = 0) -> np.ndarray:
    """Apply a named corruption at the given severity (deterministic)."""
    if corruption not in CORRUPTIONS:
        raise KeyError(f"unknown corruption {corruption!r}; "
                       f"available: {sorted(CORRUPTIONS)}")
    rng = rng_from_seed(seed)
    return CORRUPTIONS[corruption](x, severity, rng)


def robustness_curve(model, x: np.ndarray, y: np.ndarray, corruption: str,
                     severities: Sequence[int] = (1, 2, 3, 4, 5),
                     seed: int = 0) -> Dict[int, float]:
    """Accuracy of ``model`` under one corruption across severities."""
    from repro.nn.training import accuracy

    return {
        int(s): accuracy(model, corrupt(x, corruption, s, seed=seed + s), y)
        for s in severities
    }
