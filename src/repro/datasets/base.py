"""Dataset containers and split utilities.

All images in the library are float32 NCHW arrays with pixel values in
``[0, 1]`` — exactly the normalized space the paper's attacks operate in
(the box constraint of EAD's eq. (1) is ``x ∈ [0, 1]^p``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass
class Dataset:
    """A labelled image set: ``x`` is (N, C, H, W) float32 in [0,1], ``y`` is (N,) int64."""

    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float32)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.ndim != 4:
            raise ValueError(f"x must be NCHW, got shape {self.x.shape}")
        if self.y.shape != (self.x.shape[0],):
            raise ValueError(f"y shape {self.y.shape} != ({self.x.shape[0]},)")
        lo, hi = float(self.x.min(initial=0.0)), float(self.x.max(initial=0.0))
        if lo < -1e-6 or hi > 1 + 1e-6:
            raise ValueError(f"pixel values outside [0,1]: [{lo}, {hi}]")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.x.shape[1:])

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new Dataset restricted to ``indices``."""
        idx = np.asarray(indices)
        return Dataset(self.x[idx], self.y[idx], name=name or self.name)

    def take(self, n: int) -> "Dataset":
        """Return the first ``n`` examples."""
        return self.subset(np.arange(min(n, len(self))))

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Return a shuffled copy."""
        order = rng.permutation(len(self))
        return self.subset(order)


@dataclasses.dataclass
class DataSplits:
    """Train / validation / test splits of one synthetic dataset.

    The validation split calibrates MagNet's detector thresholds (the
    paper fixes the false-positive rate on clean validation data); the
    test split supplies both clean-accuracy numbers and attack seeds.
    """

    train: Dataset
    val: Dataset
    test: Dataset
    name: str = "splits"

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.train.image_shape

    @property
    def num_classes(self) -> int:
        return max(self.train.num_classes, self.val.num_classes, self.test.num_classes)

    def summary(self) -> str:
        c, h, w = self.image_shape
        return (f"{self.name}: {len(self.train)} train / {len(self.val)} val / "
                f"{len(self.test)} test, {c}x{h}x{w}, {self.num_classes} classes")


def stratified_indices(labels: np.ndarray, per_class: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Pick ``per_class`` indices of each label value, shuffled together."""
    labels = np.asarray(labels)
    chosen = []
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        if len(idx) < per_class:
            raise ValueError(f"class {cls} has only {len(idx)} examples < {per_class}")
        chosen.append(rng.choice(idx, size=per_class, replace=False))
    out = np.concatenate(chosen)
    rng.shuffle(out)
    return out
