"""Synthetic image datasets standing in for MNIST and CIFAR-10.

The environment is offline, so the paper's public datasets are replaced
by procedurally generated equivalents that exercise identical code paths
(see DESIGN.md §2 for the substitution rationale):

* :func:`load_digit_splits` / ``"digits"`` — 28x28x1, 10 classes (MNIST-like)
* :func:`load_object_splits` / ``"objects"`` — 32x32x3, 10 classes (CIFAR-like)
"""

from repro.datasets.base import Dataset, DataSplits, stratified_indices
from repro.datasets.corruptions import (
    CORRUPTIONS,
    corrupt,
    robustness_curve,
)
from repro.datasets.digits import (
    DIGIT_SEGMENTS,
    digit_skeleton,
    generate_digits,
    load_digit_splits,
    render_digit,
)
from repro.datasets.objects import (
    CLASS_NAMES as OBJECT_CLASS_NAMES,
    generate_objects,
    load_object_splits,
    render_object,
)

_LOADERS = {
    "digits": load_digit_splits,
    "objects": load_object_splits,
}

ALIASES = {
    "mnist": "digits",
    "synthetic_digits": "digits",
    "cifar": "objects",
    "cifar10": "objects",
    "synthetic_objects": "objects",
}


def canonical_name(name: str) -> str:
    """Resolve dataset aliases (``mnist`` → ``digits`` etc.)."""
    key = name.lower()
    key = ALIASES.get(key, key)
    if key not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_LOADERS)}")
    return key


def load_splits(name: str, **kwargs) -> DataSplits:
    """Load train/val/test splits for a dataset by name or alias."""
    return _LOADERS[canonical_name(name)](**kwargs)


__all__ = [
    "ALIASES",
    "CORRUPTIONS",
    "DIGIT_SEGMENTS",
    "DataSplits",
    "Dataset",
    "OBJECT_CLASS_NAMES",
    "canonical_name",
    "corrupt",
    "digit_skeleton",
    "generate_digits",
    "generate_objects",
    "load_digit_splits",
    "load_object_splits",
    "load_splits",
    "render_digit",
    "render_object",
    "robustness_curve",
    "stratified_indices",
]
