"""Parallel experiment runtime: process-pool execution + run telemetry.

The experiment pipeline — train classifier, train MagNet autoencoders,
craft C&W/EAD sweeps over (kappa, beta), score the oblivious defense —
is embarrassingly parallel per attack cell.  This package provides the
shared machinery:

* :class:`ParallelExecutor` / :func:`parallel_map` — chunked,
  order-preserving process-pool mapping with a serial fallback and
  deterministic per-item seeding, so parallel runs are bitwise-identical
  to serial ones.
* :class:`RunTelemetry` / :func:`telemetry` — an append-only JSONL event
  log (stage name, duration, cache hit/miss, worker id, batch size)
  shared safely by concurrent worker processes, plus the aggregation
  used by ``python -m repro.experiments timings``.
"""

from repro.runtime.executor import (
    ParallelExecutor,
    default_chunk_size,
    parallel_map,
    resolve_jobs,
)
from repro.runtime.telemetry import (
    RunTelemetry,
    aggregate_events,
    configure_telemetry,
    load_events,
    render_timings,
    telemetry,
)

__all__ = [
    "ParallelExecutor",
    "RunTelemetry",
    "aggregate_events",
    "configure_telemetry",
    "default_chunk_size",
    "load_events",
    "parallel_map",
    "render_timings",
    "resolve_jobs",
    "telemetry",
]
