"""Parallel experiment runtime: fault-tolerant process-pool execution + telemetry.

The experiment pipeline — train classifier, train MagNet autoencoders,
craft C&W/EAD sweeps over (kappa, beta), score the oblivious defense —
is embarrassingly parallel per attack cell.  This package provides the
shared machinery:

* :class:`ParallelExecutor` / :func:`parallel_map` — chunked,
  order-preserving process-pool mapping with a serial fallback and
  deterministic per-item seeding, so parallel runs are bitwise-identical
  to serial ones.  With a :class:`RetryPolicy` the executor becomes
  fault-tolerant: per-item SIGALRM timeouts, bounded retry with
  exponential backoff, failed-chunk re-dispatch on a worker crash, and
  terminal per-item :class:`ItemFailure` records instead of
  experiment-wide aborts.
* :class:`FaultPlan` — deterministic, seeded fault injection (worker
  crashes, hangs, transient exceptions, corrupted cache reads) keyed by
  item index, used by the chaos tests and the ``--inject-faults`` CLI
  flag.
* :class:`ShardedStore` — the content-addressed, sharded artifact store
  behind :class:`repro.utils.cache.DiskCache`: blobs at
  ``shards/<shard>/<hash>.npz``, cross-cell dedup, size-bounded LRU
  eviction with checkpoint pinning, corrupt-blob quarantine, a
  per-shard resumable integrity scrub, and transparent migration of
  flat-layout caches.  The executor's ``scheduler="work_stealing"``
  mode (with :class:`SchedulerStats` busy/wall reporting) pairs with it
  to keep large sweeps dense: idle workers steal half of the largest
  remaining run instead of idling behind a straggler.
* :class:`RunTelemetry` / :func:`telemetry` — the *deprecated*
  string-keyed telemetry API, now a shim over :mod:`repro.obs` (spans,
  metrics, profiling).  New code should use
  :func:`repro.obs.configure_observability` + :func:`repro.obs.span` /
  :func:`repro.obs.event`; the executor propagates the driver's trace
  context into workers automatically, so worker spans nest under the
  driver's ``runtime/map`` span.  The read side (``load_events`` and
  friends) lives in :mod:`repro.obs.report` and is re-exported here.
"""

from repro.runtime.executor import (
    MAX_JOBS,
    SCHEDULERS,
    ParallelExecutor,
    SchedulerStats,
    default_chunk_size,
    parallel_map,
    resolve_jobs,
)
from repro.runtime.store import (
    CacheStats,
    ShardedStore,
    StoreEntry,
    content_hash,
)
from repro.runtime.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    ItemFailure,
    ItemTimeout,
    RetryPolicy,
    corrupt_cache_entry,
)
from repro.runtime.telemetry import (
    RunTelemetry,
    aggregate_events,
    configure_telemetry,
    load_events,
    render_fault_summary,
    render_timings,
    telemetry,
)

__all__ = [
    "CacheStats",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "ItemFailure",
    "ItemTimeout",
    "MAX_JOBS",
    "ParallelExecutor",
    "RetryPolicy",
    "RunTelemetry",
    "SCHEDULERS",
    "SchedulerStats",
    "ShardedStore",
    "StoreEntry",
    "aggregate_events",
    "configure_telemetry",
    "content_hash",
    "corrupt_cache_entry",
    "default_chunk_size",
    "load_events",
    "parallel_map",
    "render_fault_summary",
    "render_timings",
    "resolve_jobs",
    "telemetry",
]
