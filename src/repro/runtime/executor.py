"""Chunked process-pool mapping with deterministic seeding and fault tolerance.

The executor never changes *what* is computed, only *where*: work items
are mapped in order, per-item seeds are derived from a root
:class:`numpy.random.SeedSequence` by item index (not by worker), and
the serial path applies the exact same function to the exact same
payloads — so a parallel run is bitwise-identical to ``jobs=1``.
Retries reuse the item's original seed, so a retried item is also
bitwise-identical to one that succeeded first try.

Two execution paths share that contract:

* The **fast path** (no :class:`~repro.runtime.faults.RetryPolicy`, no
  fault plan) is a plain ``pool.map``.  Anything that prevents the pool
  from running at all (unpicklable callables, a platform without usable
  multiprocessing) degrades to the serial path with a warning.
* The **resilient path** (any of ``policy`` / ``fault_plan`` /
  ``on_error="record"`` set) dispatches chunks as individual futures and
  supervises them: a per-item timeout is enforced *inside* the worker by
  a SIGALRM watchdog, failed items are retried with exponential backoff
  (``runtime/retry`` telemetry), a ``BrokenProcessPool`` re-dispatches
  only the chunks whose futures died (counting a crash attempt against
  their items) instead of redoing the whole map, and an item that
  exhausts its retry budget becomes a terminal per-item failure —
  an :class:`~repro.runtime.faults.ItemFailure` record at its position
  (``on_error="record"``) or a raised error (``on_error="raise"``) —
  rather than an experiment-wide abort.

Both paths accept ``scheduler="work_stealing"``: instead of carving the
items into fixed chunks up front (which lets one straggler — a high-κ
EAD cell taking 10× its neighbours — serialize the tail of a sweep),
the parent keeps one deque of contiguous item runs per worker slot and
leases small batches; a slot that drains its deque *steals half of the
largest remaining run* from the back of the busiest deque.  Stealing
only changes which worker computes an item, never its seed or payload,
so the bitwise-identity contract is untouched.  Scheduler behaviour is
observable: ``scheduler/steals`` and ``scheduler/leases`` counters, a
``scheduler/worker_busy_s`` histogram, and a per-map
:class:`SchedulerStats` (per-worker busy/wall efficiency) on
``ParallelExecutor.last_schedule``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pickle
import signal
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs import (
    TraceContext,
    attach_trace_context,
    counter,
    current_trace_context,
    event,
    histogram,
    span,
)
from repro.runtime.faults import (
    FaultPlan,
    InjectedCrash,
    ItemFailure,
    ItemTimeout,
    RetryPolicy,
)
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_seeds

log = get_logger(__name__)

#: Hard ceiling on worker processes; requests beyond it are clamped so a
#: typo'd ``--jobs 1000000`` cannot fork-bomb the host (the map itself
#: additionally never starts more workers than it has items).
MAX_JOBS = max(16, 4 * (os.cpu_count() or 1))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request.

    ``None`` and ``0`` mean one worker per core; positive values pass
    through, capped at :data:`MAX_JOBS`.  Negative values are rejected
    *before* any normalization — there is no ``-1 == all cores``
    convention here.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs > MAX_JOBS:
        log.warning("jobs=%d clamped to %d (4x cpu count)", jobs, MAX_JOBS)
        return MAX_JOBS
    return jobs


#: Schedulers accepted by :class:`ParallelExecutor` / :func:`parallel_map`.
SCHEDULERS = ("static", "work_stealing")


def default_chunk_size(n_items: int, jobs: int) -> int:
    """Chunk so each worker sees ~4 chunks (load balance vs IPC cost).

    Always returns ≥ 1, including the ``n_items < jobs`` regime (where a
    naive ``n_items // (jobs * 4)`` yields 0 → a crashed pool) and huge
    item counts (integer ceiling division avoids the float rounding of
    ``math.ceil(n / d)``, which can be off by one above 2**53).
    """
    n_items = int(n_items)
    jobs = int(jobs)
    if n_items <= 0 or jobs <= 0:
        return 1
    return max(1, -(-n_items // (jobs * 4)))


@dataclasses.dataclass
class SchedulerStats:
    """How one :meth:`ParallelExecutor.map` call spent its workers.

    ``busy_s`` maps a worker *slot* (a scheduling lane with one lease in
    flight at a time — the pool assigns OS processes to leases) to the
    summed in-worker execution time of its leases.  Efficiency is
    busy/wall per slot: ~1.0 means the slot never waited on the
    scheduler; a static-chunk straggler shows up as every other slot's
    efficiency collapsing while one stays at 1.0.
    """

    scheduler: str
    workers: int
    items: int
    leases: int = 0
    steals: int = 0
    wall_s: float = 0.0
    busy_s: Dict[int, float] = dataclasses.field(default_factory=dict)

    def worker_efficiency(self) -> Dict[int, float]:
        """Per-slot busy/wall ratio (empty if busy time wasn't measured)."""
        if self.wall_s <= 0.0:
            return {}
        return {slot: busy / self.wall_s
                for slot, busy in sorted(self.busy_s.items())}

    @property
    def mean_efficiency(self) -> float:
        eff = self.worker_efficiency()
        return sum(eff.values()) / len(eff) if eff else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "workers": self.workers,
            "items": self.items,
            "leases": self.leases,
            "steals": self.steals,
            "wall_s": round(self.wall_s, 6),
            "busy_s": {str(k): round(v, 6)
                       for k, v in sorted(self.busy_s.items())},
            "worker_efficiency": {str(k): round(v, 4)
                                  for k, v in
                                  self.worker_efficiency().items()},
            "mean_efficiency": round(self.mean_efficiency, 4),
        }


def _call(fn: Callable, item: Any, seed: Optional[int]) -> Any:
    return fn(item) if seed is None else fn(item, seed=seed)


def _invoke(payload) -> Any:
    """Top-level trampoline so the pool can pickle the unit of work.

    The payload carries the driver's :class:`TraceContext` plus the
    parent's active kernel-backend name, so spans the work item opens in
    the worker nest under the driver's map span and every nn dispatch in
    the worker resolves the same backend as a ``jobs=1`` run would.
    """
    from repro.nn.backend import use_backend

    fn, item, seed, trace_ctx, backend = payload
    with attach_trace_context(trace_ctx), use_backend(backend):
        return _call(fn, item, seed)


@contextlib.contextmanager
def _watchdog(timeout_s: Optional[float]):
    """Raise :class:`ItemTimeout` in this process after ``timeout_s``.

    Uses a SIGALRM interval timer, so it interrupts even a blocking
    C-level call (``time.sleep``, a numpy matmul does release the GIL
    but signals are handled on return to the interpreter).  A no-op when
    ``timeout_s`` is None or the platform lacks SIGALRM (non-POSIX).
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise ItemTimeout(f"work item exceeded {timeout_s:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _picklable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_one(fn, item, seed, index: int, attempt: int,
             timeout_s: Optional[float], plan: Optional[FaultPlan],
             trace_ctx: Optional[TraceContext], in_worker: bool,
             backend: Optional[str] = None):
    """Run one supervised item; never raises (crash faults excepted)."""
    from repro.nn.backend import use_backend

    try:
        with _watchdog(timeout_s):
            if plan is not None:
                plan.fire(index, attempt, in_worker=in_worker)
            with attach_trace_context(trace_ctx), use_backend(backend):
                return (index, "ok", _call(fn, item, seed))
    except ItemTimeout as exc:
        return (index, "timeout", _picklable_error(exc))
    except InjectedCrash as exc:       # serial-path stand-in for os._exit
        return (index, "crash", _picklable_error(exc))
    except Exception as exc:
        return (index, "error", _picklable_error(exc))


def _invoke_chunk(payloads) -> List:
    """Worker body of the resilient path: supervise a chunk of items."""
    return [_run_one(fn, item, seed, index, attempt, timeout_s, plan,
                     trace_ctx, in_worker=True, backend=backend)
            for fn, item, seed, index, attempt, timeout_s, plan, trace_ctx,
            backend in payloads]


def _invoke_lease(payloads) -> tuple:
    """Worker body of the work-stealing path: a chunk plus its busy time.

    Busy time is measured *inside* the worker, so it excludes pickling,
    queueing and scheduler latency — exactly the numerator of the
    busy/wall efficiency the benchmark reports.
    """
    t0 = time.perf_counter()
    outcomes = _invoke_chunk(payloads)
    return (time.perf_counter() - t0, outcomes)


class ParallelExecutor:
    """Order-preserving map over a process pool, with a serial fallback.

    Args:
        jobs: worker processes; ``None``/``0`` means one per core and
            ``1`` forces the serial path (no pool, no pickling).
        chunk_size: items per pool task (default
            :func:`default_chunk_size`).
        seed: when given, each item's callable receives an independent
            ``seed=`` keyword derived from this root by *item index*, so
            results do not depend on worker scheduling (or on retries).
        mp_context: multiprocessing start method (default ``fork`` where
            available, else ``spawn``).
        policy: a :class:`~repro.runtime.faults.RetryPolicy` enabling
            the resilient path — per-item timeout, bounded retry with
            exponential backoff, failed-chunk re-dispatch.
        fault_plan: a :class:`~repro.runtime.faults.FaultPlan` injecting
            deterministic faults (chaos testing); implies the resilient
            path with a default policy.
        on_error: ``"raise"`` (default) propagates the first terminal
            item failure; ``"record"`` returns an
            :class:`~repro.runtime.faults.ItemFailure` at the item's
            position and keeps going.
        scheduler: ``"static"`` (default) pre-chunks the items;
            ``"work_stealing"`` leases small batches from per-slot
            deques and lets idle slots steal half of the largest
            remaining run, so stragglers don't serialize the sweep.
            Results are identical either way (same seeds, same
            payloads); only worker assignment changes.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 chunk_size: Optional[int] = None,
                 seed: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 on_error: str = "raise",
                 scheduler: str = "static"):
        if on_error not in ("raise", "record"):
            raise ValueError(
                f"on_error must be 'raise' or 'record', got {on_error!r}")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}, "
                             f"got {scheduler!r}")
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.seed = seed
        self.mp_context = mp_context
        self.policy = policy
        self.fault_plan = fault_plan
        self.on_error = on_error
        self.scheduler = scheduler
        #: :class:`SchedulerStats` of the most recent :meth:`map` call.
        self.last_schedule: Optional[SchedulerStats] = None

    def _start_method(self) -> str:
        if self.mp_context is not None:
            return self.mp_context
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    @property
    def _resilient(self) -> bool:
        return (self.policy is not None or self.fault_plan is not None
                or self.on_error == "record"
                or self.scheduler == "work_stealing")

    def map(self, fn: Callable, items: Iterable[Any],
            on_result: Optional[Callable[[int, Any], None]] = None
            ) -> List[Any]:
        """Apply ``fn`` to every item, in order; see class docstring.

        ``on_result(index, value)`` is invoked in the parent as each
        item completes (completion order, not item order), letting a
        sweep publish artifacts incrementally so an interrupted run can
        resume from the last completed item.
        """
        items = list(items)
        n = len(items)
        if self.seed is not None:
            seeds: Sequence[Optional[int]] = spawn_seeds(self.seed, n)
        else:
            seeds = [None] * n
        jobs = min(self.jobs, n)
        label = "serial" if jobs <= 1 else self.scheduler
        sched = SchedulerStats(scheduler=label, workers=max(1, jobs), items=n)
        self.last_schedule = sched
        t0 = time.perf_counter()
        with span("runtime/map", items=n, jobs=jobs, scheduler=label) as sp:
            # The map span is the parent of every item's spans, whether
            # the item runs in this process or in a pool worker (the
            # context rides along in each payload).  The kernel backend
            # rides along too: workers resolve the parent's *active*
            # selection, so jobs>1 is numerically identical to jobs=1
            # even under use_backend()/set_default_backend().
            from repro.nn.backend import get_backend

            trace_ctx = current_trace_context()
            backend = get_backend().name
            try:
                if self._resilient:
                    return self._map_resilient(fn, items, seeds, jobs,
                                               trace_ctx, backend, on_result)
                if jobs <= 1:
                    return self._map_serial_fast(fn, items, seeds, on_result)

                payloads = [(fn, item, s, trace_ctx, backend)
                            for item, s in zip(items, seeds)]
                chunk = self.chunk_size or default_chunk_size(n, jobs)
                sp["chunk"] = chunk
                try:
                    return self._pool_map(payloads, jobs, chunk, on_result)
                except Exception as exc:
                    if not _is_fallback_error(exc):
                        raise
                    log.warning("process pool unavailable (%s: %s) — "
                                "running %d items serially",
                                type(exc).__name__, exc, n)
                    sp["fallback"] = "serial"
                    return self._map_serial_fast(fn, items, seeds, on_result)
            finally:
                # Scheduler accounting rides on the map span (a separate
                # event would add a child to the trace tree and change
                # its signature between serial and parallel runs).
                sched.wall_s = time.perf_counter() - t0
                if not sched.busy_s and jobs <= 1:
                    # The serial paths run in the parent: busy == wall.
                    sched.busy_s[0] = sched.wall_s
                busy_hist = histogram("scheduler/worker_busy_s")
                for busy in sched.busy_s.values():
                    busy_hist.observe(busy)
                if sched.steals:
                    sp["steals"] = sched.steals
                if sched.busy_s:
                    sp["mean_efficiency"] = round(sched.mean_efficiency, 4)

    @staticmethod
    def _map_serial_fast(fn, items, seeds, on_result) -> List[Any]:
        results = []
        for i, (item, s) in enumerate(zip(items, seeds)):
            value = _call(fn, item, s)
            if on_result is not None:
                on_result(i, value)
            results.append(value)
        return results

    def _pool_map(self, payloads, jobs: int, chunk: int,
                  on_result) -> List[Any]:
        import concurrent.futures
        import multiprocessing

        ctx = multiprocessing.get_context(self._start_method())
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, mp_context=ctx) as pool:
            results = []
            for i, value in enumerate(pool.map(_invoke, payloads,
                                               chunksize=chunk)):
                if on_result is not None:
                    on_result(i, value)
                results.append(value)
            return results

    # ------------------------------------------------------------------
    # Resilient path
    # ------------------------------------------------------------------
    def _map_resilient(self, fn, items, seeds, jobs: int,
                       trace_ctx: Optional[TraceContext],
                       backend: Optional[str],
                       on_result) -> List[Any]:
        if self.policy is not None:
            policy = self.policy
        elif self.fault_plan is not None or self.on_error == "record":
            policy = RetryPolicy()
        else:
            # Pure work-stealing (no supervision requested): keep the
            # fast path's raise-on-first-error semantics — no retries.
            policy = RetryPolicy(retries=0)
        n = len(items)
        results: List[Any] = [None] * n
        done = [False] * n
        attempts = [0] * n
        errors: Dict[int, tuple] = {}       # index -> (kind, exception)
        pending = list(range(n))

        if jobs <= 1:
            self._drain_serial(fn, items, seeds, pending, attempts, results,
                               done, errors, policy, trace_ctx, backend,
                               on_result)
        else:
            drain = (self._drain_stealing
                     if self.scheduler == "work_stealing"
                     else self._drain_pool)
            try:
                drain(fn, items, seeds, jobs, pending, attempts,
                      results, done, errors, policy, trace_ctx, backend,
                      on_result)
            except Exception as exc:
                if not _is_fallback_error(exc):
                    raise
                log.warning("process pool unavailable (%s: %s) — running "
                            "%d items serially", type(exc).__name__, exc, n)
                still = [i for i in range(n) if not done[i] and i not in errors]
                self._drain_serial(fn, items, seeds, still, attempts, results,
                                   done, errors, policy, trace_ctx, backend,
                                   on_result)

        for index, (kind, exc) in sorted(errors.items()):
            failure = ItemFailure(index=index, kind=kind, error=str(exc),
                                  attempts=attempts[index])
            if self.on_error == "raise":
                log.error("item %d terminally failed after %d attempts: %s",
                          index, attempts[index], exc)
                raise exc
            results[index] = failure
        return results

    def _handle_outcome(self, outcome, attempts, results, done, errors,
                        policy, on_result, retry_queue) -> None:
        index, status, value = outcome
        if status == "ok":
            results[index] = value
            done[index] = True
            if on_result is not None:
                on_result(index, value)
            return
        attempts[index] += 1
        if status == "timeout":
            counter("runtime/timeouts").inc()
            event("runtime/timeout", item=index, attempt=attempts[index],
                  timeout_s=policy.timeout_s)
        if attempts[index] <= policy.retries:
            counter("runtime/retries").inc()
            event("runtime/retry", item=index, attempt=attempts[index],
                  reason=status, error=str(value))
            log.warning("item %d failed (%s: %s) — retry %d/%d", index,
                        status, value, attempts[index], policy.retries)
            retry_queue.append(index)
        else:
            counter("runtime/giveups").inc()
            event("runtime/giveup", item=index, attempts=attempts[index],
                  reason=status, error=str(value))
            errors[index] = (status, value)

    def _drain_serial(self, fn, items, seeds, pending, attempts, results,
                      done, errors, policy, trace_ctx, backend,
                      on_result) -> None:
        """In-process resilient loop (jobs=1 and the pool-less fallback)."""
        queue = list(pending)
        while queue:
            index = queue.pop(0)
            time.sleep(policy.delay(attempts[index]))
            outcome = _run_one(fn, items[index], seeds[index], index,
                               attempts[index], policy.timeout_s,
                               self.fault_plan, trace_ctx, in_worker=False,
                               backend=backend)
            self._handle_outcome(outcome, attempts, results, done, errors,
                                 policy, on_result, queue)

    def _drain_pool(self, fn, items, seeds, jobs, pending, attempts, results,
                    done, errors, policy, trace_ctx, backend,
                    on_result) -> None:
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        import multiprocessing

        ctx = multiprocessing.get_context(self._start_method())
        chunk = self.chunk_size or default_chunk_size(len(items), jobs)
        pool = None
        broken_rounds = 0
        try:
            while pending:
                if pool is None:
                    pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=min(jobs, len(pending)), mp_context=ctx)
                delay = max((policy.delay(attempts[i]) for i in pending),
                            default=0.0)
                time.sleep(delay)
                futures = {}
                for start in range(0, len(pending), chunk):
                    chunk_indices = pending[start:start + chunk]
                    payloads = [
                        (fn, items[i], seeds[i], i, attempts[i],
                         policy.timeout_s, self.fault_plan, trace_ctx,
                         backend)
                        for i in chunk_indices
                    ]
                    futures[pool.submit(_invoke_chunk, payloads)] = chunk_indices
                retry_queue: List[int] = []
                round_broken = False
                for fut in concurrent.futures.as_completed(futures):
                    chunk_indices = futures[fut]
                    try:
                        outcomes = fut.result()
                    except BrokenProcessPool as exc:
                        # Only this chunk's items are re-dispatched; the
                        # crash counts as one attempt against each of
                        # them (the culprit is unknowable — its output
                        # died with the worker).
                        round_broken = True
                        log.warning("worker crashed; re-dispatching chunk "
                                    "of %d items %s", len(chunk_indices),
                                    chunk_indices)
                        for i in chunk_indices:
                            self._handle_outcome(
                                (i, "crash", exc), attempts, results, done,
                                errors, policy, on_result, retry_queue)
                        continue
                    for outcome in outcomes:
                        self._handle_outcome(outcome, attempts, results, done,
                                             errors, policy, on_result,
                                             retry_queue)
                if round_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    broken_rounds += 1
                    if broken_rounds >= 3 and retry_queue:
                        # The pool itself looks unusable (e.g. every fork
                        # dies); stop burning retries on it.
                        log.warning("%d consecutive broken rounds — "
                                    "finishing %d items serially",
                                    broken_rounds, len(retry_queue))
                        self._drain_serial(fn, items, seeds, retry_queue,
                                           attempts, results, done, errors,
                                           policy, trace_ctx, backend,
                                           on_result)
                        retry_queue = []
                else:
                    broken_rounds = 0
                pending = retry_queue
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _drain_stealing(self, fn, items, seeds, jobs, pending, attempts,
                        results, done, errors, policy, trace_ctx, backend,
                        on_result) -> None:
        """Work-stealing drain: per-slot deques of contiguous runs.

        The parent owns ``jobs`` deques, each seeded with a contiguous
        run of the pending indices, and keeps exactly one lease (a small
        batch of ``chunk_size`` items, default 1) in flight per slot.  A
        slot whose deque drains steals **half of the largest remaining
        deque, from the back** — the classic steal-half heuristic:
        taking from the back preserves the victim's cache-friendly
        front-to-back progress, and halving keeps the thief busy long
        enough that steals stay rare (O(workers · log(items/chunk))).

        Faults follow :meth:`_drain_pool`'s contract: a
        ``BrokenProcessPool`` counts one crash attempt against the
        in-flight lease's items, the pool is rebuilt, and three broken
        rounds in a row finish the remainder serially.
        """
        import concurrent.futures
        import multiprocessing
        from collections import deque
        from concurrent.futures.process import BrokenProcessPool

        ctx = multiprocessing.get_context(self._start_method())
        lease_size = self.chunk_size or 1
        sched = self.last_schedule
        steals = counter("scheduler/steals")
        leases = counter("scheduler/leases")
        pool = None
        broken_rounds = 0
        round_items = sorted(pending)
        try:
            while round_items:
                workers = min(jobs, len(round_items))
                if pool is None:
                    pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers, mp_context=ctx)
                time.sleep(max((policy.delay(attempts[i])
                                for i in round_items), default=0.0))
                # Contiguous runs, one per slot, mirroring how static
                # chunking would have carved the index space.
                deques: List[deque] = []
                base, extra = divmod(len(round_items), workers)
                cursor = 0
                for slot in range(workers):
                    take = base + (1 if slot < extra else 0)
                    deques.append(deque(round_items[cursor:cursor + take]))
                    cursor += take

                def next_lease(slot: int) -> List[int]:
                    own = deques[slot]
                    if not own:
                        victim = max(range(workers),
                                     key=lambda j: len(deques[j]))
                        loot = deques[victim]
                        if not loot:
                            return []
                        grabbed = [loot.pop()
                                   for _ in range(max(1, len(loot) // 2))]
                        grabbed.reverse()
                        own.extend(grabbed)
                        steals.inc()
                        if sched is not None:
                            sched.steals += 1
                    return [own.popleft()
                            for _ in range(min(lease_size, len(own)))]

                def submit(slot: int, lease: List[int]) -> None:
                    payloads = [(fn, items[i], seeds[i], i, attempts[i],
                                 policy.timeout_s, self.fault_plan, trace_ctx,
                                 backend)
                                for i in lease]
                    inflight[pool.submit(_invoke_lease, payloads)] = (slot,
                                                                      lease)
                    leases.inc()
                    if sched is not None:
                        sched.leases += 1

                inflight: Dict[Any, tuple] = {}
                retry_queue: List[int] = []
                round_broken = False
                for slot in range(workers):
                    lease = next_lease(slot)
                    if lease:
                        submit(slot, lease)
                while inflight:
                    finished, _ = concurrent.futures.wait(
                        inflight, return_when=concurrent.futures.
                        FIRST_COMPLETED)
                    for fut in finished:
                        slot, lease = inflight.pop(fut)
                        try:
                            busy_s, outcomes = fut.result()
                        except BrokenProcessPool as exc:
                            round_broken = True
                            log.warning("worker crashed; re-dispatching "
                                        "lease of %d items %s", len(lease),
                                        lease)
                            for i in lease:
                                self._handle_outcome(
                                    (i, "crash", exc), attempts, results,
                                    done, errors, policy, on_result,
                                    retry_queue)
                            continue
                        if sched is not None:
                            sched.busy_s[slot] = (sched.busy_s.get(slot, 0.0)
                                                  + busy_s)
                        for outcome in outcomes:
                            self._handle_outcome(outcome, attempts, results,
                                                 done, errors, policy,
                                                 on_result, retry_queue)
                        if not round_broken:
                            lease = next_lease(slot)
                            if lease:
                                submit(slot, lease)
                # Items still sitting in deques after a broken round were
                # never attempted; carry them into the next round as-is.
                leftover = [i for dq in deques for i in dq]
                if round_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    broken_rounds += 1
                    if broken_rounds >= 3 and (retry_queue or leftover):
                        remainder = sorted(retry_queue + leftover)
                        log.warning("%d consecutive broken rounds — "
                                    "finishing %d items serially",
                                    broken_rounds, len(remainder))
                        self._drain_serial(fn, items, seeds, remainder,
                                           attempts, results, done, errors,
                                           policy, trace_ctx, backend,
                                           on_result)
                        retry_queue, leftover = [], []
                else:
                    broken_rounds = 0
                round_items = sorted(retry_queue + leftover)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


def _is_fallback_error(exc: BaseException) -> bool:
    """Errors that mean "the pool can't do this", not "the work failed"."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, (pickle.PicklingError, BrokenProcessPool,
                        ImportError, PermissionError)):
        return True
    # pickling closures/lambdas raises AttributeError or TypeError from
    # inside the serializer; genuine work errors of those types would
    # reproduce serially anyway (the fallback re-raises them).
    return isinstance(exc, (AttributeError, TypeError)) and (
        "pickle" in str(exc).lower() or "<locals>" in str(exc)
        or "<lambda>" in str(exc))


def parallel_map(fn: Callable, items: Iterable[Any], *,
                 jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 seed: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 on_error: str = "raise",
                 scheduler: str = "static",
                 on_result: Optional[Callable[[int, Any], None]] = None
                 ) -> List[Any]:
    """One-shot :meth:`ParallelExecutor.map` (see class for semantics)."""
    executor = ParallelExecutor(jobs, chunk_size=chunk_size, seed=seed,
                                mp_context=mp_context, policy=policy,
                                fault_plan=fault_plan, on_error=on_error,
                                scheduler=scheduler)
    return executor.map(fn, items, on_result=on_result)
