"""Chunked process-pool mapping with deterministic seeding.

The executor never changes *what* is computed, only *where*: work items
are mapped in order, per-item seeds are derived from a root
:class:`numpy.random.SeedSequence` by item index (not by worker), and
the serial path applies the exact same function to the exact same
payloads — so a parallel run is bitwise-identical to ``jobs=1``.

Failure handling favours completion over speed: anything that prevents
the pool from running the work (unpicklable callables/payloads, a
broken worker, a platform without usable multiprocessing) degrades to
the serial path with a warning instead of failing the experiment.
"""

from __future__ import annotations

import math
import os
import pickle
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.runtime.telemetry import telemetry
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_seeds

log = get_logger(__name__)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: None/0 → all cores, n → n."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunk_size(n_items: int, jobs: int) -> int:
    """Chunk so each worker sees ~4 chunks (load balance vs IPC cost)."""
    if n_items <= 0 or jobs <= 0:
        return 1
    return max(1, math.ceil(n_items / (jobs * 4)))


def _call(fn: Callable, item: Any, seed: Optional[int]) -> Any:
    return fn(item) if seed is None else fn(item, seed=seed)


def _invoke(payload) -> Any:
    """Top-level trampoline so the pool can pickle the unit of work."""
    fn, item, seed = payload
    return _call(fn, item, seed)


class ParallelExecutor:
    """Order-preserving map over a process pool, with a serial fallback.

    Args:
        jobs: worker processes; ``None``/``0`` means one per core and
            ``1`` forces the serial path (no pool, no pickling).
        chunk_size: items per pool task (default
            :func:`default_chunk_size`).
        seed: when given, each item's callable receives an independent
            ``seed=`` keyword derived from this root by *item index*, so
            results do not depend on worker scheduling.
        mp_context: multiprocessing start method (default ``fork`` where
            available, else ``spawn``).
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 chunk_size: Optional[int] = None,
                 seed: Optional[int] = None,
                 mp_context: Optional[str] = None):
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.seed = seed
        self.mp_context = mp_context

    def _start_method(self) -> str:
        if self.mp_context is not None:
            return self.mp_context
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    def map(self, fn: Callable, items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item, in order; see class docstring."""
        items = list(items)
        n = len(items)
        if self.seed is not None:
            seeds: Sequence[Optional[int]] = spawn_seeds(self.seed, n)
        else:
            seeds = [None] * n
        jobs = min(self.jobs, n)
        if jobs <= 1:
            return [_call(fn, item, s) for item, s in zip(items, seeds)]

        payloads = [(fn, item, s) for item, s in zip(items, seeds)]
        chunk = self.chunk_size or default_chunk_size(n, jobs)
        try:
            results = self._pool_map(payloads, jobs, chunk)
        except Exception as exc:
            if not _is_fallback_error(exc):
                raise
            log.warning("process pool unavailable (%s: %s) — running "
                        "%d items serially", type(exc).__name__, exc, n)
            return [_call(fn, item, s) for item, s in zip(items, seeds)]
        telemetry().emit("runtime/map", items=n, jobs=jobs, chunk=chunk)
        return results

    def _pool_map(self, payloads, jobs: int, chunk: int) -> List[Any]:
        import concurrent.futures
        import multiprocessing

        ctx = multiprocessing.get_context(self._start_method())
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, mp_context=ctx) as pool:
            return list(pool.map(_invoke, payloads, chunksize=chunk))


def _is_fallback_error(exc: BaseException) -> bool:
    """Errors that mean "the pool can't do this", not "the work failed"."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, (pickle.PicklingError, BrokenProcessPool,
                        ImportError, PermissionError)):
        return True
    # pickling closures/lambdas raises AttributeError or TypeError from
    # inside the serializer; genuine work errors of those types would
    # reproduce serially anyway (the fallback re-raises them).
    return isinstance(exc, (AttributeError, TypeError)) and (
        "pickle" in str(exc).lower() or "<locals>" in str(exc)
        or "<lambda>" in str(exc))


def parallel_map(fn: Callable, items: Iterable[Any], *,
                 jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 seed: Optional[int] = None,
                 mp_context: Optional[str] = None) -> List[Any]:
    """One-shot :meth:`ParallelExecutor.map` (see class for semantics)."""
    executor = ParallelExecutor(jobs, chunk_size=chunk_size, seed=seed,
                                mp_context=mp_context)
    return executor.map(fn, items)
