"""Per-stage run telemetry: an append-only JSONL event log + reports.

Every instrumented stage (classifier/autoencoder training, attack
crafting, cached-artifact access, whole experiments) emits one JSON
event line with its name, wall-clock duration, worker pid, and whatever
extra fields the call site knows (cache hit/miss, batch size, kappa...).

The log is *opt-in*: it is written only when a path is configured, via
:func:`configure_telemetry` or the ``REPRO_TELEMETRY`` environment
variable.  The environment variable doubles as the hand-off mechanism to
:mod:`repro.runtime.executor` worker processes — children inherit it and
append to the same file.  Each event is a single ``write()`` of one line
on a file opened with ``O_APPEND``, which POSIX keeps atomic for the
short lines emitted here, so concurrent workers cannot interleave
partial lines.

``python -m repro.experiments timings`` renders the per-stage aggregate
produced by :func:`aggregate_events` / :func:`render_timings`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Environment variable naming the JSONL sink (inherited by workers).
TELEMETRY_ENV = "REPRO_TELEMETRY"


class RunTelemetry:
    """JSONL event sink for one run; disabled when ``path`` is None."""

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self.path = Path(path) if path else None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def emit(self, stage: str, duration_s: Optional[float] = None,
             **fields: Any) -> None:
        """Append one event line; a no-op when telemetry is disabled."""
        if self.path is None:
            return
        event: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "stage": stage,
            "worker": os.getpid(),
        }
        if duration_s is not None:
            event["duration_s"] = round(float(duration_s), 6)
        event.update({k: v for k, v in fields.items() if v is not None})
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event, default=str) + "\n")
        except OSError as exc:  # telemetry must never take a run down
            log.warning("telemetry write to %s failed: %s", self.path, exc)

    @contextlib.contextmanager
    def stage(self, name: str, **fields: Any):
        """Time a block and emit one event for it.

        Yields a mutable dict; call sites may add fields discovered
        mid-stage (typically ``evt["cache"] = "hit"|"miss"``)::

            with telemetry().stage("train/classifier", batch=64) as evt:
                evt["cache"] = "miss"
                ...train...
        """
        evt: Dict[str, Any] = dict(fields)
        t0 = time.perf_counter()
        try:
            yield evt
        finally:
            self.emit(name, duration_s=time.perf_counter() - t0, **evt)


_ACTIVE: Optional[RunTelemetry] = None


def configure_telemetry(path: Optional[Union[str, os.PathLike]]
                        ) -> RunTelemetry:
    """Point telemetry at ``path`` (None disables it).

    Also exports ``REPRO_TELEMETRY`` so executor worker processes append
    to the same log.
    """
    global _ACTIVE
    if path is None:
        os.environ.pop(TELEMETRY_ENV, None)
        _ACTIVE = RunTelemetry(None)
    else:
        os.environ[TELEMETRY_ENV] = str(path)
        _ACTIVE = RunTelemetry(path)
    return _ACTIVE


def telemetry() -> RunTelemetry:
    """The process-wide sink, tracking ``REPRO_TELEMETRY`` changes."""
    global _ACTIVE
    env = os.environ.get(TELEMETRY_ENV) or None
    active_path = str(_ACTIVE.path) if _ACTIVE is not None and _ACTIVE.path else None
    if _ACTIVE is None or env != active_path:
        _ACTIVE = RunTelemetry(env)
    return _ACTIVE


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
@dataclasses.dataclass
class StageStats:
    """Aggregate of all events sharing one stage name."""

    stage: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def load_events(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file, skipping unparseable lines."""
    events: List[Dict[str, Any]] = []
    path = Path(path)
    if not path.exists():
        return events
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            log.warning("skipping malformed telemetry line: %.60s", line)
            continue
        if isinstance(event, dict) and "stage" in event:
            events.append(event)
    return events


def aggregate_events(events: Iterable[Dict[str, Any]]) -> Dict[str, StageStats]:
    """Fold events into per-stage statistics, keyed by stage name."""
    stats: Dict[str, StageStats] = {}
    worker_sets: Dict[str, set] = {}
    for event in events:
        name = str(event.get("stage"))
        entry = stats.setdefault(name, StageStats(stage=name))
        entry.count += 1
        duration = float(event.get("duration_s") or 0.0)
        entry.total_s += duration
        entry.max_s = max(entry.max_s, duration)
        cache = event.get("cache")
        if cache == "hit":
            entry.cache_hits += 1
        elif cache == "miss":
            entry.cache_misses += 1
        worker_sets.setdefault(name, set()).add(event.get("worker"))
    for name, entry in stats.items():
        entry.workers = len(worker_sets[name] - {None})
    return stats


#: Stages the executor's fault-tolerance layer emits; summarized
#: separately by :func:`render_fault_summary`.
FAULT_STAGES = ("runtime/retry", "runtime/timeout", "runtime/giveup",
                "sweep/cell_failed")


def render_fault_summary(events: Iterable[Dict[str, Any]]) -> Optional[str]:
    """One-line retry/timeout/giveup summary, or None if the run was clean."""
    counts = {stage: 0 for stage in FAULT_STAGES}
    for event in events:
        stage = event.get("stage")
        if stage in counts:
            counts[stage] += 1
    if not any(counts.values()):
        return None
    return ("fault events: "
            f"retries={counts['runtime/retry']} "
            f"timeouts={counts['runtime/timeout']} "
            f"giveups={counts['runtime/giveup']} "
            f"failed cells={counts['sweep/cell_failed']}")


def render_timings(events: Iterable[Dict[str, Any]]) -> str:
    """Per-stage wall-clock table (sorted by total time, descending).

    Retry/timeout/giveup events from the fault-tolerance layer appear as
    ordinary stage rows and are additionally folded into a one-line
    summary appended below the table.
    """
    events = list(events)
    stats = sorted(aggregate_events(events).values(),
                   key=lambda s: s.total_s, reverse=True)
    if not stats:
        return "no telemetry events recorded"
    header = (f"{'stage':<28} {'calls':>6} {'total s':>9} {'mean s':>8} "
              f"{'max s':>8} {'hit':>5} {'miss':>5} {'wrk':>4}")
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.stage:<28} {s.count:>6d} {s.total_s:>9.3f} {s.mean_s:>8.3f} "
            f"{s.max_s:>8.3f} {s.cache_hits:>5d} {s.cache_misses:>5d} "
            f"{s.workers:>4d}")
    total = sum(s.total_s for s in stats)
    lines.append("-" * len(header))
    lines.append(f"{'total stage time':<28} {'':>6} {total:>9.3f}")
    faults = render_fault_summary(events)
    if faults:
        lines.append(faults)
    return "\n".join(lines)
