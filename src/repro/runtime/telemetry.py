"""Deprecated string-keyed telemetry API — a shim over :mod:`repro.obs`.

The flat ``telemetry().emit(stage, ...)`` interface has been replaced
by the span/metrics API in :mod:`repro.obs`:

===============================  =====================================
legacy                           replacement
===============================  =====================================
``configure_telemetry(path)``    ``obs.configure_observability(path)``
``telemetry().emit(name, ...)``  ``obs.event(name, ...)``
``telemetry().stage(name)``      ``obs.span(name)``
===============================  =====================================

The shims below keep old callers working — same JSONL file, same env
var (``REPRO_TELEMETRY``), same event shape (events gain trace ids but
keep ``ts``/``stage``/``worker``/``duration_s``) — while emitting a
:class:`DeprecationWarning`.  The read side (:func:`load_events`,
:func:`aggregate_events`, :func:`render_timings`,
:func:`render_fault_summary`) is re-exported from
:mod:`repro.obs.report`, which still parses every historical event
shape.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Any, Optional, Union

# Re-exported read-side API (canonical home: repro.obs.report).
from repro.obs.report import (  # noqa: F401  (re-exports)
    FAULT_STAGES,
    EventLog,
    StageStats,
    aggregate_events,
    load_events,
    render_fault_summary,
    render_timings,
)
from repro.obs.sink import TELEMETRY_ENV, ObsSink, configure_observability
from repro.obs.trace import event as _obs_event
from repro.obs.trace import span as _obs_span
from repro.utils.logging import get_logger

log = get_logger(__name__)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.runtime.telemetry.{old} is deprecated; use repro.obs.{new} "
        "instead", DeprecationWarning, stacklevel=3)


class RunTelemetry:
    """Deprecated JSONL event sink; forwards to :mod:`repro.obs`.

    Kept so existing call sites (and logs) continue to work: ``emit``
    becomes an :func:`repro.obs.event` and ``stage`` becomes a
    :func:`repro.obs.span` on the same file.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self._sink = ObsSink(path)

    @property
    def path(self):
        return self._sink.path

    @property
    def enabled(self) -> bool:
        return self._sink.enabled

    def emit(self, stage: str, duration_s: Optional[float] = None,
             **fields: Any) -> None:
        """Append one event line; a no-op when telemetry is disabled."""
        _deprecated("RunTelemetry.emit", "event")
        _obs_event(stage, duration_s=duration_s, sink=self._sink, **fields)

    @contextlib.contextmanager
    def stage(self, name: str, **fields: Any):
        """Time a block and emit one span for it (deprecated).

        Yields the :class:`repro.obs.Span`, which supports the mutable
        dict-style access the old API offered (``evt["cache"] =
        "hit"``).
        """
        _deprecated("RunTelemetry.stage", "span")
        with _obs_span(name, sink=self._sink, **fields) as sp:
            yield sp


_ACTIVE: Optional[RunTelemetry] = None


def configure_telemetry(path: Optional[Union[str, os.PathLike]]
                        ) -> RunTelemetry:
    """Deprecated: use :func:`repro.obs.configure_observability`.

    Still points the process-wide sink (and ``REPRO_TELEMETRY``, which
    executor workers inherit) at ``path``; None disables.
    """
    global _ACTIVE
    _deprecated("configure_telemetry", "configure_observability")
    configure_observability(path)
    _ACTIVE = RunTelemetry(path)
    return _ACTIVE


def telemetry() -> RunTelemetry:
    """Deprecated process-wide sink accessor (tracks ``REPRO_TELEMETRY``)."""
    global _ACTIVE
    env = os.environ.get(TELEMETRY_ENV) or None
    active_path = (str(_ACTIVE.path)
                   if _ACTIVE is not None and _ACTIVE.path else None)
    if _ACTIVE is None or env != active_path:
        _ACTIVE = RunTelemetry(env)
    return _ACTIVE
