"""Content-addressed, sharded artifact store with LRU eviction and dedup.

Million-cell sweeps outgrow a flat one-file-per-key cache directory:
a single directory with 10^6 entries makes every listing and fsync
slow, identical artifacts (e.g. the C&W cell crafted once per β row)
are stored once per key, and nothing bounds total disk usage.  This
module is the storage engine behind :class:`repro.utils.cache.DiskCache`
(which keeps its public API as a thin facade):

* **Content addressing + sharding** — every artifact (a dict of
  ndarrays) is hashed over its canonical contents and stored once as
  ``shards/<shard>/<hash>.npz``; the shard directory is derived from
  the hash, so no directory ever holds more than ~``n/shards`` blobs.
* **Per-entry manifest** — each logical ``(namespace, key)`` maps to a
  small JSON *entry* document under ``manifest/<shard>/``, written with
  the same atomic temp-file + fsync + rename protocol as the blobs.
  One file per entry means concurrent writers of distinct keys never
  contend and a torn write can only ever affect one entry.
* **Cross-cell dedup** — two keys whose artifacts are byte-identical
  share one blob; eviction and byte accounting are refcount-aware.
* **Size-bounded LRU eviction** — with ``max_bytes`` set, least
  recently *read* entries are dropped after each put until stored
  bytes fit the cap.  Entries pinned by an in-flight sweep checkpoint
  are never evicted.
* **Integrity scrub with per-shard resume** — :meth:`verify` walks the
  manifest shard by shard, quarantines unreadable blobs, and
  checkpoints its progress in an atomically-rewritten scrub manifest
  (the PR 2 self-heal/checkpoint pattern), so an interrupted scrub
  resumes from the last clean shard.
* **Transparent migration** — a flat-layout cache directory
  (``<root>/<namespace>/<key>.npz`` from PR 1–7) is read through and
  upgraded in place on first access; unreadable legacy files are
  discarded exactly like corrupt shard blobs.

Self-healing mirrors the flat cache's contract: any unreadable entry or
blob surfaces as a miss (``KeyError``), is quarantined or discarded, and
the artifact is recomputed — never poisoning the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.obs import counter, event
from repro.utils.logging import get_logger

log = get_logger(__name__)

__all__ = [
    "CacheStats",
    "ShardedStore",
    "StoreEntry",
    "atomic_write",
    "content_hash",
]

#: Length (hex chars) of the content hash used for blob names.
HASH_LEN = 32


@dataclasses.dataclass
class CacheStats:
    """Traffic counters shared by a store and its :class:`DiskCache` facade."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    stale_discards: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    # Sharded-backend extras (all zero on the flat backend).
    dedup_hits: int = 0
    evictions: int = 0
    bytes_reclaimed: int = 0
    quarantined: int = 0
    migrated: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["hit_rate"] = round(self.hit_rate, 4)
        return data

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def __str__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes}, stale={self.stale_discards}, "
                f"dedup={self.dedup_hits}, evicted={self.evictions}, "
                f"read={self.bytes_read}B, written={self.bytes_written}B)")


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power loss.

    ``os.replace`` makes the rename atomic against concurrent readers,
    but the *directory entry* itself is only durable once the directory
    inode reaches disk — without this, a kill at the wrong moment can
    roll a checkpoint manifest back to its previous (or no) version.
    Best-effort: platforms that cannot fsync a directory are skipped.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, write_fn: Callable[[Any], None],
                 suffix: str) -> int:
    """Write via unique temp file + fsync + rename + dir fsync; returns
    bytes written.

    Unique temp names make concurrent writers of the same key safe: each
    publishes a complete file and the last ``os.replace`` wins.  The file
    fsync closes the crash window where a rename could outlive its data;
    the directory fsync makes the rename itself durable.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=suffix)
    try:
        # mkstemp creates 0600; restore the umask-default perms a plain
        # open() would have given the destination file.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        size = os.path.getsize(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return size


def content_hash(arrays: Dict[str, np.ndarray], length: int = HASH_LEN) -> str:
    """Deterministic digest of a dict of ndarrays (names, dtypes, bytes).

    Hashing the *contents* rather than the serialized npz file keeps
    dedup independent of zip-container timestamps or compression
    details: two artifacts with identical arrays always share a blob.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(a.dtype).encode("ascii"))
        h.update(repr(a.shape).encode("ascii"))
        h.update(a.tobytes())
    return h.hexdigest()[:length]


_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _safe_name(text: str, limit: int = 48) -> str:
    """Filesystem-safe, length-bounded rendition of a namespace/key."""
    return _SAFE.sub("_", text)[:limit] or "_"


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One manifest entry: a logical key resolved to a content hash."""

    namespace: str
    key: str
    content_hash: str
    size: int
    path: Path          # the entry document itself
    accessed: float     # LRU timestamp (entry-file mtime)

    @property
    def ident(self) -> Tuple[str, str]:
        return (self.namespace, self.key)


class ShardedStore:
    """Content-addressed npz blob store with manifest, dedup and eviction.

    Args:
        root: store root; blobs live under ``root/shards``, entry
            documents under ``root/manifest``, quarantined corrupt blobs
            under ``root/quarantine``.  Legacy flat-layout artifacts
            (``root/<namespace>/<key>.npz``) are read through and
            migrated on access.
        shards: fan-out of the shard directories (default 256).
        max_bytes: stored-byte cap enforced by LRU eviction after every
            put (None = unbounded).
        stats: a :class:`CacheStats` to account into (the
            :class:`~repro.utils.cache.DiskCache` facade shares its own).
    """

    def __init__(self, root: os.PathLike, *, shards: int = 256,
                 max_bytes: Optional[int] = None,
                 stats: Optional[CacheStats] = None):
        self.root = Path(root)
        self.shards = max(1, int(shards))
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {self.max_bytes}")
        self.stats = stats if stats is not None else CacheStats()
        self._shard_width = max(2, len(f"{self.shards - 1:x}"))
        self._pins: Set[Tuple[str, str]] = set()
        self._lock = threading.Lock()
        self._dedup = counter("store/dedup_hits")
        self._evicted = counter("store/evictions")
        self._reclaimed = counter("store/bytes_reclaimed")
        self._quarantined = counter("store/quarantined")
        self._migrated = counter("store/migrated")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def manifest_dir(self) -> Path:
        return self.root / "manifest"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _shard_name(self, hex_digest: str) -> str:
        sid = int(hex_digest[:8], 16) % self.shards
        return f"{sid:0{self._shard_width}x}"

    def blob_path(self, digest: str) -> Path:
        return self.shards_dir / self._shard_name(digest) / f"{digest}.npz"

    def entry_path(self, namespace: str, key: str) -> Path:
        kh = hashlib.sha256(f"{namespace}/{key}".encode("utf-8")).hexdigest()
        name = f"{_safe_name(namespace)}--{_safe_name(key)}--{kh[:12]}.json"
        return self.manifest_dir / self._shard_name(kh) / name

    def legacy_path(self, namespace: str, key: str) -> Path:
        """Where the pre-sharded flat layout stored this artifact."""
        return self.root / namespace / f"{key}.npz"

    def artifact_path(self, namespace: str, key: str) -> Path:
        """The on-disk artifact for a key: its blob, or the legacy file.

        For an unknown key this returns the legacy flat location — the
        path a pre-sharded writer would have used — so callers probing
        or corrupting "where the artifact would live" stay meaningful.
        """
        entry = self._read_entry(namespace, key)
        if entry is not None:
            return self.blob_path(entry.content_hash)
        return self.legacy_path(namespace, key)

    # ------------------------------------------------------------------
    # Entry documents
    # ------------------------------------------------------------------
    def _read_entry(self, namespace: str, key: str) -> Optional[StoreEntry]:
        path = self.entry_path(namespace, key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            return StoreEntry(namespace=doc["namespace"], key=doc["key"],
                              content_hash=doc["hash"], size=int(doc["size"]),
                              path=path, accessed=path.stat().st_mtime)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, ValueError,
                UnicodeDecodeError) as exc:
            # A torn entry document: drop it so the artifact is
            # recomputed (the blob, if healthy, is re-adopted on rewrite
            # via dedup).
            log.warning("discarding unreadable store entry %s/%s: %s",
                        namespace, key, type(exc).__name__)
            self.stats.stale_discards += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_entry(self, namespace: str, key: str, digest: str,
                     size: int) -> None:
        doc = {"namespace": namespace, "key": key, "hash": digest,
               "size": int(size), "created": time.time()}
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        atomic_write(self.entry_path(namespace, key),
                     lambda fh: fh.write(blob), suffix=".entry.tmp")

    def entries(self, namespace: Optional[str] = None) -> List[StoreEntry]:
        """Every manifest entry (optionally one namespace), oldest-read
        first — the LRU eviction order."""
        found: List[StoreEntry] = []
        if not self.manifest_dir.exists():
            return found
        for path in self.manifest_dir.glob("*/*.json"):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                entry = StoreEntry(
                    namespace=doc["namespace"], key=doc["key"],
                    content_hash=doc["hash"], size=int(doc["size"]),
                    path=path, accessed=path.stat().st_mtime)
            except (OSError, json.JSONDecodeError, KeyError, ValueError,
                    UnicodeDecodeError):
                continue
            if namespace is None or entry.namespace == namespace:
                found.append(entry)
        found.sort(key=lambda e: (e.accessed, str(e.path)))
        return found

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, arrays: Dict[str, np.ndarray],
            meta: Optional[Dict[str, Any]] = None) -> Path:
        """Store an artifact; dedups against identical content.

        Returns the blob path (so fault tooling can corrupt/inspect the
        real artifact).  The blob is written first, then the entry
        document, so a crash between the two leaves only an orphan blob
        — never a dangling entry.
        """
        digest = content_hash(arrays)
        blob = self.blob_path(digest)
        written = 0
        if blob.exists():
            self.stats.dedup_hits += 1
            self._dedup.inc()
        else:
            written += atomic_write(blob, lambda fh: np.savez(fh, **arrays),
                                    suffix=".npz.tmp")
        if meta is not None:
            payload = json.dumps(meta, indent=2, default=str).encode("utf-8")
            written += atomic_write(blob.with_suffix(".json"),
                                    lambda fh: fh.write(payload),
                                    suffix=".json.tmp")
        size = os.path.getsize(blob)
        self._write_entry(namespace, key, digest, size)
        self.stats.writes += 1
        self.stats.bytes_written += written
        if self.max_bytes is not None:
            self.evict(self.max_bytes)
        return blob

    def get(self, namespace: str, key: str) -> Dict[str, np.ndarray]:
        """Load an artifact; raises KeyError if absent or unreadable.

        An unreadable blob is quarantined (moved aside for post-mortem,
        never re-read) and its entry dropped, so the artifact surfaces
        as a miss and is recomputed.  Unknown keys fall through to the
        legacy flat layout and are migrated in place on a readable hit.
        """
        entry = self._read_entry(namespace, key)
        if entry is None:
            return self._get_legacy(namespace, key)
        blob = self.blob_path(entry.content_hash)
        try:
            size = blob.stat().st_size
            with np.load(blob, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            self._quarantine_blob(entry, f"{type(exc).__name__}: {exc}")
            self.stats.misses += 1
            raise KeyError(
                f"cache entry unreadable: {namespace}/{key}") from None
        self.stats.hits += 1
        self.stats.bytes_read += size
        self._touch(entry.path)
        return arrays

    def get_meta(self, namespace: str, key: str) -> Dict[str, Any]:
        entry = self._read_entry(namespace, key)
        if entry is None:
            return self._get_legacy_meta(namespace, key)
        sidecar = self.blob_path(entry.content_hash).with_suffix(".json")
        if not sidecar.exists():
            raise KeyError(f"cache meta miss: {namespace}/{key}")
        try:
            return json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._quarantine_blob(entry, f"meta {type(exc).__name__}")
            raise KeyError(
                f"cache meta unreadable: {namespace}/{key}") from None

    def contains(self, namespace: str, key: str) -> bool:
        if self.entry_path(namespace, key).exists():
            return True
        return self.legacy_path(namespace, key).exists()

    def delete(self, namespace: str, key: str) -> int:
        """Remove one entry (and its blob if unreferenced); returns files
        removed."""
        removed = 0
        entry = self._read_entry(namespace, key)
        if entry is not None:
            removed += self._remove_entry(entry, drop_blob=True)
        legacy = self.legacy_path(namespace, key)
        for victim in (legacy, legacy.with_suffix(".json")):
            if victim.is_file():
                victim.unlink()
                removed += 1
        self._pins.discard((namespace, key))
        return removed

    def _touch(self, entry_file: Path) -> None:
        """Refresh an entry's LRU timestamp (best-effort)."""
        try:
            os.utime(entry_file, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Pinning (checkpoint integration)
    # ------------------------------------------------------------------
    def pin(self, namespace: str, key: str) -> None:
        """Protect an entry from eviction (an in-flight sweep checkpoint
        still references it)."""
        self._pins.add((namespace, key))

    def unpin(self, namespace: str, key: str) -> None:
        self._pins.discard((namespace, key))

    def unpin_all(self) -> None:
        self._pins.clear()

    @property
    def pinned(self) -> Set[Tuple[str, str]]:
        return set(self._pins)

    # ------------------------------------------------------------------
    # Accounting, eviction, dedup reporting
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Bytes actually stored (each deduped blob counted once)."""
        if not self.shards_dir.exists():
            return 0
        return sum(p.stat().st_size
                   for p in self.shards_dir.glob("*/*.npz") if p.is_file())

    def logical_bytes(self) -> int:
        """Bytes the flat layout would store (each entry counted)."""
        return sum(e.size for e in self.entries())

    def dedup_report(self) -> Dict[str, Any]:
        """Logical vs stored bytes and the savings dedup buys."""
        entries = self.entries()
        logical = sum(e.size for e in entries)
        stored = self.total_bytes()
        saved = max(0, logical - stored)
        return {
            "entries": len(entries),
            "unique_blobs": len({e.content_hash for e in entries}),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "saved_bytes": saved,
            "saved_pct": round(100.0 * saved / logical, 2) if logical else 0.0,
        }

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Drop least-recently-read unpinned entries until stored bytes
        fit ``max_bytes``; returns entries evicted.

        Dedup-aware: a shared blob is deleted only when its last entry
        goes.  Pinned entries are skipped unconditionally — a cap that
        cannot be met without dropping pinned data is left exceeded
        (with a warning) rather than violating the checkpoint contract.
        """
        cap = self.max_bytes if max_bytes is None else int(max_bytes)
        if cap is None:
            return 0
        started = time.monotonic()
        with self._lock:
            total = self.total_bytes()
            if total <= cap:
                return 0
            entries = self.entries()
            refs: Dict[str, int] = {}
            for e in entries:
                refs[e.content_hash] = refs.get(e.content_hash, 0) + 1
            evicted = 0
            reclaimed = 0
            for e in entries:              # oldest-read first
                if total <= cap:
                    break
                if e.ident in self._pins:
                    continue
                self._remove_entry(e, drop_blob=False)
                refs[e.content_hash] -= 1
                if refs[e.content_hash] <= 0:
                    blob = self.blob_path(e.content_hash)
                    if blob.is_file():
                        freed = blob.stat().st_size
                        total -= freed
                        reclaimed += freed
                        blob.unlink()
                    sidecar = blob.with_suffix(".json")
                    if sidecar.is_file():
                        sidecar.unlink()
                evicted += 1
                self.stats.evictions += 1
                self._evicted.inc()
            self.stats.bytes_reclaimed += reclaimed
            if reclaimed:
                self._reclaimed.inc(reclaimed)
            if evicted:
                event("store/evict",
                      duration_s=time.monotonic() - started,
                      evicted=evicted, bytes_reclaimed=reclaimed)
            if total > cap:
                log.warning(
                    "store over cap after eviction (%d > %d bytes): "
                    "%d pinned entries held", total, cap, len(self._pins))
                event("store/over_cap", over_bytes=total - cap,
                      pinned=len(self._pins))
            return evicted

    def _remove_entry(self, entry: StoreEntry, *, drop_blob: bool) -> int:
        removed = 0
        try:
            entry.path.unlink()
            removed += 1
        except OSError:
            pass
        if drop_blob:
            # Only if no other entry references the blob.
            still = any(e.content_hash == entry.content_hash
                        for e in self.entries())
            if not still:
                blob = self.blob_path(entry.content_hash)
                for victim in (blob, blob.with_suffix(".json")):
                    if victim.is_file():
                        victim.unlink()
                        removed += 1
        return removed

    # ------------------------------------------------------------------
    # Self-healing, quarantine, integrity scrub
    # ------------------------------------------------------------------
    def _quarantine_blob(self, entry: StoreEntry, reason: str) -> None:
        """Move an unreadable blob aside and drop its entries."""
        blob = self.blob_path(entry.content_hash)
        log.warning("quarantining unreadable blob %s (%s/%s): %s",
                    entry.content_hash, entry.namespace, entry.key, reason)
        self.stats.stale_discards += 1
        if blob.is_file():
            try:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(blob, self.quarantine_dir / blob.name)
                self.stats.quarantined += 1
                self._quarantined.inc()
            except OSError:
                try:
                    blob.unlink()
                except OSError:
                    pass
        sidecar = blob.with_suffix(".json")
        try:
            sidecar.unlink()
        except OSError:
            pass
        # Every entry that resolved to the dead blob is now dangling.
        for e in self.entries():
            if e.content_hash == entry.content_hash:
                try:
                    e.path.unlink()
                except OSError:
                    pass

    @property
    def scrub_path(self) -> Path:
        return self.manifest_dir / "_scrub.json"

    def verify(self, *, resume: bool = False) -> Dict[str, Any]:
        """Scrub the manifest: every entry must resolve to a readable blob.

        Corrupt blobs are quarantined and their entries dropped; dangling
        entries (blob missing) are dropped.  Progress is checkpointed
        per manifest shard in an atomically-rewritten scrub manifest, so
        ``resume=True`` skips shards already verified clean — the same
        resume contract as the sweep checkpoints.
        """
        state: Dict[str, Any] = {"status": "running", "shards": {}}
        if resume and self.scrub_path.exists():
            try:
                prior = json.loads(self.scrub_path.read_text(encoding="utf-8"))
                state["shards"] = dict(prior.get("shards", {}))
            except (OSError, json.JSONDecodeError):
                pass
        checked = quarantined = dangling = skipped = 0
        by_shard: Dict[str, List[StoreEntry]] = {}
        for e in self.entries():
            by_shard.setdefault(e.path.parent.name, []).append(e)
        for shard in sorted(by_shard):
            prior = state["shards"].get(shard)
            if resume and prior and prior.get("status") == "clean":
                skipped += len(by_shard[shard])
                continue
            shard_quarantined = shard_dangling = 0
            for e in by_shard[shard]:
                checked += 1
                blob = self.blob_path(e.content_hash)
                if not blob.is_file():
                    try:
                        e.path.unlink()
                    except OSError:
                        pass
                    self.stats.stale_discards += 1
                    shard_dangling += 1
                    continue
                try:
                    with np.load(blob, allow_pickle=False) as data:
                        for name in data.files:
                            data[name]
                except Exception as exc:
                    self._quarantine_blob(e, f"{type(exc).__name__}: {exc}")
                    shard_quarantined += 1
            quarantined += shard_quarantined
            dangling += shard_dangling
            state["shards"][shard] = {
                "status": ("clean" if not (shard_quarantined or shard_dangling)
                           else "healed"),
                "entries": len(by_shard[shard]),
                "quarantined": shard_quarantined,
                "dangling": shard_dangling,
                "updated": time.time(),
            }
            self._save_scrub(state)
        state["status"] = "complete"
        self._save_scrub(state)
        return {"checked": checked, "skipped": skipped,
                "quarantined": quarantined, "dangling": dangling,
                "shards": len(by_shard)}

    def _save_scrub(self, state: Dict[str, Any]) -> None:
        blob = json.dumps(state, indent=2, sort_keys=True).encode("utf-8")
        atomic_write(self.scrub_path, lambda fh: fh.write(blob),
                     suffix=".json.tmp")

    # ------------------------------------------------------------------
    # Legacy flat-layout read-through + migration
    # ------------------------------------------------------------------
    def _legacy_meta_doc(self, namespace: str, key: str) -> Optional[Dict]:
        sidecar = self.legacy_path(namespace, key).with_suffix(".json")
        if not sidecar.exists():
            return None
        try:
            return json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _get_legacy(self, namespace: str, key: str) -> Dict[str, np.ndarray]:
        path = self.legacy_path(namespace, key)
        if not path.exists():
            self.stats.misses += 1
            raise KeyError(f"cache miss: {namespace}/{key}")
        try:
            size = path.stat().st_size
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            log.warning("discarding unreadable legacy cache entry %s/%s: %s",
                        namespace, key, f"{type(exc).__name__}: {exc}")
            self.stats.stale_discards += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"cache entry unreadable: {namespace}/{key}") from None
        # Upgrade in place: adopt the artifact into the sharded layout
        # and drop the flat blob (the meta sidecar, if any, migrates
        # into the store; the flat .json is left because the JSON-doc
        # API shares that path).
        self.put(namespace, key, arrays, meta=self._legacy_meta_doc(namespace,
                                                                    key))
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.migrated += 1
        self._migrated.inc()
        log.info("migrated legacy cache entry %s/%s into sharded store",
                 namespace, key)
        self.stats.hits += 1
        self.stats.bytes_read += size
        return arrays

    def _get_legacy_meta(self, namespace: str, key: str) -> Dict[str, Any]:
        path = self.legacy_path(namespace, key).with_suffix(".json")
        if not path.exists():
            raise KeyError(f"cache meta miss: {namespace}/{key}")
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            log.warning("discarding unreadable legacy meta %s/%s: %s",
                        namespace, key, type(exc).__name__)
            self.stats.stale_discards += 1
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"cache meta unreadable: {namespace}/{key}") from None

    def migrate_flat(self) -> int:
        """Adopt every readable legacy flat-layout artifact; returns the
        number migrated.  Unreadable legacy files are discarded (they
        would have surfaced as misses anyway)."""
        migrated = 0
        reserved = {"shards", "manifest", "quarantine"}
        if not self.root.exists():
            return 0
        for ns_dir in sorted(self.root.iterdir()):
            if not ns_dir.is_dir() or ns_dir.name in reserved:
                continue
            for path in sorted(ns_dir.glob("*.npz")):
                try:
                    self._get_legacy(ns_dir.name, path.stem)
                    migrated += 1
                except KeyError:
                    continue
        return migrated

    # ------------------------------------------------------------------
    # Bulk removal
    # ------------------------------------------------------------------
    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete stored entries (one namespace, or everything); returns
        files removed.  Clearing a namespace also sweeps its legacy
        flat-layout files, preserving the flat cache's semantics."""
        removed = 0
        if namespace is None:
            if self.root.exists():
                for path in sorted(self.root.rglob("*")):
                    if path.is_file():
                        path.unlink()
                        removed += 1
            self._pins.clear()
            return removed
        for entry in self.entries(namespace):
            removed += self._remove_entry(entry, drop_blob=True)
            self._pins.discard(entry.ident)
        legacy = self.root / namespace
        if legacy.exists():
            for path in sorted(legacy.rglob("*")):
                if path.is_file():
                    path.unlink()
                    removed += 1
        return removed
