"""Deterministic fault injection for the sweep runtime.

The paper's adversarial-evaluation lesson — Carlini & Wagner showed
MagNet falls to an attacker who actually probes the defense — applies to
infrastructure too: a runtime whose failure paths are never exercised
should be assumed broken.  This module makes the failure paths testable
by injecting *deterministic* faults keyed by work-item index:

* **crash** — the worker process exits hard (``os._exit``), producing a
  ``BrokenProcessPool`` for the chunk that contained the item.
* **timeout** — the item sleeps past the executor's per-item timeout so
  the SIGALRM watchdog fires (:class:`ItemTimeout`).
* **transient** — the item raises :class:`InjectedFault`; a retry
  succeeds once the fault's fire budget is spent.
* **corrupt** — a cached artifact is overwritten with garbage bytes,
  exercising :class:`~repro.utils.cache.DiskCache` self-healing.

A :class:`FaultPlan` is immutable plain data (picklable, shippable to
worker processes) and every decision is a pure function of
``(seed, item index, attempt)``, so chaos runs are reproducible: the
same plan against the same sweep injects the same faults.  Plans are
built explicitly in tests or parsed from the CLI ``--inject-faults``
spec for chaos runs.

:class:`RetryPolicy` is the executor-side counterpart: how long an item
may run, how many times it is retried, and how the backoff grows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Any, Dict, Iterable, Mapping, Optional, Union

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "ItemFailure",
    "ItemTimeout",
    "RetryPolicy",
    "corrupt_cache_entry",
]


class InjectedFault(RuntimeError):
    """A deliberately injected, transient work-item failure."""


class InjectedCrash(InjectedFault):
    """A crash fault fired outside a worker process (serial path)."""


class ItemTimeout(TimeoutError):
    """A work item exceeded the executor's per-item timeout."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats a failing work item.

    Args:
        timeout_s: per-item wall-clock limit enforced *inside* the
            worker via SIGALRM (None disables the watchdog).
        retries: additional attempts after the first failure; an item
            that fails ``retries + 1`` times is terminal.
        backoff_s: base delay before a re-dispatch round; doubles per
            attempt (exponential) up to ``backoff_cap_s``.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.25
    backoff_cap_s: float = 30.0

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")

    def delay(self, attempt: int) -> float:
        """Backoff before re-running an item that failed ``attempt`` times."""
        if attempt <= 0 or self.backoff_s <= 0:
            return 0.0
        return min(self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)


@dataclasses.dataclass
class ItemFailure:
    """Terminal failure record for one work item (``on_error="record"``).

    Appears in the results list at the failed item's position instead of
    a value, so a sweep can keep every healthy cell and report exactly
    which cells died and why.
    """

    index: int
    kind: str           # "crash" | "timeout" | exception class name
    error: str
    attempts: int

    def __bool__(self) -> bool:  # failed cells are falsy for filtering
        return False


_KINDS = ("crash", "timeout", "transient")


def _as_fires(spec: Union[None, Iterable[int], Mapping[int, int]]
              ) -> Dict[int, int]:
    """Normalize an index collection to ``{index: times_to_fire}``."""
    if spec is None:
        return {}
    if isinstance(spec, Mapping):
        return {int(k): int(v) for k, v in spec.items()}
    return {int(i): 1 for i in spec}


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-item-index schedule of injected faults.

    Explicit indices (``crashes``/``timeouts``/``transients``) may be an
    iterable of item indices (each fires on the first attempt only) or a
    ``{index: n_fires}`` mapping — a fault fires while
    ``attempt < n_fires``, so ``n_fires`` larger than the retry budget
    makes the item terminally fail.  Rate-based plans
    (:meth:`from_rates` / :meth:`parse`) pick items deterministically
    from ``seed``.

    ``hang_s`` is how long a timeout fault sleeps; it must exceed the
    executor's ``timeout_s`` for the watchdog to fire.
    """

    seed: int = 0
    crashes: Any = None
    timeouts: Any = None
    transients: Any = None
    corrupts: Any = None
    hang_s: float = 3600.0
    rates: Any = None          # (crash, timeout, transient, corrupt) rates
    fires: int = 1             # fire budget for rate-selected items

    def __post_init__(self):
        object.__setattr__(self, "crashes", _as_fires(self.crashes))
        object.__setattr__(self, "timeouts", _as_fires(self.timeouts))
        object.__setattr__(self, "transients", _as_fires(self.transients))
        object.__setattr__(self, "corrupts", _as_fires(self.corrupts))
        if self.rates is not None:
            object.__setattr__(self, "rates", tuple(float(r) for r in self.rates))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(cls, seed: int, *, crash: float = 0.0, timeout: float = 0.0,
                   transient: float = 0.0, corrupt: float = 0.0,
                   fires: int = 1, hang_s: float = 3600.0) -> "FaultPlan":
        """A plan that faults each item index with the given probabilities.

        Decisions are a pure hash of ``(seed, index)`` — no RNG state —
        so any two runs over the same grid inject identical faults.
        """
        return cls(seed=int(seed), rates=(crash, timeout, transient, corrupt),
                   fires=int(fires), hang_s=float(hang_s))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``--inject-faults`` CLI spec.

        Comma-separated ``key=value`` pairs: ``seed`` (int), ``crash`` /
        ``timeout`` / ``transient`` / ``corrupt`` (rates in [0, 1]),
        ``fires`` (int) and ``hang`` (seconds), e.g.
        ``"seed=7,crash=0.05,timeout=0.02,transient=0.1"``.
        """
        fields: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --inject-faults field {part!r}; expected key=value")
            key, value = part.split("=", 1)
            key = key.strip().lower()
            if key not in ("seed", "crash", "timeout", "transient", "corrupt",
                           "fires", "hang"):
                raise ValueError(f"unknown --inject-faults key {key!r}")
            fields[key] = float(value)
        return cls.from_rates(
            int(fields.get("seed", 0)),
            crash=fields.get("crash", 0.0),
            timeout=fields.get("timeout", 0.0),
            transient=fields.get("transient", 0.0),
            corrupt=fields.get("corrupt", 0.0),
            fires=int(fields.get("fires", 1)),
            hang_s=fields.get("hang", 3600.0),
        )

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _unit(self, index: int, salt: str) -> float:
        """Deterministic uniform in [0, 1) from (seed, index, salt)."""
        blob = f"{self.seed}:{index}:{salt}".encode()
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def kind_for(self, index: int) -> Optional[str]:
        """The fault kind injected at ``index`` (None = healthy item)."""
        for kind, fires in (("crash", self.crashes),
                            ("timeout", self.timeouts),
                            ("transient", self.transients)):
            if index in fires:
                return kind
        if self.rates is not None:
            u = self._unit(index, "kind")
            edge = 0.0
            for kind, rate in zip(_KINDS, self.rates):
                edge += rate
                if u < edge:
                    return kind
        return None

    def fires_for(self, index: int) -> int:
        """How many attempts the fault at ``index`` fires for."""
        for fires in (self.crashes, self.timeouts, self.transients):
            if index in fires:
                return fires[index]
        return self.fires

    def corrupts_item(self, index: int) -> bool:
        """Whether the artifact published by ``index`` gets corrupted."""
        if index in self.corrupts:
            return True
        if self.rates is not None and len(self.rates) > 3:
            return self._unit(index, "corrupt") < self.rates[3]
        return False

    def fire(self, index: int, attempt: int, *, in_worker: bool) -> None:
        """Inject the planned fault for ``(index, attempt)``, if any.

        Called by the executor immediately before the work function.
        ``in_worker`` distinguishes a pool child (where a crash may
        really ``os._exit``) from the serial path (where it raises
        :class:`InjectedCrash` so the experiment process survives).
        """
        kind = self.kind_for(index)
        if kind is None or attempt >= self.fires_for(index):
            return
        if kind == "crash":
            if in_worker:
                os._exit(13)
            raise InjectedCrash(
                f"injected crash at item {index} attempt {attempt}")
        if kind == "timeout":
            time.sleep(self.hang_s)
            raise InjectedFault(
                f"injected hang at item {index} outlived its sleep "
                f"({self.hang_s}s) without a timeout watchdog")
        raise InjectedFault(
            f"injected transient fault at item {index} attempt {attempt}")

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind, fires in (("crash", self.crashes), ("timeout", self.timeouts),
                            ("transient", self.transients),
                            ("corrupt", self.corrupts)):
            if fires:
                parts.append(f"{kind}@{sorted(fires)}")
        if self.rates is not None and any(self.rates):
            parts.append("rates=" + "/".join(f"{r:g}" for r in self.rates))
        return "FaultPlan(" + ", ".join(parts) + ")"


def corrupt_cache_entry(path: Union[str, os.PathLike]) -> None:
    """Overwrite a cached artifact with garbage (a simulated torn write).

    The bytes are chosen so every reader fails: too short to be a valid
    npz/JSON payload, wrong magic.  :class:`~repro.utils.cache.DiskCache`
    must respond by discarding the entry and recomputing.
    """
    with open(path, "wb") as fh:
        fh.write(b"\x00CORRUPT\x00")
