"""Multi-tenant model routing for the serving cluster.

One HTTP frontend serves the whole zoo of MagNet variants: each routed
model is a *tenant* with its own :class:`~repro.serving.config.ServingConfig`
(batch knobs, queue bound, shed thresholds), its own
:class:`~repro.serving.batcher.MicroBatcher` (so one tenant's burst
cannot starve another's queue), its own
:class:`~repro.serving.policy.TieredAdmission`, and its own latency
stats.  ``POST /predict`` picks the tenant with the ``model=`` field;
requests without one go to the default model.

A :class:`ModelSpec` describes how to *build* a tenant's MagNet inside
each worker process: either a picklable callable, or the name of a
builder registered in the :mod:`repro.models.zoo` catalog (the
spawn-safe spelling — only the name and kwargs cross the process
boundary).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.serving.batcher import MicroBatcher
from repro.serving.config import ServingConfig
from repro.serving.policy import AdaptiveWaitController, TieredAdmission
from repro.serving.service import ServiceStats


class UnknownModelError(KeyError):
    """``model=`` named a tenant the router does not serve (HTTP 404)."""

    def __init__(self, model: str, known: Sequence[str]):
        self.model = model
        self.known = list(known)
        super().__init__(
            f"unknown model {model!r}; serving {sorted(self.known)}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


@dataclasses.dataclass
class ModelSpec:
    """One routed model: identity + how to build it in a worker process."""

    #: Routing key for the ``model=`` request field.
    model_id: str
    #: A picklable callable returning a calibrated MagNet, or the name
    #: of a builder registered via
    #: :func:`repro.models.zoo.register_model_builder`.
    builder: Union[str, Callable[..., Any]]
    #: Keyword arguments for the builder (must be picklable).
    builder_kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Expected per-example input shape; pinned from the first request
    #: when ``None``.
    input_shape: Optional[Tuple[int, ...]] = None
    #: Per-tenant serving knobs.
    config: ServingConfig = dataclasses.field(default_factory=ServingConfig)

    def build(self):
        """Construct the MagNet (called inside each worker process)."""
        fn = self.builder
        if isinstance(fn, str):
            from repro.models.zoo import resolve_model_builder
            fn = resolve_model_builder(self.builder)
        return fn(**self.builder_kwargs)


class TenantState:
    """Frontend-side state for one routed model."""

    def __init__(self, spec: ModelSpec):
        self.spec = spec
        self.model_id = spec.model_id
        self.config = spec.config
        self.batcher = MicroBatcher(max_batch=spec.config.max_batch,
                                    max_wait_ms=spec.config.max_wait_ms,
                                    max_queue=spec.config.max_queue,
                                    name=spec.model_id)
        self.stats = ServiceStats(window=spec.config.latency_window)
        self.admission = TieredAdmission(spec.config.max_queue,
                                         spec.config.shed_thresholds,
                                         tenant=spec.model_id)
        self.adaptive: Optional[AdaptiveWaitController] = None
        if spec.config.adaptive_wait:
            self.adaptive = AdaptiveWaitController(
                self.batcher, min_wait_ms=spec.config.min_wait_ms,
                max_wait_ms=spec.config.max_wait_ms, tenant=spec.model_id)
        #: Pinned per-example shape (from the spec, else first request).
        self.input_shape: Optional[Tuple[int, ...]] = spec.input_shape


class ModelRouter:
    """model-id -> :class:`TenantState` lookup with a default tenant."""

    def __init__(self, specs: Sequence[ModelSpec],
                 default_model: Optional[str] = None):
        if not specs:
            raise ValueError("ModelRouter needs at least one ModelSpec")
        ids = [spec.model_id for spec in specs]
        dupes = {m for m in ids if ids.count(m) > 1}
        if dupes:
            raise ValueError(f"duplicate model ids: {sorted(dupes)}")
        self._tenants: Dict[str, TenantState] = {
            spec.model_id: TenantState(spec) for spec in specs}
        self.default_model = default_model or ids[0]
        if self.default_model not in self._tenants:
            raise UnknownModelError(self.default_model, ids)

    def resolve(self, model: Optional[str] = None) -> TenantState:
        """Route a request's ``model`` field (None -> default tenant)."""
        model_id = model or self.default_model
        tenant = self._tenants.get(model_id)
        if tenant is None:
            raise UnknownModelError(model_id, list(self._tenants))
        return tenant

    def tenants(self) -> List[TenantState]:
        return list(self._tenants.values())

    def model_ids(self) -> List[str]:
        return list(self._tenants)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)
