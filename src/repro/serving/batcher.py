"""Request queue + dynamic micro-batching scheduler.

Requests arrive one at a time (HTTP handler threads, in-process
clients); the MagNet pipeline underneath is throughput-bound vectorized
numpy that only pays off on batches.  :class:`MicroBatcher` bridges the
two: producers :meth:`~MicroBatcher.submit` single requests into a
bounded FIFO, consumers (worker threads) block in
:meth:`~MicroBatcher.next_batch` until a batch is due.  A batch is due
when

* ``max_batch`` requests are waiting (flush on size), or
* the oldest waiting request has aged ``max_wait_ms`` (flush on
  timeout), or
* the batcher is closing and must drain.

Admission control is explicit: once ``max_queue`` requests are waiting,
:meth:`~MicroBatcher.submit` raises :class:`QueueFullError` immediately
instead of queueing into unbounded latency — the caller (HTTP 429, a
load generator) decides whether to retry.  All methods are thread-safe.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional

import numpy as np

from repro.obs import counter, gauge, histogram

#: Batch-size histogram buckets (powers of two up to a large max_batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class QueueFullError(RuntimeError):
    """Admission control rejected a request: the queue is at max_queue."""


class ServingClosedError(RuntimeError):
    """The service is shut down (or shutting down) and takes no requests."""


@dataclasses.dataclass
class Request:
    """One queued inference request (a single example, not a batch)."""

    x: np.ndarray                 # one example, shape = model input shape
    id: str                       # caller-supplied or auto-assigned id
    future: Future                # resolves to a Verdict (or an exception)
    enqueued_at: float            # monotonic seconds at submit time
    span: Optional[Any] = None    # open serve/request span (obs.Span)


class MicroBatcher:
    """Bounded FIFO of requests with size/deadline-triggered flushing."""

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 5.0,
                 max_queue: int = 256,
                 clock: Callable[[], float] = time.monotonic,
                 name: Optional[str] = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        #: Tenant name for multi-model serving; suffixes the queue-depth
        #: gauge so each tenant's depth is observable on its own.
        self.name = name
        self._clock = clock
        self._queue: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        #: Total requests accepted / rejected since construction.
        self.submitted = 0
        self.rejected = 0
        suffix = f"_{name}" if name else ""
        self._depth_gauge = gauge(f"serve/queue_depth{suffix}")
        self._batch_sizes = histogram("serve/batch_size",
                                      buckets=BATCH_SIZE_BUCKETS)
        self._rejected_counter = counter("serve/rejected")
        self._submitted_counter = counter("serve/submitted")

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue one request; wakes a waiting consumer.

        Raises :class:`ServingClosedError` after :meth:`close`, and
        :class:`QueueFullError` when the queue already holds
        ``max_queue`` requests (the request is *not* queued).
        """
        with self._cond:
            if self._closed:
                raise ServingClosedError("batcher is closed")
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                self._rejected_counter.inc()
                raise QueueFullError(
                    f"queue full: {len(self._queue)} waiting >= "
                    f"max_queue={self.max_queue}")
            self._queue.append(request)
            self.submitted += 1
            self._submitted_counter.inc()
            self._depth_gauge.set(len(self._queue))
            self._cond.notify()

    def set_max_wait_ms(self, wait_ms: float) -> None:
        """Retune the flush deadline (adaptive batching policy hook).

        Thread-safe; wakes blocked consumers so a shorter wait takes
        effect on the batch currently being aged, not just the next one.
        """
        if wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {wait_ms}")
        with self._cond:
            self.max_wait_s = float(wait_ms) / 1000.0
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def next_batch(self, timeout: Optional[float] = None
                   ) -> Optional[List[Request]]:
        """Block until a batch is due and return it (FIFO order).

        Returns ``None`` once the batcher is closed *and* drained — the
        consumer's signal to exit.  With a ``timeout``, returns ``[]``
        if nothing became due within that many seconds, so workers can
        periodically re-check external stop conditions.
        """
        deadline = self._clock() + timeout if timeout is not None else None
        with self._cond:
            while True:
                now = self._clock()
                wait: Optional[float]
                if self._queue:
                    if self._closed or len(self._queue) >= self.max_batch:
                        return self._pop_batch()
                    flush_at = self._queue[0].enqueued_at + self.max_wait_s
                    if now >= flush_at:
                        return self._pop_batch()
                    wait = flush_at - now
                    if deadline is not None:
                        wait = min(wait, deadline - now)
                else:
                    if self._closed:
                        return None
                    wait = None if deadline is None else deadline - now
                if wait is not None and wait <= 0:
                    # The overall timeout expired first; a due flush was
                    # handled above, so this poll round came up empty.
                    return []
                self._cond.wait(wait)

    def _pop_batch(self) -> List[Request]:
        n = min(self.max_batch, len(self._queue))
        batch = [self._queue.popleft() for _ in range(n)]
        self._batch_sizes.observe(n)
        self._depth_gauge.set(len(self._queue))
        return batch

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions; queued requests still drain via next_batch."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
