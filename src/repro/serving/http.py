"""Stdlib-only HTTP frontend for the inference service.

A :class:`ThreadingHTTPServer` whose handler threads are the producers
feeding the micro-batcher: each ``POST /predict`` blocks its connection
thread until the service resolves the request's verdict, so concurrent
connections coalesce into batches server-side with no client changes.

Endpoints:

* ``POST /predict`` — body ``{"x": <nested list>, "id": "..."?,
  "model": "..."?, "priority": "..."?}``; answers the verdict as JSON.
  ``model`` routes to a tenant when the backend is a
  :class:`~repro.serving.cluster.ClusterService` (``404`` unknown id;
  ``400`` on a single-model server), ``priority`` picks the shedding
  tier.  ``400`` malformed body/shape, ``429`` queue full or tier shed
  (load shed; retry later), ``503`` service stopped, ``504`` verdict
  timed out.
* ``GET /healthz`` — ``{"status": "ok"}`` (``503`` once stopped).
* ``GET /models`` — routed model ids + default (cluster backends).
* ``GET /stats`` — counters, batch stats, p50/p95/p99 latencies, config.
* ``GET /metrics`` — Prometheus text exposition of the process-wide
  :mod:`repro.obs` metrics registry (``serve/*``, ``cache/*``, ...)
  plus the service's latency percentiles and queue depth as gauges.

The server is backend-agnostic: anything exposing ``submit`` /
``healthy`` / ``uptime_s`` / ``request_timeout_s`` / ``stats_snapshot``
/ ``metrics_gauges`` works (both ``InferenceService`` and
``ClusterService`` do).
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple

import numpy as np

from repro.obs import metrics_registry
from repro.serving.batcher import QueueFullError, ServingClosedError
from repro.serving.policy import ShedError
from repro.serving.router import UnknownModelError
from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Refuse request bodies beyond this size (a generous bound for one
#: image as a JSON nested list).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServingHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one serving backend (service or cluster)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: Any):
        super().__init__(address, _ServingHandler)
        self.service = service


def build_http_server(service: Any, host: str = "127.0.0.1",
                      port: int = 0) -> ServingHTTPServer:
    """Bind the JSON frontend; ``port=0`` picks an ephemeral port."""
    return ServingHTTPServer((host, port), service)


def serve_in_thread(service: Any, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[ServingHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns (server, thread).

    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = build_http_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread


class _ServingHandler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # Keep-alive matters under closed-loop load: without it every request
    # pays a TCP handshake.  Content-Length is always set below.
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        log.debug("%s %s", self.address_string(), fmt % args)

    # ------------------------------------------------------------------
    def _send_json(self, code: int, payload: Dict[str, Any],
                   retry_after: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        if self.path == "/healthz":
            if service.healthy():
                self._send_json(200, {"status": "ok",
                                      "uptime_s": round(service.uptime_s, 3)})
            else:
                self._send_json(503, {"status": "stopped"})
        elif self.path == "/stats":
            self._send_json(200, service.stats_snapshot())
        elif self.path == "/models":
            if getattr(service, "supports_routing", False):
                self._send_json(200, {
                    "models": sorted(service.model_ids()),
                    "default_model": service.router.default_model})
            else:
                self._send_json(404, {"error": "single-model server: "
                                               "no routed models"})
        elif self.path == "/metrics":
            self._send_metrics(service)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _send_metrics(self, service: Any) -> None:
        """Prometheus text exposition: registry + serving percentiles."""
        body = metrics_registry().render_prometheus(
            extra_gauges=service.metrics_gauges()).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized body"})
            return
        try:
            payload = json.loads(self.rfile.read(length))
            x = np.asarray(payload["x"], dtype=np.float32)
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"malformed request: "
                                           f"{type(exc).__name__}"})
            return

        service = self.server.service
        request_id = payload.get("id")
        if request_id is not None and not isinstance(request_id, str):
            self._send_json(400, {"error": "id must be a string"})
            return
        model = payload.get("model")
        priority = payload.get("priority")
        for field, value in (("model", model), ("priority", priority)):
            if value is not None and not isinstance(value, str):
                self._send_json(400, {"error": f"{field} must be a string"})
                return
        routed = getattr(service, "supports_routing", False)
        if (model is not None or priority is not None) and not routed:
            self._send_json(400, {"error": "single-model server: model/"
                                           "priority fields not supported"})
            return
        kwargs: Dict[str, Any] = {"request_id": request_id}
        if routed:
            kwargs["model"] = model
            kwargs["priority"] = priority
        try:
            future = service.submit(x, **kwargs)
            verdict = future.result(service.request_timeout_s)
        except UnknownModelError as exc:
            self._send_json(404, {"error": str(exc),
                                  "models": sorted(exc.known)})
            return
        except ShedError as exc:
            self._send_json(429, {"error": str(exc), "shed_tier": exc.tier},
                            retry_after=True)
            return
        except QueueFullError:
            self._send_json(429, {"error": "queue full, retry later"},
                            retry_after=True)
            return
        except ServingClosedError:
            self._send_json(503, {"error": "service stopped"})
            return
        except FutureTimeoutError:
            self._send_json(504, {"error": "verdict timed out"})
            return
        except ValueError as exc:           # input-shape mismatch
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:            # model failure inside the batch
            log.exception("/predict failed")
            self._send_json(500, {"error": type(exc).__name__})
            return
        self._send_json(200, verdict.as_dict())
