"""Configuration for the online inference service.

One frozen dataclass holds every serving knob so the CLI, the HTTP
frontend, the benchmark and the tests construct services identically.
The two knobs that define *dynamic micro-batching* are ``max_batch`` and
``max_wait_ms``: a batch is flushed to the worker pool as soon as either
``max_batch`` requests are waiting or the oldest waiting request has
aged ``max_wait_ms`` — whichever happens first.  ``max_queue`` bounds
admission: once that many requests are queued, new submissions are
rejected immediately (load shedding) instead of growing latency without
bound.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Knobs for :class:`~repro.serving.service.InferenceService`."""

    #: Flush a batch once this many requests are waiting.
    max_batch: int = 32
    #: ... or once the oldest waiting request is this old (milliseconds).
    max_wait_ms: float = 5.0
    #: Admission bound: submissions beyond this queue depth are rejected
    #: with :class:`~repro.serving.batcher.QueueFullError`.
    max_queue: int = 256
    #: Worker threads draining the queue.  The pipeline is vectorized
    #: numpy that releases the GIL in BLAS, so 1-2 workers saturate a
    #: small host; more workers mainly reduce head-of-line blocking.
    workers: int = 1
    #: Ring-buffer size for the latency percentiles reported by /stats.
    latency_window: int = 2048
    #: Server-side cap on how long one HTTP /predict call may wait for
    #: its verdict before answering 504.
    request_timeout_s: float = 30.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {self.latency_window}")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive, got "
                             f"{self.request_timeout_s}")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)
