"""Configuration for the online inference service.

One frozen dataclass holds every serving knob so the CLI, the HTTP
frontend, the benchmark and the tests construct services identically.
The two knobs that define *dynamic micro-batching* are ``max_batch`` and
``max_wait_ms``: a batch is flushed to the worker pool as soon as either
``max_batch`` requests are waiting or the oldest waiting request has
aged ``max_wait_ms`` — whichever happens first.  ``max_queue`` bounds
admission: once that many requests are queued, new submissions are
rejected immediately (load shedding) instead of growing latency without
bound.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Knobs for :class:`~repro.serving.service.InferenceService`.

    In cluster mode (:class:`~repro.serving.cluster.ClusterService`) one
    ``ServingConfig`` describes a single *tenant* (one routed model): its
    batching knobs, queue bound, shed thresholds, and adaptive-wait
    bounds are all per-tenant.
    """

    #: Flush a batch once this many requests are waiting.
    max_batch: int = 32
    #: ... or once the oldest waiting request is this old (milliseconds).
    max_wait_ms: float = 5.0
    #: Admission bound: submissions beyond this queue depth are rejected
    #: with :class:`~repro.serving.batcher.QueueFullError`.
    max_queue: int = 256
    #: Worker threads draining the queue.  The pipeline is vectorized
    #: numpy that releases the GIL in BLAS, so 1-2 workers saturate a
    #: small host; more workers mainly reduce head-of-line blocking.
    workers: int = 1
    #: Ring-buffer size for the latency percentiles reported by /stats.
    latency_window: int = 2048
    #: Server-side cap on how long one HTTP /predict call may wait for
    #: its verdict before answering 504.
    request_timeout_s: float = 30.0
    #: Tiered load-shedding thresholds as fractions of ``max_queue``,
    #: one per priority tier (interactive, standard, background).  A
    #: tier's requests shed once queue depth reaches its fraction.
    shed_thresholds: Tuple[float, float, float] = (1.0, 0.7, 0.45)
    #: Enable AIMD tuning of ``max_wait_ms`` from the live queue-depth
    #: gauge; the configured ``max_wait_ms`` becomes the upper bound.
    adaptive_wait: bool = False
    #: Lower bound the adaptive policy may shrink the wait to.
    min_wait_ms: float = 0.25

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {self.latency_window}")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive, got "
                             f"{self.request_timeout_s}")
        if len(self.shed_thresholds) != 3:
            raise ValueError("shed_thresholds needs one fraction per tier "
                             f"(3), got {self.shed_thresholds!r}")
        for frac in self.shed_thresholds:
            if not 0.0 < frac <= 1.0:
                raise ValueError(
                    f"shed thresholds must be in (0, 1], got {frac}")
        if self.min_wait_ms < 0:
            raise ValueError(
                f"min_wait_ms must be >= 0, got {self.min_wait_ms}")
        if self.adaptive_wait and self.min_wait_ms > self.max_wait_ms:
            raise ValueError(
                f"min_wait_ms={self.min_wait_ms} exceeds "
                f"max_wait_ms={self.max_wait_ms}")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Process-level knobs for :class:`~repro.serving.cluster.ClusterService`.

    Per-tenant knobs (batching, queues, shedding) live on each tenant's
    :class:`ServingConfig`; this dataclass only holds what is shared by
    the whole worker fleet: transport geometry, supervision timing, and
    shutdown behaviour.
    """

    #: OS-process model workers (each hosts every routed model).
    workers: int = 2
    #: Slots per shared-memory ring (request and response each).
    ring_slots: int = 8
    #: Payload bytes per ring slot; ``None`` sizes automatically from
    #: the routed models' declared input shapes and batch bounds.
    slot_bytes: Optional[int] = None
    #: A worker whose heartbeat is older than this is declared hung and
    #: restarted (its in-flight batches are re-dispatched).
    heartbeat_timeout_s: float = 10.0
    #: Supervisor poll interval.
    supervise_interval_s: float = 0.1
    #: Dispatcher/collector idle poll interval.
    poll_interval_s: float = 0.001
    #: Adaptive-wait controller tick interval (when any tenant opts in).
    policy_interval_s: float = 0.05
    #: In-flight batch bound per worker; ``None`` defaults to
    #: ``ring_slots``.  The dispatcher stops pulling new batches once
    #: every live worker is at the bound, so overload backs up in the
    #: tenant queues where tiered admission can see (and shed) it
    #: instead of draining invisibly into the pickle-fallback pipe.
    max_inflight_per_worker: Optional[int] = None
    #: Graceful-stop budget: drain queued + in-flight work this long
    #: before failing what remains.
    drain_timeout_s: float = 30.0
    #: Times one batch may be re-dispatched after worker crashes before
    #: its requests fail (guards against a poison batch crash-looping
    #: the fleet).
    max_redispatch: int = 2
    #: Server-side cap for one HTTP /predict wait (504 past this).
    request_timeout_s: float = 30.0
    #: multiprocessing start method; ``None`` picks ``fork`` where
    #: available (model weights inherited copy-on-write) else ``spawn``
    #: (model specs re-built in the child from picklable builders).
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.ring_slots < 1:
            raise ValueError(
                f"ring_slots must be >= 1, got {self.ring_slots}")
        if self.slot_bytes is not None and self.slot_bytes < 1:
            raise ValueError(
                f"slot_bytes must be >= 1, got {self.slot_bytes}")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive, got "
                             f"{self.heartbeat_timeout_s}")
        if (self.max_inflight_per_worker is not None
                and self.max_inflight_per_worker < 1):
            raise ValueError("max_inflight_per_worker must be >= 1, got "
                             f"{self.max_inflight_per_worker}")
        if self.max_redispatch < 0:
            raise ValueError(
                f"max_redispatch must be >= 0, got {self.max_redispatch}")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive, got "
                             f"{self.request_timeout_s}")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                f"unknown start_method {self.start_method!r}")

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)
