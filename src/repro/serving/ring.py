"""Shared-memory slot rings: the cluster's zero-copy batch transport.

The cluster (:mod:`repro.serving.cluster`) moves numpy batches between
the frontend process and OS-process model workers.  Pickling every batch
over a pipe would copy each array at least twice (serialize +
deserialize); instead each worker gets a pair of :class:`SlotRing`
buffers backed by :class:`multiprocessing.shared_memory.SharedMemory`:

* the *request* ring (frontend produces, worker consumes) carries the
  stacked float32 input batch,
* the *response* ring (worker produces, frontend consumes) carries the
  packed decision arrays (labels, flags, scores, stage timings).

Both sides address the payload as a numpy view directly over the shared
segment — the only copies are the two unavoidable ones into and out of
the ring slots.

Concurrency model — Lamport-style SPSC
--------------------------------------
Each ring has exactly **one producer thread and one consumer thread**
(enforced by convention in the cluster: a single dispatcher owns every
request ring's producer side, each worker owns its consumer side, and
vice versa for responses).  There are no shared head/tail counters:
every slot carries a one-byte state (``EMPTY``/``READY``) and each side
keeps a private cursor.  The producer fills the slot body *first* and
flips the state byte *last*; the consumer reads the state byte first.
On CPython both accesses are single aligned byte loads/stores through a
``memoryview``, so the state flip publishes the slot without locks.

A slot holds one message: a 32-byte header (state, kind, meta length,
payload length, batch id) followed by ``slot_bytes`` of body.  Batches
whose payload does not fit the fixed slot size — odd shapes, oversized
metadata — fall back to the worker's pickle pipe
(:class:`PickleTransport`), so the ring never needs resizing.

Rings pickle by *name* (:meth:`SlotRing.__reduce__`): sending one to a
``spawn``-started worker re-attaches to the same segment instead of
copying it.  Only the creating side unlinks the segment.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Slot states (one aligned byte per slot — the SPSC publication flag).
EMPTY = 0
READY = 1

#: Message kinds.
KIND_RAW = 0      #: payload is raw array bytes; meta describes the layout
KIND_PICKLE = 1   #: payload is a pickle (fallback transport)
KIND_ERROR = 2    #: meta is a UTF-8 error string; no payload

#: Per-slot header: state u8, kind u8, pad, meta_len u32, payload_len u32,
#: batch_id u64, pad to 32 bytes.
_SLOT_HEADER = struct.Struct("<BB2xIIQ12x")
SLOT_HEADER_BYTES = _SLOT_HEADER.size  # 32
#: Ring-level header (closed flag at byte 0), padded for slot alignment.
_RING_HEADER_BYTES = 64


class RingError(RuntimeError):
    """Base class for ring transport failures."""


class RingFullError(RingError):
    """The producer found no EMPTY slot (consumer is behind)."""


class RingSlotTooSmall(RingError):
    """The message cannot fit one slot; use the pickle fallback."""


class RingMessage:
    """One popped message; a view into the ring until :meth:`release`.

    ``meta`` is copied out (it is small); the payload stays a zero-copy
    ``memoryview`` of the shared slot.  The consumer **must** call
    :meth:`release` after it is done with every array derived from
    :meth:`array` — releasing flips the slot back to EMPTY for the
    producer and drops the buffer export so the segment can close.
    """

    __slots__ = ("kind", "batch_id", "meta", "_view", "_ring", "_slot")

    def __init__(self, kind: int, batch_id: int, meta: bytes,
                 view: Optional[memoryview], ring: Optional["SlotRing"],
                 slot: int):
        self.kind = kind
        self.batch_id = batch_id
        self.meta = meta
        self._view = view
        self._ring = ring
        self._slot = slot

    def array(self, shape: Tuple[int, ...], dtype: Any,
              offset: int = 0) -> np.ndarray:
        """Zero-copy numpy view over ``[offset:]`` of the payload."""
        if self._view is None:
            raise RingError("message already released")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return np.frombuffer(self._view, dtype=dtype, count=count,
                             offset=offset).reshape(shape)

    def payload_bytes(self) -> bytes:
        """Copy the payload out (for pickle-kind messages)."""
        if self._view is None:
            raise RingError("message already released")
        return bytes(self._view)

    def release(self) -> None:
        """Drop the payload view and hand the slot back to the producer."""
        if self._view is not None:
            try:
                self._view.release()
            except BufferError:
                # A derived numpy view is still alive somewhere; drop our
                # reference and let refcounting release it.  The slot is
                # handed back regardless — by contract the consumer is
                # done *reading* once it calls release().
                pass
            self._view = None
        if self._ring is not None:
            self._ring._free_slot(self._slot)
            self._ring = None


class SlotRing:
    """Fixed-geometry SPSC ring over one shared-memory segment."""

    def __init__(self, slots: int, slot_bytes: int, *,
                 name: Optional[str] = None, _attach: bool = False):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._stride = SLOT_HEADER_BYTES + self.slot_bytes
        size = _RING_HEADER_BYTES + self.slots * self._stride
        if _attach:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            _untrack(self._shm)
        else:
            self._shm = shared_memory.SharedMemory(
                create=True, size=size, name=name)
            self._owner = True
            _OWNED_NAMES.add(self._shm.name)
            # Zero the header region + every slot state byte so a fresh
            # ring reads all-EMPTY regardless of platform zeroing.
            self._shm.buf[:_RING_HEADER_BYTES] = b"\x00" * _RING_HEADER_BYTES
            for i in range(self.slots):
                self._shm.buf[self._slot_off(i)] = EMPTY
        self.name = self._shm.name
        self._head = 0   # producer cursor (private to the producer thread)
        self._tail = 0   # consumer cursor (private to the consumer thread)
        self._closed_locally = False

    # -- geometry ------------------------------------------------------
    def _slot_off(self, slot: int) -> int:
        return _RING_HEADER_BYTES + slot * self._stride

    # -- pickling: re-attach by name in the child ----------------------
    def __reduce__(self):
        return (_reattach_ring, (self.name, self.slots, self.slot_bytes))

    # -- producer side -------------------------------------------------
    def try_push(self, kind: int, batch_id: int, meta: bytes = b"",
                 payload: Union[None, bytes, np.ndarray,
                                Sequence[np.ndarray]] = None) -> bool:
        """Publish one message; False when the ring is full.

        ``payload`` may be raw bytes, one array, or a sequence of arrays
        written back-to-back into the slot (so the producer never
        assembles an intermediate buffer).  Raises
        :class:`RingSlotTooSmall` when meta+payload exceed the slot.
        """
        parts = _payload_parts(payload)
        payload_len = sum(p.nbytes if isinstance(p, np.ndarray) else len(p)
                          for p in parts)
        if len(meta) + payload_len > self.slot_bytes:
            raise RingSlotTooSmall(
                f"message needs {len(meta) + payload_len} B > slot_bytes="
                f"{self.slot_bytes}")
        slot = self._head % self.slots
        off = self._slot_off(slot)
        buf = self._shm.buf
        if buf[off] != EMPTY:
            return False
        body = off + SLOT_HEADER_BYTES
        if meta:
            buf[body:body + len(meta)] = meta
        pos = body + len(meta)
        for part in parts:
            if isinstance(part, np.ndarray):
                flat = np.ascontiguousarray(part)
                n = flat.nbytes
                dst = np.frombuffer(buf, dtype=np.uint8, count=n, offset=pos)
                dst[:] = flat.view(np.uint8).reshape(-1)
                del dst, flat
            else:
                n = len(part)
                buf[pos:pos + n] = part
            pos += n
        # Publish protocol: header fields land while the state byte still
        # reads EMPTY, then a single aligned byte store flips the slot to
        # READY — the consumer polls that byte first, so it can never see
        # READY paired with a stale header or body.
        _SLOT_HEADER.pack_into(buf, off, EMPTY, kind, len(meta),
                               payload_len, batch_id)
        buf[off] = READY
        self._head += 1
        return True

    # -- consumer side -------------------------------------------------
    def try_pop(self) -> Optional[RingMessage]:
        """Return the next READY message, or None when the ring is empty.

        The returned message pins its slot until ``release()``.
        """
        slot = self._tail % self.slots
        off = self._slot_off(slot)
        buf = self._shm.buf
        if buf[off] != READY:
            return None
        state, kind, meta_len, payload_len, batch_id = _SLOT_HEADER.unpack_from(
            buf, off)
        body = off + SLOT_HEADER_BYTES
        meta = bytes(buf[body:body + meta_len])
        view = buf[body + meta_len:body + meta_len + payload_len]
        self._tail += 1
        return RingMessage(kind, batch_id, meta, view, self, slot)

    def _free_slot(self, slot: int) -> None:
        self._shm.buf[self._slot_off(slot)] = EMPTY

    # -- close flag (belt-and-braces shutdown signal) ------------------
    def mark_closed(self) -> None:
        self._shm.buf[0] = 1

    @property
    def peer_closed(self) -> bool:
        return self._shm.buf[0] == 1

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach this side's mapping; unlink if this side created it."""
        if self._closed_locally:
            return
        self._closed_locally = True
        try:
            self._shm.close()
        except BufferError:
            # A numpy view somewhere still exports the buffer; the
            # mapping is freed at process exit and unlink() below still
            # removes the segment name.
            log.debug("ring %s: close deferred (exported buffer)", self.name)
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _OWNED_NAMES.discard(self.name)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _reattach_ring(name: str, slots: int, slot_bytes: int) -> SlotRing:
    return SlotRing(slots, slot_bytes, name=name, _attach=True)


def _payload_parts(payload) -> Tuple[Any, ...]:
    if payload is None:
        return ()
    if isinstance(payload, (bytes, bytearray, memoryview, np.ndarray)):
        return (payload,)
    return tuple(payload)


#: Segment names created (and therefore unlinked) by this process.  An
#: attach to one of these — pickling a ring back into its creator, as
#: the unit tests do — must NOT unregister it: the tracker entry and the
#: creator's registration are the same record.
_OWNED_NAMES: set = set()


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a re-attached segment from this process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's ``resource_tracker``, which unlinks it when *that* process
    exits — yanking the segment out from under the creator (the known
    spawn-mode footgun, fixed by ``track=False`` only in newer CPython).
    Attach-side rings therefore unregister themselves; the creating
    process keeps sole unlink responsibility.
    """
    if shm.name in _OWNED_NAMES:
        return
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - best effort, fork mode no-op
        pass


class HeartbeatBoard:
    """A float64-per-worker liveness board in shared memory.

    Workers stamp ``time.time()`` into their slot every loop iteration;
    the supervisor reads ages without any IPC round-trip.  Pickles by
    name like :class:`SlotRing`.
    """

    def __init__(self, workers: int, *, name: Optional[str] = None,
                 _attach: bool = False):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if _attach:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            _untrack(self._shm)
        else:
            self._shm = shared_memory.SharedMemory(
                create=True, size=8 * self.workers, name=name)
            self._owner = True
            _OWNED_NAMES.add(self._shm.name)
        self.name = self._shm.name
        self._arr = np.frombuffer(self._shm.buf, dtype=np.float64,
                                  count=self.workers)
        if self._owner:
            self._arr[:] = 0.0

    def __reduce__(self):
        return (_reattach_board, (self.name, self.workers))

    def beat(self, index: int, now: Optional[float] = None) -> None:
        self._arr[index] = time.time() if now is None else now

    def last(self, index: int) -> float:
        return float(self._arr[index])

    def age_s(self, index: int, now: Optional[float] = None) -> float:
        """Seconds since the worker's last beat (inf before first beat)."""
        last = self.last(index)
        if last <= 0.0:
            return float("inf")
        return (time.time() if now is None else now) - last

    def clear(self, index: int) -> None:
        self._arr[index] = 0.0

    def close(self) -> None:
        arr, self._arr = self._arr, None
        del arr
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported view lingers
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _OWNED_NAMES.discard(self.name)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _reattach_board(name: str, workers: int) -> HeartbeatBoard:
    return HeartbeatBoard(workers, name=name, _attach=True)
