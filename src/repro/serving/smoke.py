"""End-to-end smoke test for the serving stack (CI entry point).

Boots the real HTTP frontend on an ephemeral port around a deliberately
tiny MagNet (untrained dense models on flat 64-d inputs — the point is
the serving machinery, not defense quality), fires concurrent
``/predict`` requests from client threads, and asserts:

* every request gets a well-formed verdict (label, detected flag,
  per-detector scores),
* ``/healthz`` answers ``ok`` while up,
* ``/stats`` accounts for every completed request and shows batching.

Runs in a couple of seconds with no cache or training, so it is safe to
wire into CI.  Invoke as ``python scripts/smoke_serving.py`` or via the
``repro-smoke-serving`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request
from typing import Any, Dict, List

import numpy as np

from repro.defenses.detectors import JSDDetector, ReconstructionDetector
from repro.defenses.magnet import MagNet
from repro.defenses.reformer import Reformer
from repro.models.zoo import register_model_builder
from repro.nn.layers import Dense, Sequential, Sigmoid
from repro.serving.config import ClusterConfig, ServingConfig
from repro.serving.http import serve_in_thread
from repro.serving.service import InferenceService

#: Flat input dimensionality of the toy models.
DIM = 64


def build_toy_magnet(seed: int = 0, n_val: int = 128) -> MagNet:
    """A tiny calibrated MagNet over flat 64-d inputs; no training.

    Deterministic in ``seed``, so every worker process reconstructs a
    bitwise-identical model — the property the cluster equivalence
    checks rely on.
    """
    rng = np.random.default_rng(seed)
    classifier = Sequential(Dense(DIM, 32, rng=rng), Sigmoid(),
                            Dense(32, 10, rng=rng))
    autoencoder = Sequential(Dense(DIM, DIM, rng=rng), Sigmoid())
    detectors = [ReconstructionDetector(autoencoder, norm=1),
                 JSDDetector(autoencoder, classifier, temperature=10.0)]
    magnet = MagNet(classifier, detectors, Reformer(autoencoder),
                    name="toy-serving")
    x_val = rng.random((n_val, DIM)).astype(np.float32)
    magnet.calibrate(x_val, fpr_total=0.02)
    return magnet


register_model_builder("toy", build_toy_magnet)


def build_toy_zoo(n_models: int = 2, seed: int = 0, *,
                  max_batch: int = 8, max_wait_ms: float = 2.0,
                  max_queue: int = 128, adaptive_wait: bool = False):
    """Model specs for a tiny multi-tenant cluster (ids toy-0, toy-1, ...)."""
    from repro.serving.router import ModelSpec
    return [
        ModelSpec(model_id=f"toy-{i}", builder="toy",
                  builder_kwargs={"seed": seed + i},
                  input_shape=(DIM,),
                  config=ServingConfig(max_batch=max_batch,
                                       max_wait_ms=max_wait_ms,
                                       max_queue=max_queue,
                                       adaptive_wait=adaptive_wait))
        for i in range(n_models)]


def _http_json(url: str, payload: Dict[str, Any] = None,
               timeout: float = 30.0) -> Dict[str, Any]:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=16,
                        help="total /predict requests to fire (default 16)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cluster", action="store_true",
                        help="smoke the multi-process cluster (2 workers, "
                             "2 routed toy models) instead of the "
                             "in-process service")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes (with --cluster)")
    args = parser.parse_args(argv)

    if args.cluster:
        return _cluster_smoke(args)

    magnet = build_toy_magnet(seed=args.seed)
    config = ServingConfig(max_batch=8, max_wait_ms=2.0, max_queue=128)
    rng = np.random.default_rng(args.seed + 1)
    inputs = rng.random((args.requests, DIM)).astype(np.float32)

    failures: List[str] = []
    with InferenceService(magnet, config) as service:
        server, thread = serve_in_thread(service, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"[smoke_serving] serving on {base}", flush=True)
        try:
            health = _http_json(f"{base}/healthz")
            if health.get("status") != "ok":
                failures.append(f"/healthz answered {health}")

            lock = threading.Lock()
            verdicts: List[Dict[str, Any]] = []

            def client(worker: int) -> None:
                for k in range(worker, args.requests, args.concurrency):
                    try:
                        verdict = _http_json(
                            f"{base}/predict",
                            {"x": inputs[k].tolist(), "id": f"smoke-{k}"})
                        with lock:
                            verdicts.append(verdict)
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        with lock:
                            failures.append(f"request {k}: {exc!r}")

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(args.concurrency)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            for verdict in verdicts:
                for field in ("request_id", "label", "detected",
                              "detector_scores", "queue_ms", "batch_size"):
                    if field not in verdict:
                        failures.append(f"verdict missing {field!r}: {verdict}")
                        break
            if len(verdicts) != args.requests:
                failures.append(f"expected {args.requests} verdicts, "
                                f"got {len(verdicts)}")

            stats = _http_json(f"{base}/stats")
            completed = stats.get("requests", {}).get("completed", 0)
            if completed < args.requests:
                failures.append(f"/stats shows {completed} completed "
                                f"< {args.requests}")
            if stats.get("batches", {}).get("count", 0) < 1:
                failures.append("/stats shows no batches")
            print(f"[smoke_serving] {completed} served in "
                  f"{stats['batches']['count']} batches "
                  f"(mean size {stats['batches']['mean_size']}, "
                  f"p95 total {stats['latency_ms']['total']['p95']} ms)",
                  flush=True)
        finally:
            server.shutdown()
            server.server_close()

    if failures:
        for failure in failures:
            print(f"[smoke_serving] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[smoke_serving] OK", flush=True)
    return 0


def _cluster_smoke(args) -> int:
    """HTTP smoke against a 2-worker, multi-model cluster."""
    from repro.serving.cluster import ClusterService

    specs = build_toy_zoo(n_models=2, seed=args.seed)
    model_ids = [spec.model_id for spec in specs]
    rng = np.random.default_rng(args.seed + 1)
    inputs = rng.random((args.requests, DIM)).astype(np.float32)
    failures: List[str] = []
    with ClusterService(specs,
                        ClusterConfig(workers=args.workers)) as cluster:
        if not cluster.wait_ready(timeout=60.0):
            print("[smoke_serving] FAIL: workers never became ready",
                  file=sys.stderr)
            return 1
        server, _ = serve_in_thread(cluster, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"[smoke_serving] cluster serving on {base} "
              f"({args.workers} workers, models {model_ids})", flush=True)
        try:
            listed = _http_json(f"{base}/models")
            if sorted(listed.get("models", [])) != sorted(model_ids):
                failures.append(f"/models answered {listed}")
            for k in range(args.requests):
                verdict = _http_json(
                    f"{base}/predict",
                    {"x": inputs[k].tolist(), "id": f"smoke-{k}",
                     "model": model_ids[k % len(model_ids)],
                     "priority": "interactive"})
                for field in ("request_id", "label", "detected",
                              "detector_scores", "queue_ms", "batch_size"):
                    if field not in verdict:
                        failures.append(
                            f"verdict missing {field!r}: {verdict}")
                        break
            stats = _http_json(f"{base}/stats")
            completed = stats.get("requests", {}).get("completed", 0)
            if completed < args.requests:
                failures.append(f"/stats shows {completed} completed "
                                f"< {args.requests}")
            print(f"[smoke_serving] {completed} served across "
                  f"{len(stats.get('models', {}))} models "
                  f"({stats['cluster']['alive']} workers alive)", flush=True)
        finally:
            server.shutdown()
            server.server_close()
    if failures:
        for failure in failures:
            print(f"[smoke_serving] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[smoke_serving] OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
