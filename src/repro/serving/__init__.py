"""Online inference serving for the defended MagNet pipeline.

The offline experiments evaluate MagNet on pre-assembled batches; a
deployment sees one request at a time.  This package bridges the gap
with *dynamic micro-batching*: concurrent single-example requests are
coalesced into batches (flush on ``max_batch`` or ``max_wait_ms``,
whichever first) and served through one batched
:meth:`~repro.defenses.magnet.MagNet.decide_batch` pass, with bounded
queueing and explicit load shedding instead of unbounded latency.

* :class:`MicroBatcher` — the request queue + flush scheduler.
* :class:`InferenceService` — in-process worker pool + verdicts.
* :class:`ClusterService` — multi-process, multi-tenant serving over
  shared-memory rings (:mod:`repro.serving.cluster`), with
  :class:`ModelRouter` routing (``model=`` field), tiered load-shedding
  and AIMD adaptive batching (:mod:`repro.serving.policy`).
* :class:`Client` — in-process frontend for tests and benchmarks.
* :func:`build_http_server` / :func:`serve_in_thread` — stdlib JSON
  HTTP frontend (``/predict``, ``/healthz``, ``/models``, ``/stats``).
* ``python -m repro.experiments serve`` — CLI entry point
  (``--models`` routes several variants; ``--workers`` scales
  processes; ``--adaptive-wait`` turns on the AIMD policy).
"""

from repro.serving.batcher import (
    MicroBatcher,
    QueueFullError,
    Request,
    ServingClosedError,
)
from repro.serving.client import Client
from repro.serving.cluster import ClusterService
from repro.serving.config import ClusterConfig, ServingConfig
from repro.serving.http import (
    ServingHTTPServer,
    build_http_server,
    serve_in_thread,
)
from repro.serving.policy import (
    PRIORITY_TIERS,
    AdaptiveWaitController,
    ShedError,
    TieredAdmission,
)
from repro.serving.ring import HeartbeatBoard, SlotRing
from repro.serving.router import ModelRouter, ModelSpec, UnknownModelError
from repro.serving.service import InferenceService, ServiceStats, Verdict

__all__ = [
    "AdaptiveWaitController",
    "Client",
    "ClusterConfig",
    "ClusterService",
    "HeartbeatBoard",
    "InferenceService",
    "MicroBatcher",
    "ModelRouter",
    "ModelSpec",
    "PRIORITY_TIERS",
    "QueueFullError",
    "Request",
    "ServiceStats",
    "ServingClosedError",
    "ServingConfig",
    "ServingHTTPServer",
    "ShedError",
    "SlotRing",
    "TieredAdmission",
    "UnknownModelError",
    "Verdict",
    "build_http_server",
    "serve_in_thread",
]
