"""Online inference serving for the defended MagNet pipeline.

The offline experiments evaluate MagNet on pre-assembled batches; a
deployment sees one request at a time.  This package bridges the gap
with *dynamic micro-batching*: concurrent single-example requests are
coalesced into batches (flush on ``max_batch`` or ``max_wait_ms``,
whichever first) and served through one batched
:meth:`~repro.defenses.magnet.MagNet.decide_batch` pass, with bounded
queueing and explicit load shedding instead of unbounded latency.

* :class:`MicroBatcher` — the request queue + flush scheduler.
* :class:`InferenceService` — worker pool + per-request verdicts.
* :class:`Client` — in-process frontend for tests and benchmarks.
* :func:`build_http_server` / :func:`serve_in_thread` — stdlib JSON
  HTTP frontend (``/predict``, ``/healthz``, ``/stats``).
* ``python -m repro.experiments serve`` — CLI entry point.
"""

from repro.serving.batcher import (
    MicroBatcher,
    QueueFullError,
    Request,
    ServingClosedError,
)
from repro.serving.client import Client
from repro.serving.config import ServingConfig
from repro.serving.http import (
    ServingHTTPServer,
    build_http_server,
    serve_in_thread,
)
from repro.serving.service import InferenceService, ServiceStats, Verdict

__all__ = [
    "Client",
    "InferenceService",
    "MicroBatcher",
    "QueueFullError",
    "Request",
    "ServiceStats",
    "ServingClosedError",
    "ServingConfig",
    "ServingHTTPServer",
    "Verdict",
    "build_http_server",
    "serve_in_thread",
]
