"""Multi-process serving cluster: process workers over shared-memory rings.

:class:`ClusterService` scales :class:`~repro.serving.service.InferenceService`
past the GIL: model inference runs in OS-process workers
(:func:`_worker_main`), each hosting every routed MagNet variant, fed
over per-worker :class:`~repro.serving.ring.SlotRing` pairs (zero-copy
numpy in/out; a pickle pipe as fallback transport for messages that do
not fit a ring slot).  The frontend process keeps four small threads:

* **dispatcher** — the *only* producer on every request ring.  Polls
  each tenant's :class:`~repro.serving.batcher.MicroBatcher`, stacks
  due batches, and pushes them to the least-loaded live worker.
* **collector** — the *only* consumer on every response ring (and the
  pipe receive side).  Unpacks decision arrays and resolves futures
  with :class:`~repro.serving.service.Verdict` objects identical to the
  single-process service's.
* **supervisor** — watches process liveness + the shared-memory
  heartbeat board; a dead or hung worker is killed, respawned with
  fresh rings, and its in-flight batches are re-dispatched (bounded by
  ``max_redispatch``) so accepted requests survive worker crashes.
* **policy** (optional) — ticks each tenant's
  :class:`~repro.serving.policy.AdaptiveWaitController`.

Admission is tiered per tenant
(:class:`~repro.serving.policy.TieredAdmission`): background traffic
sheds first under overload, interactive last.  ``stop()`` is
drain-then-stop: admissions close, queued and in-flight work completes
(within ``drain_timeout_s``), then workers exit cleanly.

Determinism: a worker runs the *same* ``MagNet.decide_batch`` on the
*same* stacked float32 batch as the offline path, so cluster verdicts
are bitwise-identical to offline evaluation for identical batch
composition — asserted by the test suite and ``bench_serving.py``.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import counter, record_span, start_span
from repro.serving.batcher import QueueFullError, Request, ServingClosedError
from repro.serving.config import ClusterConfig, ServingConfig
from repro.serving.policy import ShedError, normalize_tier
from repro.serving.ring import (
    KIND_ERROR,
    KIND_RAW,
    HeartbeatBoard,
    RingSlotTooSmall,
    SlotRing,
)
from repro.serving.router import ModelRouter, ModelSpec, UnknownModelError
from repro.serving.service import Verdict
from repro.utils.logging import get_logger

__all__ = ["ClusterService", "ModelSpec", "UnknownModelError"]

log = get_logger(__name__)

#: Consecutive boot failures (death before "ready") after which a worker
#: slot stops being respawned — a broken model builder must not
#: crash-loop the fleet.
_MAX_BOOT_FAILURES = 3


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, specs: Sequence[ModelSpec],
                 req_ring: SlotRing, resp_ring: SlotRing, conn,
                 board: HeartbeatBoard, hb_index: int,
                 poll_s: float) -> None:
    """Worker entry point: build every routed model, then serve batches.

    Runs in a child process.  Single-threaded: pops the request ring,
    runs ``decide_batch``, pushes the packed decision onto the response
    ring (pipe fallback when it does not fit), stamping the heartbeat
    board every iteration.
    """
    # Under fork the rings arrive as inherited parent objects still
    # flagged as segment owners; only the frontend may unlink.
    req_ring._owner = False
    resp_ring._owner = False
    board._owner = False
    try:
        models = {spec.model_id: spec.build() for spec in specs}
    except Exception as exc:  # noqa: BLE001 - report, then exit
        try:
            conn.send(("fatal", worker_id,
                       f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        return
    try:
        conn.send(("ready", worker_id, os.getpid()))
    except Exception:
        return
    while True:
        board.beat(hb_index)
        msg = req_ring.try_pop()
        if msg is not None:
            model_id, shape = pickle.loads(msg.meta)
            x = msg.array(shape, np.float32)
            _serve_batch(models, resp_ring, conn, msg.batch_id, model_id, x)
            del x
            msg.release()
            continue
        try:
            if conn.poll(0):
                obj = conn.recv()
                kind = obj[0]
                if kind == "stop":
                    break
                if kind == "batch":
                    _, batch_id, model_id, x = obj
                    _serve_batch(models, resp_ring, conn, batch_id,
                                 model_id, x)
                continue
        except (EOFError, OSError):
            break                    # frontend went away
        time.sleep(poll_s)
    try:
        conn.send(("stopped", worker_id))
    except Exception:
        pass


def _serve_batch(models: Dict[str, Any], resp_ring: SlotRing, conn,
                 batch_id: int, model_id: str, x: np.ndarray) -> None:
    t0 = time.perf_counter()
    try:
        model = models[model_id]
        decision = model.decide_batch(x)
    except Exception as exc:  # noqa: BLE001 - fail the batch, not the worker
        err = {"model": model_id, "error": f"{type(exc).__name__}: {exc}"}
        if not resp_ring.try_push(KIND_ERROR, batch_id, pickle.dumps(err)):
            _pipe_send(conn, ("resp", batch_id, err, None))
        return
    stage = decision.stage_s or {}
    info = {
        "model": model_id,
        "n": int(x.shape[0]),
        "names": tuple(d.name for d in model.detectors),
        "stage": (float(stage.get("detect", 0.0)),
                  float(stage.get("reform", 0.0)),
                  float(stage.get("classify", 0.0))),
        "infer_s": time.perf_counter() - t0,
    }
    arrays = _pack_decision(decision)
    try:
        pushed = resp_ring.try_push(KIND_RAW, batch_id,
                                    pickle.dumps(info), arrays)
    except RingSlotTooSmall:
        pushed = False
    if not pushed:
        _pipe_send(conn, ("resp", batch_id, info,
                          tuple(np.asarray(a) for a in arrays)))


def _pipe_send(conn, obj) -> None:
    try:
        conn.send(obj)
    except Exception:  # pragma: no cover - frontend gone; nothing to do
        pass


#: Fixed wire order of the packed decision arrays (see _unpack offsets).
def _pack_decision(decision) -> Tuple[np.ndarray, ...]:
    return (np.ascontiguousarray(decision.labels_reformed, dtype=np.int64),
            np.ascontiguousarray(decision.labels_raw, dtype=np.int64),
            np.ascontiguousarray(decision.detected, dtype=np.uint8),
            np.ascontiguousarray(decision.detector_flags, dtype=np.uint8),
            np.ascontiguousarray(decision.detector_scores, dtype=np.float32))


def _unpack_decision(msg, n: int, d: int) -> Tuple[np.ndarray, ...]:
    """Zero-copy views over a ring response (release msg after use)."""
    labels_reformed = msg.array((n,), np.int64, offset=0)
    labels_raw = msg.array((n,), np.int64, offset=8 * n)
    detected = msg.array((n,), np.uint8, offset=16 * n)
    flags = msg.array((d, n), np.uint8, offset=17 * n)
    scores = msg.array((d, n), np.float32, offset=17 * n + d * n)
    return labels_reformed, labels_raw, detected, flags, scores


# ----------------------------------------------------------------------
# Frontend bookkeeping
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _InFlight:
    """One dispatched batch awaiting its response."""

    batch_id: int
    tenant: Any                        # TenantState
    requests: List[Request]
    x: np.ndarray                      # kept so a crash can re-dispatch
    dispatched_at: float
    worker: int = -1
    attempts: int = 0                  # sends completed so far
    redispatch_queued: bool = False


class _WorkerHandle:
    """Frontend-side view of one worker process + its transport."""

    def __init__(self, index: int, process, req_ring: SlotRing,
                 resp_ring: SlotRing, conn):
        self.index = index
        self.process = process
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: Set[int] = set()     # batch ids awaiting response
        self.retired = False
        self.ready = False

    def close_transport(self) -> None:
        for ring in (self.req_ring, self.resp_ring):
            try:
                ring.close()
            except Exception:  # pragma: no cover - best effort
                pass
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - best effort
            pass


class ClusterService:
    """Multi-tenant, multi-process MagNet serving.

    Usage::

        specs = [ModelSpec("default", build_toy_magnet, {"seed": 0}),
                 ModelSpec("jsd", build_toy_magnet, {"seed": 1})]
        with ClusterService(specs, ClusterConfig(workers=2)) as cluster:
            verdict = cluster.predict(x, model="jsd",
                                      priority="interactive")

    Drop-in for :class:`~repro.serving.service.InferenceService` behind
    the HTTP frontend, plus ``model=`` routing and ``priority=`` tiers.
    """

    supports_routing = True

    def __init__(self, specs: Sequence[ModelSpec],
                 config: Optional[ClusterConfig] = None,
                 default_model: Optional[str] = None):
        self.config = config or ClusterConfig()
        self.router = ModelRouter(specs, default_model=default_model)
        self._specs = list(specs)
        self._mp_ctx = multiprocessing.get_context(
            self.config.start_method
            or ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"))
        self._slot_bytes = (self.config.slot_bytes
                            or self._auto_slot_bytes())
        self._board = HeartbeatBoard(self.config.workers)
        self._workers: List[Optional[_WorkerHandle]] = []
        self._graveyard: List[_WorkerHandle] = []
        self._workers_lock = threading.Lock()
        self._boot_failures = [0] * self.config.workers
        self._inflight: Dict[int, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._redispatch: collections.deque = collections.deque()
        self._threads: List[threading.Thread] = []
        self._dispatch_stop = threading.Event()
        self._collect_stop = threading.Event()
        self._supervise_stop = threading.Event()
        self._policy_stop = threading.Event()
        self._started = False
        self._closing = False
        self._stopped = False
        self._started_at: Optional[float] = None
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._next_batch_id = 0
        self.restarts = 0

    # -- sizing --------------------------------------------------------
    def _auto_slot_bytes(self) -> int:
        """Size ring slots for the largest plausible request/response."""
        worst = 64 * 1024                       # floor: headroom for meta
        for tenant in self.router.tenants():
            shape = tenant.spec.input_shape
            if shape is None:
                continue
            per_example = int(np.prod(shape, dtype=np.int64)) * 4
            batch = tenant.config.max_batch
            # request: float32 batch; response: ~2 detectors of
            # flags+scores plus labels — the request dominates.
            worst = max(worst, per_example * batch + 4096)
        return worst

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ClusterService":
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self._started_at = time.monotonic()
        with self._workers_lock:
            for i in range(self.config.workers):
                self._workers.append(self._spawn_worker(i))
        threads = [
            threading.Thread(target=self._dispatch_loop,
                             name="repro-cluster-dispatch", daemon=True),
            threading.Thread(target=self._collect_loop,
                             name="repro-cluster-collect", daemon=True),
            threading.Thread(target=self._supervise_loop,
                             name="repro-cluster-supervise", daemon=True),
        ]
        if any(t.adaptive is not None for t in self.router.tenants()):
            threads.append(threading.Thread(
                target=self._policy_loop, name="repro-cluster-policy",
                daemon=True))
        for t in threads:
            t.start()
        self._threads = threads
        log.info("cluster started: %d worker(s) x %d model(s), "
                 "ring_slots=%d, slot_bytes=%d, start_method=%s",
                 self.config.workers, len(self.router),
                 self.config.ring_slots, self._slot_bytes,
                 self._mp_ctx.get_start_method())
        return self

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        self._board.clear(index)
        req_ring = SlotRing(self.config.ring_slots, self._slot_bytes)
        resp_ring = SlotRing(self.config.ring_slots, self._slot_bytes)
        parent_conn, child_conn = self._mp_ctx.Pipe()
        process = self._mp_ctx.Process(
            target=_worker_main, name=f"repro-cluster-w{index}",
            args=(index, self._specs, req_ring, resp_ring, child_conn,
                  self._board, index, self.config.poll_interval_s),
            daemon=True)
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, req_ring, resp_ring,
                             parent_conn)

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until every live worker has built its models."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._workers_lock:
                handles = [h for h in self._workers if h is not None]
                if handles and all(h.ready for h in handles):
                    return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "ClusterService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def healthy(self) -> bool:
        if not self._started or self._closing or self._stopped:
            return False
        with self._workers_lock:
            return any(h is not None and not h.retired
                       and h.process.is_alive() for h in self._workers)

    @property
    def uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def request_timeout_s(self) -> float:
        return self.config.request_timeout_s

    def model_ids(self) -> List[str]:
        return self.router.model_ids()

    # -- request path --------------------------------------------------
    def _assign_id(self) -> str:
        with self._id_lock:
            self._next_id += 1
            return f"r{self._next_id}"

    def submit(self, x: np.ndarray, request_id: Optional[str] = None,
               model: Optional[str] = None,
               priority: Optional[str] = None) -> "Future[Verdict]":
        """Queue one example for ``model`` at ``priority``; async verdict.

        Raises :class:`UnknownModelError` for an unrouted model id,
        :class:`~repro.serving.policy.ShedError` when the request's tier
        must shed, :class:`QueueFullError` at the hard queue bound, and
        :class:`ServingClosedError` once stopping.
        """
        if self._closing or self._stopped:
            raise ServingClosedError("cluster is stopping")
        tenant = self.router.resolve(model)
        tier = normalize_tier(priority)
        x = np.asarray(x, dtype=np.float32)
        with self._id_lock:
            if tenant.input_shape is None:
                tenant.input_shape = x.shape
            elif x.shape != tenant.input_shape:
                raise ValueError(
                    f"input shape {x.shape} does not match model "
                    f"{tenant.model_id!r}'s shape {tenant.input_shape} "
                    f"(one example per request)")
        rid = request_id or self._assign_id()
        future: "Future[Verdict]" = Future()
        request = Request(x=x, id=rid, future=future,
                          enqueued_at=time.monotonic(),
                          span=start_span("serve/request", request=rid,
                                          model=tenant.model_id, tier=tier))
        try:
            tenant.admission.admit(tier, len(tenant.batcher))
            tenant.batcher.submit(request)
        except (ShedError, QueueFullError, ServingClosedError) as exc:
            tenant.stats.note_rejected()
            request.span.finish(rejected=type(exc).__name__)
            raise
        return future

    def predict(self, x: np.ndarray, timeout: Optional[float] = None,
                model: Optional[str] = None,
                priority: Optional[str] = None) -> Verdict:
        return self.submit(x, model=model, priority=priority).result(timeout)

    def predict_many(self, xs: Sequence[np.ndarray],
                     timeout: Optional[float] = None,
                     model: Optional[str] = None) -> List[Verdict]:
        futures = [self.submit(x, model=model) for x in xs]
        return [f.result(timeout) for f in futures]

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        poll = self.config.poll_interval_s
        while not self._dispatch_stop.is_set():
            did_work = self._drain_redispatch_queue()
            for tenant in self.router.tenants():
                # Backpressure: once every live worker is at its
                # in-flight bound, leave work in the tenant queues where
                # the depth gauge and tiered admission can see it —
                # dispatching it anyway would drain overload invisibly
                # into the pickle-fallback pipe and nothing would shed.
                if not self._has_dispatch_capacity():
                    break
                batch = tenant.batcher.next_batch(timeout=0)
                if batch:
                    self._dispatch_new_batch(tenant, batch)
                    did_work = True
            if not did_work:
                time.sleep(poll)
        # One final sweep so a redispatch scheduled during the last
        # instants of drain is not stranded.
        self._drain_redispatch_queue()

    def _drain_redispatch_queue(self) -> bool:
        did = False
        # One bounded pass: a batch that gets re-parked (still no live
        # worker) must not spin this loop forever.
        for _ in range(len(self._redispatch)):
            try:
                record = self._redispatch.popleft()
            except IndexError:
                break
            with self._inflight_lock:
                if record.batch_id not in self._inflight:
                    continue                   # response beat the retry
                record.redispatch_queued = False
            if self._send_batch(record):
                did = True
        return did

    def _has_dispatch_capacity(self) -> bool:
        bound = (self.config.max_inflight_per_worker
                 if self.config.max_inflight_per_worker is not None
                 else self.config.ring_slots)
        with self._workers_lock:
            return any(h is not None and not h.retired
                       and len(h.pending) < bound for h in self._workers)

    def _dispatch_new_batch(self, tenant, batch: List[Request]) -> None:
        x = np.stack([r.x for r in batch])
        with self._id_lock:
            self._next_batch_id += 1
            batch_id = self._next_batch_id
        record = _InFlight(batch_id=batch_id, tenant=tenant,
                           requests=batch, x=x,
                           dispatched_at=time.monotonic())
        with self._inflight_lock:
            self._inflight[batch_id] = record
        counter("cluster/dispatched").inc()
        self._send_batch(record)

    def _park(self, record: _InFlight) -> None:
        """Re-queue a batch for a later dispatcher pass (no attempt charged)."""
        with self._inflight_lock:
            if record.batch_id not in self._inflight:
                return
            if record.redispatch_queued:
                return
            record.redispatch_queued = True
        self._redispatch.append(record)

    def _send_batch(self, record: _InFlight) -> bool:
        with self._workers_lock:
            live = [h for h in self._workers
                    if h is not None and not h.retired]
            if not live:
                # Every worker is mid-restart; park the batch for the
                # next dispatcher pass rather than dropping it.
                parked = True
            else:
                parked = False
                handle = min(live, key=lambda h: len(h.pending))
                handle.pending.add(record.batch_id)
                record.worker = handle.index
                record.attempts += 1
        if parked:
            self._park(record)
            return False
        tenant = record.tenant
        meta = pickle.dumps((tenant.model_id, record.x.shape))
        try:
            pushed = handle.req_ring.try_push(KIND_RAW, record.batch_id,
                                              meta, record.x)
        except RingSlotTooSmall:
            pushed = False
        if not pushed:
            counter("cluster/pickle_fallbacks").inc()
            with handle.send_lock:
                _pipe_send(handle.conn, ("batch", record.batch_id,
                                         tenant.model_id, record.x))
        with self._workers_lock:
            if handle.retired and record.batch_id in handle.pending:
                # The supervisor retired this worker between selection
                # and send; its loss snapshot may have missed us.
                handle.pending.discard(record.batch_id)
                self._schedule_redispatch(record.batch_id,
                                          "worker retired mid-send")
        return True

    # -- collector -----------------------------------------------------
    def _collect_loop(self) -> None:
        poll = self.config.poll_interval_s
        while True:
            with self._workers_lock:
                handles = [h for h in self._workers
                           if h is not None and not h.retired]
            did_work = False
            for handle in handles:
                msg = handle.resp_ring.try_pop()
                if msg is not None:
                    self._on_ring_response(handle, msg)
                    did_work = True
                try:
                    while handle.conn.poll(0):
                        self._on_pipe_message(handle, handle.conn.recv())
                        did_work = True
                except (EOFError, OSError):
                    pass               # worker died; supervisor's problem
            if not did_work:
                if self._collect_stop.is_set():
                    with self._inflight_lock:
                        if not self._inflight:
                            return
                time.sleep(poll)

    def _on_ring_response(self, handle: _WorkerHandle, msg) -> None:
        try:
            info = pickle.loads(msg.meta)
            if msg.kind == KIND_ERROR:
                self._fail_batch(handle, msg.batch_id,
                                 info.get("error", "worker error"))
                return
            n, d = info["n"], len(info["names"])
            arrays = _unpack_decision(msg, n, d)
            self._resolve_batch(handle, msg.batch_id, info, arrays)
            del arrays
        finally:
            msg.release()

    def _on_pipe_message(self, handle: _WorkerHandle, obj) -> None:
        kind = obj[0]
        if kind == "ready":
            handle.ready = True
        elif kind == "fatal":
            log.error("worker %d failed to boot: %s", obj[1], obj[2])
        elif kind == "resp":
            _, batch_id, info, arrays = obj
            counter("cluster/pickle_fallbacks").inc()
            if arrays is None or "error" in info:
                self._fail_batch(handle, batch_id,
                                 info.get("error", "worker error"))
            else:
                self._resolve_batch(handle, batch_id, info, arrays)
        elif kind == "stopped":
            pass
        else:  # pragma: no cover - future protocol drift
            log.warning("unknown worker message %r", kind)

    def _take_record(self, handle: Optional[_WorkerHandle],
                     batch_id: int) -> Optional[_InFlight]:
        with self._inflight_lock:
            record = self._inflight.pop(batch_id, None)
        if handle is not None:
            with self._workers_lock:
                handle.pending.discard(batch_id)
        return record

    def _resolve_batch(self, handle: Optional[_WorkerHandle],
                       batch_id: int, info: Dict[str, Any],
                       arrays: Tuple[np.ndarray, ...]) -> None:
        record = self._take_record(handle, batch_id)
        if record is None:
            return                     # duplicate after a re-dispatch race
        labels_reformed, labels_raw, detected, flags, scores = arrays
        names = info["names"]
        n = info["n"]
        infer_ms = info["infer_s"] * 1000.0
        now = time.monotonic()
        tenant = record.tenant
        tenant.stats.note_batch(n)
        counter("serve/batches").inc()
        counter("cluster/responses").inc()
        for stage_name, stage_s in zip(("detect", "reform", "classify"),
                                       info["stage"]):
            record_span(f"serve/{stage_name}", stage_s, batch=n,
                        model=tenant.model_id)
        for i, r in enumerate(record.requests):
            queue_ms = (record.dispatched_at - r.enqueued_at) * 1000.0
            total_ms = (now - r.enqueued_at) * 1000.0
            verdict = Verdict(
                request_id=r.id,
                label=int(labels_reformed[i]),
                detected=bool(detected[i]),
                label_raw=int(labels_raw[i]),
                detector_scores={name: float(scores[d, i])
                                 for d, name in enumerate(names)},
                detector_flags={name: bool(flags[d, i])
                                for d, name in enumerate(names)},
                queue_ms=round(queue_ms, 3),
                infer_ms=round(infer_ms, 3),
                batch_size=n,
            )
            tenant.stats.note_request(queue_ms, total_ms)
            counter("serve/requests").inc()
            if r.span is not None:
                r.span.finish(queue_ms=round(queue_ms, 3), batch=n,
                              detected=verdict.detected,
                              model=tenant.model_id)
            if not r.future.done():
                r.future.set_result(verdict)

    def _fail_batch(self, handle: Optional[_WorkerHandle], batch_id: int,
                    error: str) -> None:
        record = self._take_record(handle, batch_id)
        if record is None:
            return
        record.tenant.stats.note_errors(len(record.requests))
        counter("serve/errors").inc(len(record.requests))
        log.error("batch %d of %d request(s) failed in worker: %s",
                  batch_id, len(record.requests), error)
        exc = RuntimeError(f"model worker failed: {error}")
        for r in record.requests:
            if r.span is not None:
                r.span.finish(error="WorkerError")
            if not r.future.done():
                r.future.set_exception(exc)

    def kill_worker(self, index: int = 0) -> bool:
        """SIGKILL one live worker process (fault-injection hook).

        Used by the crash-recovery tests and the serving benchmark to
        prove accepted requests survive a worker loss; the supervisor
        notices the death and respawns the slot.  Returns True when a
        live worker was killed.
        """
        with self._workers_lock:
            handle = (self._workers[index]
                      if 0 <= index < len(self._workers) else None)
        if handle is None or handle.retired or not handle.process.is_alive():
            return False
        handle.process.kill()
        return True

    # -- supervisor ----------------------------------------------------
    def _supervise_loop(self) -> None:
        interval = self.config.supervise_interval_s
        while not self._supervise_stop.wait(interval):
            with self._workers_lock:
                snapshot = list(enumerate(self._workers))
            for index, handle in snapshot:
                if handle is None or handle.retired:
                    continue
                alive = handle.process.is_alive()
                hung = (handle.ready and self._board.age_s(handle.index)
                        > self.config.heartbeat_timeout_s)
                if alive and not hung:
                    continue
                self._restart_worker(index, handle,
                                     "died" if not alive else "hung")

    def _restart_worker(self, index: int, handle: _WorkerHandle,
                        reason: str) -> None:
        with self._workers_lock:
            handle.retired = True
            lost = set(handle.pending)
        self.restarts += 1
        counter("cluster/worker_restarts").inc()
        log.warning("worker %d %s (%d batch(es) in flight); restarting",
                    index, reason, len(lost))
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(5.0)
        if not handle.ready:
            self._boot_failures[index] += 1
        else:
            self._boot_failures[index] = 0
        # Rings/pipe go to the graveyard, not closed here: the collector
        # may still be mid-poll on them; stop() reclaims everything.
        self._graveyard.append(handle)
        replacement: Optional[_WorkerHandle] = None
        if self._boot_failures[index] >= _MAX_BOOT_FAILURES:
            log.error("worker slot %d failed %d boots; not respawning",
                      index, self._boot_failures[index])
        elif not (self._closing or self._stopped):
            replacement = self._spawn_worker(index)
        with self._workers_lock:
            self._workers[index] = replacement
        for batch_id in lost:
            self._schedule_redispatch(batch_id, f"worker {index} {reason}")

    def _schedule_redispatch(self, batch_id: int, reason: str) -> None:
        """Queue a lost batch for the dispatcher to resend (dedup-safe).

        ``attempts`` counts completed sends, so a batch whose every send
        ended in a worker crash fails once it has burned its initial
        send plus ``max_redispatch`` retries.
        """
        with self._inflight_lock:
            record = self._inflight.get(batch_id)
            if record is None or record.redispatch_queued:
                return
            if record.attempts > self.config.max_redispatch:
                record = self._inflight.pop(batch_id)
            else:
                record.redispatch_queued = True
                self._redispatch.append(record)
                counter("cluster/redispatched").inc()
                log.info("re-dispatching batch %d (attempt %d): %s",
                         batch_id, record.attempts + 1, reason)
                return
        # Redispatch budget exhausted: fail the batch's requests.
        record.tenant.stats.note_errors(len(record.requests))
        counter("serve/errors").inc(len(record.requests))
        exc = RuntimeError(
            f"batch {batch_id} lost after {record.attempts} attempt(s): "
            f"{reason}")
        log.error("%s", exc)
        for r in record.requests:
            if r.span is not None:
                r.span.finish(error="BatchLost")
            if not r.future.done():
                r.future.set_exception(exc)

    # -- adaptive batching policy --------------------------------------
    def _policy_loop(self) -> None:
        tenants = [t for t in self.router.tenants()
                   if t.adaptive is not None]
        while not self._policy_stop.wait(self.config.policy_interval_s):
            for tenant in tenants:
                tenant.adaptive.tick()

    # -- shutdown ------------------------------------------------------
    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> None:
        """Drain-then-stop: close admissions, finish work, end workers."""
        if self._stopped or not self._started:
            self._stopped = True
            if not self._started:
                self._board.close()
            return
        self._closing = True
        self._supervise_stop.set()
        self._policy_stop.set()
        for tenant in self.router.tenants():
            tenant.batcher.close()
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.config.drain_timeout_s)
        if drain:
            while time.monotonic() < deadline:
                queued = sum(len(t.batcher)
                             for t in self.router.tenants())
                with self._inflight_lock:
                    inflight = len(self._inflight)
                if queued == 0 and inflight == 0 and not self._redispatch:
                    break
                time.sleep(0.005)
        self._dispatch_stop.set()
        self._threads[0].join(5.0)     # dispatcher first: no new sends
        self._fail_leftovers()
        with self._workers_lock:
            handles = [h for h in self._workers if h is not None]
        for handle in handles:
            with handle.send_lock:
                _pipe_send(handle.conn, ("stop",))
        for handle in handles:
            handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(2.0)
        self._collect_stop.set()
        self._stopped = True
        for t in self._threads:
            t.join(5.0)
        for handle in handles + self._graveyard:
            handle.close_transport()
        self._board.close()
        log.info("cluster stopped: %d restarts, %d model(s)",
                 self.restarts, len(self.router))

    def _fail_leftovers(self) -> None:
        """Fail queued/in-flight requests that survived the drain window."""
        exc = ServingClosedError("cluster stopped before serving request")
        for tenant in self.router.tenants():
            while True:
                batch = tenant.batcher.next_batch(timeout=0)
                if not batch:
                    break
                tenant.stats.note_errors(len(batch))
                for r in batch:
                    if r.span is not None:
                        r.span.finish(error="ServingClosedError")
                    if not r.future.done():
                        r.future.set_exception(exc)
        with self._inflight_lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for record in leftovers:
            record.tenant.stats.note_errors(len(record.requests))
            for r in record.requests:
                if r.span is not None:
                    r.span.finish(error="ServingClosedError")
                if not r.future.done():
                    r.future.set_exception(exc)

    # -- introspection -------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        """Aggregate + per-model counters — the cluster /stats payload."""
        with self._workers_lock:
            alive = sum(1 for h in self._workers
                        if h is not None and not h.retired
                        and h.process.is_alive())
            ready = sum(1 for h in self._workers
                        if h is not None and not h.retired and h.ready)
        with self._inflight_lock:
            inflight = len(self._inflight)
        models: Dict[str, Any] = {}
        totals = {"completed": 0, "rejected": 0, "errors": 0, "shed": 0}
        for tenant in self.router.tenants():
            snap = tenant.stats.snapshot()
            shed = tenant.admission.snapshot()
            snap["queue_depth"] = len(tenant.batcher)
            snap["shed"] = shed
            snap["wait_ms"] = round(tenant.batcher.max_wait_s * 1000.0, 3)
            snap["config"] = tenant.config.as_dict()
            models[tenant.model_id] = snap
            totals["completed"] += snap["requests"]["completed"]
            totals["rejected"] += snap["requests"]["rejected"]
            totals["errors"] += snap["requests"]["errors"]
            totals["shed"] += sum(shed.values())
        return {
            "requests": totals,
            "models": models,
            "default_model": self.router.default_model,
            "cluster": {
                "workers": self.config.workers,
                "alive": alive,
                "ready": ready,
                "restarts": self.restarts,
                "inflight": inflight,
                "start_method": self._mp_ctx.get_start_method(),
            },
            "queue_depth": sum(len(t.batcher)
                               for t in self.router.tenants()),
            "uptime_s": round(self.uptime_s, 3),
            "healthy": self.healthy(),
            "config": self.config.as_dict(),
        }

    def metrics_gauges(self) -> Dict[str, float]:
        """Extra gauges for /metrics (None-valued percentiles skipped)."""
        snap = self.stats_snapshot()
        extra: Dict[str, float] = {
            "serve/uptime_seconds": snap["uptime_s"],
            "serve/healthy": 1.0 if snap["healthy"] else 0.0,
            "serve/queue_depth_now": snap["queue_depth"],
            "cluster/workers_alive": snap["cluster"]["alive"],
            "cluster/restarts_total": snap["cluster"]["restarts"],
            "cluster/inflight_now": snap["cluster"]["inflight"],
        }
        for model_id, msnap in snap["models"].items():
            extra[f"serve/queue_depth_now_{model_id}"] = msnap["queue_depth"]
            for window, pcts in msnap["latency_ms"].items():
                for pct, value in pcts.items():
                    if value is not None:
                        extra[f"serve/latency_{window}_ms_{pct}"
                              f"_{model_id}"] = value
        return extra
