"""In-process client for the serving layer (tests and benchmarks).

The :class:`Client` talks to an :class:`~repro.serving.service.InferenceService`
directly — same process, no HTTP — which makes it the right frontend for
closed-loop load generation and for tests that assert on exact verdicts.
It intentionally mirrors the HTTP surface: ``predict`` ≙ ``POST
/predict``, ``stats`` ≙ ``GET /stats``, ``healthy`` ≙ ``GET /healthz``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.serving.service import InferenceService, Verdict


class Client:
    """Thin in-process frontend over a running :class:`InferenceService`."""

    def __init__(self, service: InferenceService):
        self.service = service

    def predict(self, x: np.ndarray, timeout: Optional[float] = None
                ) -> Verdict:
        """One example in, one verdict out (blocks until served)."""
        return self.service.predict(x, timeout=timeout)

    def predict_many(self, xs: Sequence[np.ndarray],
                     timeout: Optional[float] = None) -> List[Verdict]:
        """Submit a burst and gather verdicts in submission order."""
        return self.service.predict_many(xs, timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        return self.service.stats_snapshot()

    def healthy(self) -> bool:
        return self.service.healthy()
