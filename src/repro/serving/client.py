"""In-process client for the serving layer (tests and benchmarks).

The :class:`Client` talks to an :class:`~repro.serving.service.InferenceService`
or :class:`~repro.serving.cluster.ClusterService` directly — same
process, no HTTP — which makes it the right frontend for closed-loop
load generation and for tests that assert on exact verdicts.  It
intentionally mirrors the HTTP surface: ``predict`` ≙ ``POST
/predict``, ``stats`` ≙ ``GET /stats``, ``healthy`` ≙ ``GET /healthz``,
``models`` ≙ ``GET /models``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.serving.service import Verdict


class Client:
    """Thin in-process frontend over a running serving backend."""

    def __init__(self, service: Any):
        self.service = service

    def predict(self, x: np.ndarray, timeout: Optional[float] = None,
                model: Optional[str] = None,
                priority: Optional[str] = None) -> Verdict:
        """One example in, one verdict out (blocks until served).

        ``model``/``priority`` route and tier the request on cluster
        backends; on a single-model service they must stay ``None``.
        """
        if model is None and priority is None:
            return self.service.predict(x, timeout=timeout)
        if not getattr(self.service, "supports_routing", False):
            raise ValueError("single-model service: model/priority "
                             "fields not supported")
        return self.service.predict(x, timeout=timeout, model=model,
                                    priority=priority)

    def predict_many(self, xs: Sequence[np.ndarray],
                     timeout: Optional[float] = None) -> List[Verdict]:
        """Submit a burst and gather verdicts in submission order."""
        return self.service.predict_many(xs, timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        return self.service.stats_snapshot()

    def healthy(self) -> bool:
        return self.service.healthy()

    def models(self) -> List[str]:
        """Routed model ids (empty for a single-model service)."""
        if getattr(self.service, "supports_routing", False):
            return self.service.model_ids()
        return []
