"""Serving policies: tiered load-shedding and AIMD adaptive batching.

Two policies sit between admission and the micro-batcher:

* :class:`TieredAdmission` — requests carry a priority tier
  (``interactive`` > ``standard`` > ``background``); each tier admits
  only while the tenant's queue depth is below its own threshold
  (a fraction of ``max_queue``).  Under overload the background tier
  sheds first, then standard, and interactive traffic keeps the full
  queue — graceful degradation instead of FIFO collapse.  Sheds are
  counted per tier in :mod:`repro.obs` (``serve/shed``,
  ``serve/shed_<tier>``) so the benchmark and ``/metrics`` can report
  them.

* :class:`AdaptiveWaitController` — AIMD tuning of the batcher's
  ``max_wait_ms`` from the live per-tenant queue-depth gauge.  A deep
  queue means arrivals outpace flushes: *additive increase* of the wait
  grows batches (more throughput per dispatch).  An idle queue means
  the wait is pure added latency: *multiplicative decrease* snaps back
  toward the latency floor.  The wait is clamped to the tenant's
  configured ``[min_wait_ms, max_wait_ms]`` bounds, and each adjustment
  exports a ``serve/wait_ms_<tenant>`` gauge.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.obs import counter, gauge
from repro.serving.batcher import MicroBatcher

#: Priority tiers, highest first.  The default tier for untagged
#: requests is ``standard``.
PRIORITY_TIERS: Tuple[str, ...] = ("interactive", "standard", "background")
DEFAULT_TIER = "standard"

#: Default admission thresholds as fractions of ``max_queue``, aligned
#: with PRIORITY_TIERS: interactive may fill the whole queue, standard
#: sheds at 70% depth, background at 45%.
DEFAULT_SHED_THRESHOLDS: Tuple[float, ...] = (1.0, 0.7, 0.45)


class ShedError(RuntimeError):
    """Admission shed a request: its tier's queue threshold is exceeded.

    Maps to HTTP 429 like :class:`~repro.serving.batcher.QueueFullError`
    (which remains the hard full-queue bound) but identifies the tier so
    clients and the benchmark can distinguish priority sheds from hard
    rejections.
    """

    def __init__(self, tier: str, depth: int, limit: int,
                 tenant: Optional[str] = None):
        self.tier = tier
        self.depth = depth
        self.limit = limit
        self.tenant = tenant
        where = f" (model={tenant})" if tenant else ""
        super().__init__(
            f"shed {tier} request{where}: queue depth {depth} >= "
            f"tier limit {limit}")


def normalize_tier(priority: Optional[str]) -> str:
    """Map a request's ``priority`` field to a tier; default standard."""
    if priority is None:
        return DEFAULT_TIER
    tier = str(priority).lower()
    if tier not in PRIORITY_TIERS:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of "
            f"{PRIORITY_TIERS}")
    return tier


class TieredAdmission:
    """Per-tier queue-depth thresholds over one tenant's queue."""

    def __init__(self, max_queue: int,
                 thresholds: Sequence[float] = DEFAULT_SHED_THRESHOLDS,
                 tenant: Optional[str] = None):
        if len(thresholds) != len(PRIORITY_TIERS):
            raise ValueError(
                f"need {len(PRIORITY_TIERS)} thresholds (one per tier in "
                f"{PRIORITY_TIERS}), got {len(thresholds)}")
        for frac in thresholds:
            if not 0.0 < frac <= 1.0:
                raise ValueError(
                    f"shed thresholds must be in (0, 1], got {frac}")
        self.tenant = tenant
        #: tier -> admission limit in requests (depth >= limit sheds).
        self.limits: Dict[str, int] = {
            tier: max(1, int(math.ceil(frac * max_queue)))
            for tier, frac in zip(PRIORITY_TIERS, thresholds)}
        self._lock = threading.Lock()
        self.shed_counts: Dict[str, int] = {t: 0 for t in PRIORITY_TIERS}
        self._total_counter = counter("serve/shed")
        self._tier_counters = {t: counter(f"serve/shed_{t}")
                               for t in PRIORITY_TIERS}

    def admit(self, tier: str, depth: int) -> None:
        """Raise :class:`ShedError` when ``tier`` must shed at ``depth``."""
        limit = self.limits[tier]
        if depth >= limit:
            with self._lock:
                self.shed_counts[tier] += 1
            self._total_counter.inc()
            self._tier_counters[tier].inc()
            raise ShedError(tier, depth, limit, tenant=self.tenant)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.shed_counts)


class AdaptiveWaitController:
    """AIMD ``max_wait_ms`` tuning for one tenant's micro-batcher."""

    def __init__(self, batcher: MicroBatcher, *, min_wait_ms: float,
                 max_wait_ms: float, tenant: str = "default",
                 increase_ms: float = 0.5, decrease_factor: float = 0.5,
                 high_depth: Optional[int] = None,
                 low_depth: Optional[int] = None):
        if min_wait_ms < 0 or max_wait_ms < min_wait_ms:
            raise ValueError(
                f"need 0 <= min_wait_ms <= max_wait_ms, got "
                f"[{min_wait_ms}, {max_wait_ms}]")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}")
        self.batcher = batcher
        self.tenant = tenant
        self.min_wait_ms = float(min_wait_ms)
        self.max_wait_ms = float(max_wait_ms)
        self.increase_ms = float(increase_ms)
        self.decrease_factor = float(decrease_factor)
        #: Queue deeper than this: batches are filling before the wait
        #: expires anyway, so trade latency for throughput.
        self.high_depth = (2 * batcher.max_batch if high_depth is None
                           else int(high_depth))
        #: Queue shallower than this: the wait only adds latency.
        self.low_depth = (max(1, batcher.max_batch // 2) if low_depth is None
                          else int(low_depth))
        self.wait_ms = batcher.max_wait_s * 1000.0
        self.adjustments = 0
        self._wait_gauge = gauge(f"serve/wait_ms_{tenant}")
        self._wait_gauge.set(self.wait_ms)

    def tick(self, depth: Optional[int] = None) -> float:
        """One control step; reads the live queue depth by default."""
        if depth is None:
            depth = len(self.batcher)
        prev = self.wait_ms
        if depth >= self.high_depth:
            self.wait_ms = min(self.max_wait_ms,
                               self.wait_ms + self.increase_ms)
        elif depth <= self.low_depth:
            self.wait_ms = max(self.min_wait_ms,
                               self.wait_ms * self.decrease_factor)
        if self.wait_ms != prev:
            self.adjustments += 1
            self.batcher.set_max_wait_ms(self.wait_ms)
            self._wait_gauge.set(self.wait_ms)
        return self.wait_ms
