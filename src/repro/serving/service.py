"""The online inference service: worker pool over batched MagNet passes.

:class:`InferenceService` glues a :class:`~repro.serving.batcher.MicroBatcher`
to a calibrated :class:`~repro.defenses.magnet.MagNet`: worker threads
pull coalesced micro-batches, run one
:meth:`~repro.defenses.magnet.MagNet.decide_batch` pass (detect → reform
→ classify), and resolve each request's future with a per-request
:class:`Verdict` — the reformed label, the detected flag, and every
detector's score.  Because the pipeline is pure numpy that spends its
time in GIL-releasing BLAS calls, threads (not processes) are the right
worker pool: batches share the in-process model weights with zero
serialization cost.

Observability: when :mod:`repro.obs` is configured each request opens a
``serve/request`` span at submit time; the flush that serves it emits a
``serve/batch`` span (nested under the oldest request of the batch)
with ``serve/detect`` / ``serve/reform`` / ``serve/classify`` child
spans, so ``repro-experiments trace`` renders the full request →
micro-batch → pipeline-stage tree.  Counters/gauges/histograms
(``serve/requests``, ``serve/queue_depth``, ``serve/batch_size``, ...)
feed the HTTP frontend's ``/metrics`` endpoint.
:meth:`InferenceService.stats_snapshot` serves the same numbers
in-process (and over HTTP via ``/stats``): counters plus p50/p95/p99
queue/total latency over a bounded window.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.defenses.magnet import MagNet
from repro.obs import counter, event, record_span, span, start_span
from repro.serving.batcher import (
    MicroBatcher,
    QueueFullError,
    Request,
    ServingClosedError,
)
from repro.serving.config import ServingConfig
from repro.utils.logging import get_logger

log = get_logger(__name__)


@dataclasses.dataclass
class Verdict:
    """Per-request outcome of one defended inference."""

    request_id: str
    label: int                    # classifier label after reforming
    detected: bool                # rejected by any detector
    label_raw: int                # classifier label on the raw input
    detector_scores: Dict[str, float]   # per-detector anomaly scores
    detector_flags: Dict[str, bool]     # per-detector decisions
    queue_ms: float               # time spent waiting to be batched
    infer_ms: float               # batched pipeline time for the flush
    batch_size: int               # size of the micro-batch served with

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _percentiles(values: Sequence[float]) -> Dict[str, Optional[float]]:
    # An empty window has no percentiles: report null (None), not a
    # fabricated 0.0 that dashboards would read as "zero latency".
    if not values:
        return {"p50": None, "p95": None, "p99": None}
    arr = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, (50, 95, 99))
    return {"p50": round(float(p50), 3), "p95": round(float(p95), 3),
            "p99": round(float(p99), 3)}


class ServiceStats:
    """Thread-safe serving counters + bounded latency windows."""

    def __init__(self, window: int = 2048):
        self._lock = threading.Lock()
        self._queue_ms: List[float] = []
        self._total_ms: List[float] = []
        self._window = int(window)
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.max_batch_seen = max(self.max_batch_seen, size)

    def note_request(self, queue_ms: float, total_ms: float) -> None:
        with self._lock:
            self.completed += 1
            self._queue_ms.append(queue_ms)
            self._total_ms.append(total_ms)
            if len(self._queue_ms) > self._window:
                del self._queue_ms[:-self._window]
                del self._total_ms[:-self._window]

    def note_errors(self, n: int) -> None:
        with self._lock:
            self.errors += n

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            mean_batch = (self.batched_requests / self.batches
                          if self.batches else 0.0)
            return {
                "requests": {
                    "completed": self.completed,
                    "rejected": self.rejected,
                    "errors": self.errors,
                },
                "batches": {
                    "count": self.batches,
                    "mean_size": round(mean_batch, 3),
                    "max_size": self.max_batch_seen,
                },
                "latency_ms": {
                    "queue": _percentiles(self._queue_ms),
                    "total": _percentiles(self._total_ms),
                },
            }


class InferenceService:
    """Micro-batching MagNet server with bounded admission.

    Usage::

        service = InferenceService(magnet, ServingConfig(max_batch=32))
        with service:                      # starts/stops the worker pool
            verdict = service.predict(x)   # one example in, one Verdict out

    ``submit`` is the async form (returns a ``Future``); ``predict``
    blocks.  Submissions beyond ``config.max_queue`` raise
    :class:`QueueFullError` — explicit load shedding, never unbounded
    queueing.
    """

    #: Poll interval for worker threads re-checking the stop flag.
    _IDLE_POLL_S = 0.05

    #: The single-model service ignores ``model=``/``priority=`` request
    #: fields; :class:`~repro.serving.cluster.ClusterService` sets True.
    supports_routing = False

    def __init__(self, magnet: MagNet, config: Optional[ServingConfig] = None):
        self.magnet = magnet
        self.config = config or ServingConfig()
        self.stats = ServiceStats(window=self.config.latency_window)
        self._batcher = MicroBatcher(max_batch=self.config.max_batch,
                                     max_wait_ms=self.config.max_wait_ms,
                                     max_queue=self.config.max_queue)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._started_at: Optional[float] = None
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._input_shape: Optional[Tuple[int, ...]] = None
        self._policy_stop = threading.Event()
        self.adaptive = None
        if self.config.adaptive_wait:
            from repro.serving.policy import AdaptiveWaitController
            self.adaptive = AdaptiveWaitController(
                self._batcher, min_wait_ms=self.config.min_wait_ms,
                max_wait_ms=self.config.max_wait_ms)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._started_at = time.monotonic()
        for i in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-serve-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        if self.adaptive is not None:
            t = threading.Thread(target=self._policy_loop,
                                 name="repro-serve-policy", daemon=True)
            t.start()
            self._threads.append(t)
        log.info("serving started: %d worker(s), max_batch=%d, "
                 "max_wait_ms=%g, max_queue=%d", self.config.workers,
                 self.config.max_batch, self.config.max_wait_ms,
                 self.config.max_queue)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop admissions, drain queued requests, join the workers."""
        if self._stopped:
            return
        self._stopped = True
        self._policy_stop.set()
        self._batcher.close()
        for t in self._threads:
            t.join(timeout)
        log.info("serving stopped: %d completed, %d rejected, %d errors",
                 self.stats.completed, self.stats.rejected, self.stats.errors)

    def __enter__(self) -> "InferenceService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def healthy(self) -> bool:
        """True while the worker pool is up and accepting requests."""
        return (self._started and not self._stopped
                and not self._batcher.closed
                and any(t.is_alive() for t in self._threads))

    @property
    def uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _assign_id(self) -> str:
        with self._id_lock:
            self._next_id += 1
            return f"r{self._next_id}"

    def _check_shape(self, x: np.ndarray) -> None:
        # The first request pins the service's input shape; later
        # requests must match so the worker can np.stack the batch.
        with self._id_lock:
            if self._input_shape is None:
                self._input_shape = x.shape
            elif x.shape != self._input_shape:
                raise ValueError(
                    f"input shape {x.shape} does not match the service's "
                    f"shape {self._input_shape} (one example per request)")

    def submit(self, x: np.ndarray, request_id: Optional[str] = None
               ) -> "Future[Verdict]":
        """Queue one example; returns a future resolving to its Verdict."""
        x = np.asarray(x, dtype=np.float32)
        self._check_shape(x)
        future: "Future[Verdict]" = Future()
        rid = request_id or self._assign_id()
        request = Request(x=x, id=rid, future=future,
                          enqueued_at=time.monotonic(),
                          span=start_span("serve/request", request=rid))
        try:
            self._batcher.submit(request)
        except (QueueFullError, ServingClosedError) as exc:
            self.stats.note_rejected()
            request.span.finish(rejected=type(exc).__name__)
            raise
        return future

    def predict(self, x: np.ndarray, timeout: Optional[float] = None
                ) -> Verdict:
        """Blocking single-example inference through the batching queue."""
        return self.submit(x).result(timeout)

    def predict_many(self, xs: Sequence[np.ndarray],
                     timeout: Optional[float] = None) -> List[Verdict]:
        """Submit a burst of examples and gather their verdicts in order."""
        futures = [self.submit(x) for x in xs]
        return [f.result(timeout) for f in futures]

    @property
    def request_timeout_s(self) -> float:
        return self.config.request_timeout_s

    def stats_snapshot(self) -> Dict[str, Any]:
        """Counters, latency percentiles and config — the /stats payload."""
        snap = self.stats.snapshot()
        snap["requests"]["submitted"] = self._batcher.submitted
        snap["queue_depth"] = len(self._batcher)
        snap["uptime_s"] = round(self.uptime_s, 3)
        snap["healthy"] = self.healthy()
        snap["config"] = self.config.as_dict()
        return snap

    def metrics_gauges(self) -> Dict[str, float]:
        """Extra gauges for /metrics; empty-window percentiles omitted."""
        snap = self.stats_snapshot()
        extra = {"serve/uptime_seconds": snap["uptime_s"],
                 "serve/healthy": 1.0 if snap["healthy"] else 0.0,
                 "serve/queue_depth_now": snap["queue_depth"]}
        for window, pcts in snap["latency_ms"].items():
            for pct, value in pcts.items():
                if value is not None:
                    extra[f"serve/latency_{window}_ms_{pct}"] = value
        return extra

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch(timeout=self._IDLE_POLL_S)
            if batch is None:
                return                      # closed and drained
            if batch:
                self._run_batch(batch)

    def _policy_loop(self) -> None:
        while not self._policy_stop.wait(0.05):
            self.adaptive.tick()

    def _run_batch(self, batch: List[Request]) -> None:
        t_start = time.monotonic()
        # The batch span nests under the oldest queued request's span, so
        # the trace reads request -> micro-batch -> pipeline stages; the
        # other requests of the batch close as their own trace roots.
        parent = next((r.span.context for r in batch
                       if r.span is not None and r.span.recording), None)
        with span("serve/batch", parent=parent, batch=len(batch)) as batch_sp:
            try:
                x = np.stack([r.x for r in batch])
                decision = self.magnet.decide_batch(x)
            except Exception as exc:        # model failure: fail the batch,
                self.stats.note_errors(len(batch))   # not the worker
                log.exception("batch of %d failed", len(batch))
                counter("serve/errors").inc(len(batch))
                event("serve/error", batch=len(batch),
                      error=type(exc).__name__)
                batch_sp["error"] = type(exc).__name__
                for r in batch:
                    if r.span is not None:
                        r.span.finish(error=type(exc).__name__)
                    r.future.set_exception(exc)
                return
            infer_ms = (time.monotonic() - t_start) * 1000.0
            stage_s = decision.stage_s or {}
            names = [d.name for d in self.magnet.detectors]
            self.stats.note_batch(len(batch))
            counter("serve/batches").inc()
            for stage in ("detect", "reform", "classify"):
                record_span(f"serve/{stage}", stage_s.get(stage, 0.0),
                            batch=len(batch))
            batch_sp.update(
                detect_s=round(stage_s.get("detect", 0.0), 6),
                reform_s=round(stage_s.get("reform", 0.0), 6),
                classify_s=round(stage_s.get("classify", 0.0), 6),
                oldest_queue_ms=round(
                    (t_start - batch[0].enqueued_at) * 1000.0, 3))
        for i, r in enumerate(batch):
            queue_ms = (t_start - r.enqueued_at) * 1000.0
            verdict = Verdict(
                request_id=r.id,
                label=int(decision.labels_reformed[i]),
                detected=bool(decision.detected[i]),
                label_raw=int(decision.labels_raw[i]),
                detector_scores={
                    name: float(decision.detector_scores[d, i])
                    for d, name in enumerate(names)},
                detector_flags={
                    name: bool(decision.detector_flags[d, i])
                    for d, name in enumerate(names)},
                queue_ms=round(queue_ms, 3),
                infer_ms=round(infer_ms, 3),
                batch_size=len(batch),
            )
            self.stats.note_request(queue_ms, queue_ms + infer_ms)
            counter("serve/requests").inc()
            if r.span is not None:
                r.span.finish(queue_ms=round(queue_ms, 3), batch=len(batch),
                              detected=verdict.detected)
            r.future.set_result(verdict)
