"""Experiment registry: run any table/figure by id.

``run_experiment("fig2")`` resolves the experiment, builds (or reuses)
the contexts it needs, and returns its :class:`ExperimentReport`.
Contexts are memoized per (profile, seed) within the process so a
benchmark session shares data, models and attack caches across all 20
experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.experiments import figures, tables
from repro.experiments.config import ExperimentProfile, current_profile
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.obs import span
from repro.utils.cache import DiskCache

# exp id -> (function, datasets it needs, short description)
_SPEC: Dict[str, Tuple[Callable, Tuple[str, ...], str]] = {
    "table1": (tables.table1, ("digits", "objects"),
               "attack comparison vs default MagNet"),
    "table2": (tables.table2, ("digits",), "robust MNIST AE architectures"),
    "table3": (tables.table3, ("digits",), "digits clean accuracy"),
    "table4": (tables.table4, ("digits",), "best EAD ASR per variant (digits)"),
    "table5": (tables.table5, ("objects",), "robust CIFAR AE architecture"),
    "table6": (tables.table6, ("objects",), "objects clean accuracy"),
    "table7": (tables.table7, ("objects",), "best EAD ASR per variant (objects)"),
    "fig1": (figures.fig1, ("digits",), "adversarial example gallery"),
    "fig2": (figures.fig2, ("digits",), "variant comparison curves (digits)"),
    "fig3": (figures.fig3, ("objects",), "variant comparison curves (objects)"),
    "fig4": (figures.fig4, ("digits",), "C&W decomposition (digits)"),
    "fig5": (figures.fig5, ("objects",), "C&W decomposition (objects)"),
    "fig6": (figures.fig6, ("digits",), "EAD decomposition, default (digits)"),
    "fig7": (figures.fig7, ("objects",), "EAD decomposition, default (objects)"),
    "fig8": (figures.fig8, ("digits",), "EAD decomposition, D+JSD (digits)"),
    "fig9": (figures.fig9, ("digits",), "EAD decomposition, D+wide (digits)"),
    "fig10": (figures.fig10, ("digits",), "EAD decomposition, D+wide+JSD (digits)"),
    "fig11": (figures.fig11, ("objects",), "EAD decomposition, D+wide (objects)"),
    "fig12": (figures.fig12, ("digits",), "AE loss ablation (digits)"),
    "fig13": (figures.fig13, ("objects",), "AE loss ablation (objects)"),
}

EXPERIMENT_IDS = tuple(_SPEC)

_contexts: Dict[Tuple[str, str, int], ExperimentContext] = {}


def get_context(dataset: str, profile: Optional[ExperimentProfile] = None,
                cache: Optional[DiskCache] = None,
                seed: int = 0, *, jobs: int = 1,
                retry_policy=None, fault_plan=None,
                scheduler: str = "static",
                nn_backend: Optional[str] = None) -> ExperimentContext:
    """Memoized ExperimentContext for (dataset, profile, seed).

    ``jobs``, ``retry_policy``, ``fault_plan`` and ``scheduler`` are
    execution hints, not part of the memo key: passing different values
    updates the existing context's fan-out/fault-tolerance/scheduling
    behavior without invalidating its cached data/models (results are
    identical for any setting — see :mod:`repro.runtime`).

    ``nn_backend`` is *not* a pure hint — the FFT path is
    tolerance-equivalent rather than bitwise — so the context keys
    attack artifacts by it (see
    :attr:`ExperimentContext.nn_backend`).  ``None`` keeps the
    memoized context's current selection (initially the profile's).
    """
    profile = profile or current_profile()
    key = (dataset, profile.name, seed)
    if key not in _contexts:
        _contexts[key] = ExperimentContext(dataset, profile=profile,
                                           cache=cache, seed=seed, jobs=jobs,
                                           retry_policy=retry_policy,
                                           fault_plan=fault_plan,
                                           scheduler=scheduler,
                                           nn_backend=nn_backend)
    else:
        _contexts[key].jobs = int(jobs)
        _contexts[key].retry_policy = retry_policy
        _contexts[key].fault_plan = fault_plan
        _contexts[key].scheduler = scheduler
        if nn_backend is not None:
            _contexts[key].nn_backend = nn_backend
    return _contexts[key]


def describe_experiments() -> Dict[str, str]:
    """Map of experiment id → one-line description."""
    return {exp_id: spec[2] for exp_id, spec in _SPEC.items()}


def run_experiment(exp_id: str, profile: Optional[ExperimentProfile] = None,
                   cache: Optional[DiskCache] = None,
                   seed: int = 0, *, jobs: int = 1, resume: bool = False,
                   retry_policy=None, fault_plan=None,
                   scheduler: str = "static",
                   nn_backend: Optional[str] = None) -> ExperimentReport:
    """Run one table/figure reproduction and return its report.

    ``jobs`` (keyword-only) sets the parallel fan-out: with ``jobs > 1``
    the profile's full attack grid for each dataset the experiment needs
    is precomputed across that many worker processes before the (serial,
    cache-hitting) experiment body runs.  ``0`` means one worker per
    core.  Results are bitwise-identical for any value.

    ``resume=True`` continues an interrupted sweep from its checkpoint
    manifest, recomputing only missing/corrupt/previously-failed cells.
    ``retry_policy`` overrides the sweep's fault-tolerance defaults,
    ``fault_plan`` injects deterministic chaos (``--inject-faults``),
    ``scheduler`` picks the dispatch strategy (``--scheduler``), and
    ``nn_backend`` pins the kernel backend for every attack dispatch
    (``--nn-backend``; default: the profile's); see
    :mod:`repro.runtime` and :mod:`repro.nn.backend`.
    """
    if exp_id not in _SPEC:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(_SPEC)}")
    fn, datasets, _desc = _SPEC[exp_id]
    contexts = [get_context(ds, profile=profile, cache=cache, seed=seed,
                            jobs=jobs, retry_policy=retry_policy,
                            fault_plan=fault_plan, scheduler=scheduler,
                            nn_backend=nn_backend)
                for ds in datasets]
    with span(f"experiment/{exp_id}", jobs=jobs):
        if (jobs is not None and jobs != 1) or resume:
            from repro.experiments.sweeps import precompute_attacks

            for ctx in contexts:
                precompute_attacks(ctx, jobs=jobs, resume=resume,
                                   scheduler=scheduler)
        return fn(*contexts)


def clear_contexts() -> None:
    """Drop memoized contexts (tests use this to switch profiles)."""
    _contexts.clear()
