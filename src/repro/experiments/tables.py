"""Reproductions of the paper's Tables I–VII.

Each function takes the relevant :class:`ExperimentContext`(s) and
returns an :class:`ExperimentReport` whose ``text`` matches the paper's
row structure and whose ``data`` carries the raw numbers.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.defenses.variants import CIFAR_VARIANTS, MNIST_VARIANTS, VARIANT_LABELS
from repro.evaluation.reporting import format_architecture, format_table
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import best_asr, cw_best, ead_best
from repro.models.autoencoders import architecture_rows
from repro.nn.training import accuracy


def table1(ctx_digits: ExperimentContext,
           ctx_objects: ExperimentContext) -> ExperimentReport:
    """Table I: attack comparison vs the *default* MagNet on both datasets.

    For each attack row the κ with the best defense-level ASR is reported
    together with the success-averaged L1/L2 distortions at that κ
    (mirroring the paper's "best" annotation on the C&W row).
    """
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    contexts = {"digits": ctx_digits, "objects": ctx_objects}

    for ds, ctx in contexts.items():
        magnet = ctx.magnet("default")
        kappas = ctx.profile.kappas(ctx.dataset)
        cw = cw_best(ctx, magnet, kappas)
        rows.append([ds, "C&W (L2)", "-", f"{cw['kappa']:g}",
                     100 * cw["asr"], cw["l1"], cw["l2"]])
        data[f"{ds}/cw"] = cw
        for rule in ("en", "l1"):
            for beta in ctx.profile.betas:
                cell = ead_best(ctx, magnet, kappas, beta, rule)
                rows.append([ds, f"EAD ({rule.upper()} rule)", f"{beta:g}",
                             f"{cell['kappa']:g}", 100 * cell["asr"],
                             cell["l1"], cell["l2"]])
                data[f"{ds}/ead_{rule}_beta{beta:g}"] = cell

    text = format_table(
        ["dataset", "attack", "beta", "kappa*", "ASR %", "L1", "L2"], rows,
        title="Comparison of attacks on MagNet (default setting); "
              "kappa* = best-ASR confidence")
    return ExperimentReport("table1", "Attack comparison on default MagNet",
                            text, data)


def table2(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Table II: robust-MagNet MNIST autoencoder architectures."""
    width = ctx_digits.profile.wide_width
    columns = {
        "Detector I & Reformer": architecture_rows("digits", "deep", width),
        "Detector II": architecture_rows("digits", "shallow", width),
    }
    text = format_architecture(
        f"Robust MagNet architecture on digits (width={width}, "
        f"paper uses 256)", columns)
    # Parameter counts corroborate the structural claim.
    from repro.models.autoencoders import build_mnist_ae_deep, build_mnist_ae_shallow
    deep = build_mnist_ae_deep(width=width)
    shallow = build_mnist_ae_shallow(width=width)
    text += (f"\nparams: deep={deep.num_parameters()} "
             f"shallow={shallow.num_parameters()}")
    return ExperimentReport(
        "table2", "Robust MagNet MNIST architectures", text,
        {"width": width, "deep_params": deep.num_parameters(),
         "shallow_params": shallow.num_parameters(),
         "deep_rows": columns["Detector I & Reformer"],
         "shallow_rows": columns["Detector II"]})


def _clean_accuracy_table(ctx: ExperimentContext, variants) -> ExperimentReport:
    test = ctx.splits.test
    base_acc = accuracy(ctx.classifier, test.x, test.y)
    rows = [["Without MagNet"] + [100 * base_acc] * len(variants)]
    with_row: List = ["With MagNet"]
    data = {"without": base_acc}
    for variant in variants:
        magnet = ctx.magnet(variant)
        acc = magnet.clean_accuracy(test.x, test.y)
        with_row.append(100 * acc)
        data[variant] = acc
    rows.append(with_row)
    headers = [""] + [VARIANT_LABELS[v] for v in variants]
    text = format_table(headers, rows,
                        title=f"{ctx.dataset} clean test accuracy (%)")
    return ExperimentReport("", "", text, data)


def table3(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Table III: MNIST clean test accuracy with/without each MagNet."""
    rep = _clean_accuracy_table(ctx_digits, MNIST_VARIANTS)
    rep.exp_id, rep.title = "table3", "Digits clean accuracy per MagNet variant"
    return rep


def table4(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Table IV: best EAD ASR on digits per (rule, β) × MagNet variant."""
    return _best_asr_table(ctx_digits, MNIST_VARIANTS, "table4",
                           "Best EAD ASR per MagNet variant (digits)")


def table5(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Table V: robust-MagNet CIFAR autoencoder architecture."""
    width = ctx_objects.profile.wide_width
    columns = {"Detectors & Reformer": architecture_rows("objects", "deep", width)}
    text = format_architecture(
        f"Robust MagNet architecture on objects (width={width}, "
        f"paper uses 256)", columns)
    from repro.models.autoencoders import build_cifar_ae
    ae = build_cifar_ae(width=width)
    text += f"\nparams: {ae.num_parameters()}"
    return ExperimentReport(
        "table5", "Robust MagNet CIFAR architecture", text,
        {"width": width, "params": ae.num_parameters(),
         "rows": columns["Detectors & Reformer"]})


def table6(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Table VI: CIFAR clean test accuracy with/without MagNet."""
    rep = _clean_accuracy_table(ctx_objects, CIFAR_VARIANTS)
    rep.exp_id, rep.title = "table6", "Objects clean accuracy per MagNet variant"
    return rep


def table7(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Table VII: best EAD ASR on objects per (rule, β) × MagNet variant."""
    return _best_asr_table(ctx_objects, CIFAR_VARIANTS, "table7",
                           "Best EAD ASR per MagNet variant (objects)")


def _best_asr_table(ctx: ExperimentContext, variants, exp_id: str,
                    title: str) -> ExperimentReport:
    kappas = ctx.profile.kappas(ctx.dataset)
    magnets = {v: ctx.magnet(v) for v in variants}
    rows: List[List] = []
    data: Dict[str, float] = {}
    for rule in ("en", "l1"):
        for beta in ctx.profile.betas:
            row: List = [f"EAD ({rule.upper()} rule)", f"{beta:g}"]
            for variant in variants:
                asr = best_asr(ctx, magnets[variant], kappas, beta, rule)
                row.append(100 * asr)
                data[f"{rule}/{beta:g}/{variant}"] = asr
            rows.append(row)
    headers = ["decision rule", "beta"] + [VARIANT_LABELS[v] for v in variants]
    text = format_table(headers, rows,
                        title=f"Best EAD attack success rate (%) — {ctx.dataset}")
    return ExperimentReport(exp_id, title, text, data)
