"""Reproductions of the paper's Figures 1–13 as numeric series.

Each figure function returns an :class:`ExperimentReport` whose text
shows the underlying accuracy-vs-confidence curves (with sparklines) —
the offline equivalent of the paper's line charts — and whose ``data``
holds the raw series for assertions and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.defenses.variants import VARIANT_LABELS
from repro.evaluation.reporting import format_series
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import accuracy_curves, breakdown_curves


def _panels_text(panels: List[str]) -> str:
    return "\n\n".join(panels)


# ----------------------------------------------------------------------
# Figure 1 — adversarial example gallery
# ----------------------------------------------------------------------

_ASCII_CHARS = " .:-=+*#%@"


def _ascii_image(img: np.ndarray, width: int = 28) -> List[str]:
    """Render (C,H,W) as ASCII rows (mean over channels)."""
    gray = img.mean(axis=0)
    return ["".join(_ASCII_CHARS[min(int(v * 9.99), 9)] for v in row)
            for row in gray]


def fig1(ctx: ExperimentContext, kappa: float = None,
         n_examples: int = 6) -> ExperimentReport:
    """Figure 1: a gallery of adversarial examples with bypass marks.

    For ``n_examples`` attack seeds, shows the clean image and the C&W /
    EAD-EN / EAD-L1 adversarial versions; rows that fail to bypass the
    default MagNet are marked ``[X]`` like the paper's red crosses.
    """
    if kappa is None:
        grid = ctx.profile.kappas(ctx.dataset)
        kappa = grid[len(grid) // 2]
    magnet = ctx.magnet("default")
    x0, y0 = ctx.attack_seeds()
    n = min(n_examples, len(y0))

    results = {
        "C&W": ctx.cw(kappa),
        "EAD-EN": ctx.ead(1e-1, kappa)["en"],
        "EAD-L1": ctx.ead(1e-1, kappa)["l1"],
    }
    blocks: List[str] = []
    data: Dict[str, List] = {"kappa": kappa, "bypass": {}}
    for name, result in results.items():
        decision = magnet.decide(result.x_adv[:n])
        bypass = (~decision.detected) & (decision.labels_reformed != y0[:n])
        data["bypass"][name] = bypass.tolist()
        rows: List[str] = [f"--- {name} (kappa={kappa:g}) ---"]
        ascii_imgs = [_ascii_image(result.x_adv[i]) for i in range(n)]
        marks = ["BYPASS" if b else "[X]   " for b in bypass]
        header = "   ".join(f"{m:<28}" for m in marks)
        rows.append(header)
        for line_idx in range(len(ascii_imgs[0])):
            rows.append("   ".join(img[line_idx] for img in ascii_imgs))
        blocks.append("\n".join(rows))

    text = (f"Adversarial examples vs default MagNet on {ctx.dataset} "
            f"([X] = defended, like the paper's red crosses)\n\n"
            + "\n\n".join(blocks))
    return ExperimentReport("fig1", "Adversarial example gallery", text, data)


# ----------------------------------------------------------------------
# Figures 2 and 3 — defense accuracy vs confidence, attack comparison
# ----------------------------------------------------------------------

def _variant_comparison(ctx: ExperimentContext, variants: Sequence[str],
                        exp_id: str, title: str) -> ExperimentReport:
    kappas = ctx.profile.kappas(ctx.dataset)
    panels: List[str] = []
    data: Dict[str, Dict] = {"kappas": list(kappas)}
    for variant in variants:
        magnet = ctx.magnet(variant)
        curves = accuracy_curves(ctx, magnet, kappas)
        data[variant] = {k: list(v) for k, v in curves.items()}
        panels.append(format_series(
            "kappa", list(kappas), curves,
            title=f"({VARIANT_LABELS[variant]}) classification accuracy %"))
    return ExperimentReport(exp_id, title, _panels_text(panels), data)


def fig2(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 2: digits — C&W vs EAD against the four MagNet variants."""
    return _variant_comparison(
        ctx_digits, ("default", "jsd", "wide", "wide_jsd"), "fig2",
        "Defense performance of MagNet variants (digits)")


def fig3(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Figure 3: objects — C&W vs EAD against the two MagNet variants."""
    return _variant_comparison(
        ctx_objects, ("default", "wide"), "fig3",
        "Defense performance of MagNet variants (objects)")


# ----------------------------------------------------------------------
# Figures 4 and 5 — C&W defense decomposition
# ----------------------------------------------------------------------

def _cw_decomposition(ctx: ExperimentContext, variants: Sequence[str],
                      exp_id: str, title: str) -> ExperimentReport:
    kappas = ctx.profile.kappas(ctx.dataset)
    panels: List[str] = []
    data: Dict[str, Dict] = {"kappas": list(kappas)}
    for variant in variants:
        magnet = ctx.magnet(variant)
        curves = breakdown_curves(ctx, magnet, kappas, lambda k: ctx.cw(k))
        data[variant] = {k: list(v) for k, v in curves.items()}
        panels.append(format_series(
            "kappa", list(kappas), curves,
            title=f"({VARIANT_LABELS[variant]}) C&W L2 attack — accuracy %"))
    return ExperimentReport(exp_id, title, _panels_text(panels), data)


def fig4(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 4: digits — C&W decomposition across the four variants."""
    return _cw_decomposition(ctx_digits, ("default", "jsd", "wide", "wide_jsd"),
                             "fig4", "C&W decomposition (digits)")


def fig5(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Figure 5: objects — C&W decomposition across the two variants."""
    return _cw_decomposition(ctx_objects, ("default", "wide"),
                             "fig5", "C&W decomposition (objects)")


# ----------------------------------------------------------------------
# Figures 6–11 — EAD decomposition per (β, rule) panel
# ----------------------------------------------------------------------

def _ead_decomposition(ctx: ExperimentContext, variant: str, exp_id: str,
                       title: str) -> ExperimentReport:
    kappas = ctx.profile.kappas(ctx.dataset)
    magnet = ctx.magnet(variant)
    panels: List[str] = []
    data: Dict[str, Dict] = {"kappas": list(kappas), "variant": variant}
    for beta in ctx.profile.betas:
        for rule in ("l1", "en"):
            curves = breakdown_curves(
                ctx, magnet, kappas,
                lambda k, beta=beta, rule=rule: ctx.ead(beta, k)[rule])
            data[f"{rule}/{beta:g}"] = {k: list(v) for k, v in curves.items()}
            panels.append(format_series(
                "kappa", list(kappas), curves,
                title=(f"({rule.upper()} rule, beta={beta:g}) EAD vs "
                       f"{VARIANT_LABELS[variant]} — accuracy %")))
    return ExperimentReport(exp_id, title, _panels_text(panels), data)


def fig6(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 6: digits — EAD vs default MagNet, all (β, rule) panels."""
    return _ead_decomposition(ctx_digits, "default", "fig6",
                              "EAD decomposition vs default MagNet (digits)")


def fig7(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Figure 7: objects — EAD vs default MagNet, all (β, rule) panels."""
    return _ead_decomposition(ctx_objects, "default", "fig7",
                              "EAD decomposition vs default MagNet (objects)")


def fig8(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 8: digits — EAD vs D+JSD."""
    return _ead_decomposition(ctx_digits, "jsd", "fig8",
                              "EAD decomposition vs D+JSD (digits)")


def fig9(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 9: digits — EAD vs D+wide."""
    return _ead_decomposition(ctx_digits, "wide", "fig9",
                              "EAD decomposition vs D+256 (digits)")


def fig10(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 10: digits — EAD vs D+wide+JSD."""
    return _ead_decomposition(ctx_digits, "wide_jsd", "fig10",
                              "EAD decomposition vs D+256+JSD (digits)")


def fig11(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Figure 11: objects — EAD vs D+wide."""
    return _ead_decomposition(ctx_objects, "wide", "fig11",
                              "EAD decomposition vs D+256 (objects)")


# ----------------------------------------------------------------------
# Figures 12 and 13 — MSE- vs MAE-trained autoencoders
# ----------------------------------------------------------------------

def _loss_comparison(ctx: ExperimentContext, exp_id: str,
                     title: str) -> ExperimentReport:
    kappas = ctx.profile.kappas(ctx.dataset)
    betas = (min(ctx.profile.betas), max(ctx.profile.betas))
    panels: List[str] = []
    data: Dict[str, Dict] = {"kappas": list(kappas)}
    _, y0 = ctx.attack_seeds()
    for loss in ("mse", "mae"):
        magnet = ctx.magnet("default", ae_loss=loss)
        curves: Dict[str, List[float]] = {"C&W L2 attack": []}
        for beta in betas:
            curves[f"EAD-L1 beta={beta:g}"] = []
            curves[f"EAD-EN beta={beta:g}"] = []
        for kappa in kappas:
            curves["C&W L2 attack"].append(
                magnet.defense_accuracy(ctx.cw(kappa).x_adv, y0))
            for beta in betas:
                ead = ctx.ead(beta, kappa)
                curves[f"EAD-L1 beta={beta:g}"].append(
                    magnet.defense_accuracy(ead["l1"].x_adv, y0))
                curves[f"EAD-EN beta={beta:g}"].append(
                    magnet.defense_accuracy(ead["en"].x_adv, y0))
        data[loss] = {k: list(v) for k, v in curves.items()}
        loss_name = ("mean squared error" if loss == "mse"
                     else "mean absolute error")
        panels.append(format_series(
            "kappa", list(kappas), curves,
            title=f"({loss_name}) default MagNet — accuracy %"))
    return ExperimentReport(exp_id, title, _panels_text(panels), data)


def fig12(ctx_digits: ExperimentContext) -> ExperimentReport:
    """Figure 12: digits — AE reconstruction-loss ablation (MSE vs MAE)."""
    return _loss_comparison(ctx_digits, "fig12",
                            "AE loss ablation on default MagNet (digits)")


def fig13(ctx_objects: ExperimentContext) -> ExperimentReport:
    """Figure 13: objects — AE reconstruction-loss ablation (MSE vs MAE)."""
    return _loss_comparison(ctx_objects, "fig13",
                            "AE loss ablation on default MagNet (objects)")
