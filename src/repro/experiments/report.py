"""Experiment report container."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


@dataclasses.dataclass
class ExperimentReport:
    """The output of one table/figure reproduction.

    ``text`` is the printable reproduction (aligned table or series plus
    sparklines); ``data`` holds the raw numbers for tests and for
    EXPERIMENTS.md generation.
    """

    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"
