"""Experiment harness: profiles, contexts, and the table/figure registry."""

from repro.experiments.config import (
    PAPER,
    PAPER_BETAS,
    PROFILES,
    QUICK,
    SMOKE,
    ExperimentProfile,
    current_profile,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    clear_contexts,
    describe_experiments,
    get_context,
    run_experiment,
)
from repro.experiments.report import ExperimentReport

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentContext",
    "ExperimentProfile",
    "ExperimentReport",
    "PAPER",
    "PAPER_BETAS",
    "PROFILES",
    "QUICK",
    "SMOKE",
    "clear_contexts",
    "current_profile",
    "describe_experiments",
    "get_context",
    "run_experiment",
]
