"""Confidence-sweep primitives shared by the table/figure experiments.

Every figure in the paper is a sweep of defense accuracy over the attack
confidence κ; every "best ASR" table cell is the max over that sweep.
These helpers pull cached attack results from an
:class:`~repro.experiments.context.ExperimentContext` and score them
against a MagNet variant.

Crafting dominates sweep wall-clock and every (attack, κ, β) cell is
independent, so the sweep helpers route missing cells through
:mod:`repro.runtime`: :func:`precompute_attacks` fans them out across a
process pool and publishes the results into the context's disk cache
under exactly the keys the serial accessors use.  Workers receive the
already-trained classifier and the already-selected attack seeds, and
the attacks themselves are deterministic, so a parallel sweep is
bitwise-identical to a serial one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.base import AttackResult
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.ead import DECISION_RULES, EAD
from repro.defenses.magnet import MagNet
from repro.experiments.context import (
    ExperimentContext,
    _result_to_arrays,
)
from repro.evaluation.metrics import defense_breakdown
from repro.runtime.executor import parallel_map, resolve_jobs
from repro.runtime.telemetry import telemetry
from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Ordering of the paper's four defense schemes in breakdown figures.
SCHEMES = ("no_defense", "detector_only", "reformer_only", "full")

SCHEME_LABELS = {
    "no_defense": "No defense",
    "detector_only": "With detector",
    "reformer_only": "With reformer",
    "full": "With detector & reformer",
}


# ----------------------------------------------------------------------
# Parallel pre-computation of attack cells
# ----------------------------------------------------------------------
def attack_grid(ctx: ExperimentContext,
                kappas: Optional[Sequence[float]] = None,
                betas: Optional[Sequence[float]] = None,
                include_cw: bool = True) -> List[Dict]:
    """Enumerate the (attack, κ[, β]) cells of a sweep as work items.

    Defaults to the context profile's full κ grid and β list — the pool
    of cells every table/figure of that profile draws from.
    """
    if kappas is None:
        kappas = ctx.profile.kappas(ctx.dataset)
    if betas is None:
        betas = ctx.profile.betas
    cells: List[Dict] = []
    if include_cw:
        cells.extend({"attack": "cw", "kappa": float(k)} for k in kappas)
    cells.extend({"attack": "ead", "beta": float(b), "kappa": float(k)}
                 for b in betas for k in kappas)
    return cells


def _cell_keys(ctx: ExperimentContext, cell: Dict) -> Dict[str, str]:
    """Cache keys a cell publishes, labelled by result slot."""
    if cell["attack"] == "cw":
        return {"cw": ctx._attack_key(ctx._cw_spec(cell["kappa"]))}
    return {
        rule: ctx._attack_key(ctx._ead_spec(cell["beta"], cell["kappa"], rule))
        for rule in DECISION_RULES
    }


def missing_cells(ctx: ExperimentContext, cells: Sequence[Dict]) -> List[Dict]:
    """The subset of cells with at least one uncached result."""
    return [
        cell for cell in cells
        if not all(ctx.cache.contains("attacks", key)
                   for key in _cell_keys(ctx, cell).values())
    ]


def _craft_cell(payload) -> Dict[str, Dict]:
    """Worker body: craft one attack cell against a pickled classifier.

    Returns ``{slot: arrays}`` (slot ``"cw"`` or a decision rule) so the
    parent can publish under the context's cache keys; workers never
    touch the cache directly, which keeps cache-write ordering with the
    parent deterministic.
    """
    classifier, profile, x0, y0, cell = payload
    if cell["attack"] == "cw":
        attack = CarliniWagnerL2.from_profile(classifier, profile,
                                              kappa=cell["kappa"])
        return {"cw": _result_to_arrays(attack.attack(x0, y0))}
    attack = EAD.from_profile(classifier, profile, beta=cell["beta"],
                              kappa=cell["kappa"])
    both = attack.attack_both(x0, y0)
    return {rule: _result_to_arrays(both[rule]) for rule in DECISION_RULES}


def precompute_attacks(ctx: ExperimentContext, *,
                       kappas: Optional[Sequence[float]] = None,
                       betas: Optional[Sequence[float]] = None,
                       include_cw: bool = True,
                       jobs: Optional[int] = None) -> Dict[str, int]:
    """Craft every uncached cell of a sweep, fanning out across ``jobs``.

    After this returns, the serial accessors (``ctx.cw``/``ctx.ead``)
    are pure cache hits for the covered grid.  Returns a summary dict
    (``computed``/``cached``/``jobs``).
    """
    jobs = resolve_jobs(ctx.jobs if jobs is None else jobs)
    cells = attack_grid(ctx, kappas=kappas, betas=betas,
                        include_cw=include_cw)
    todo = missing_cells(ctx, cells)
    summary = {"computed": len(todo), "cached": len(cells) - len(todo),
               "jobs": jobs}
    if not todo:
        return summary
    with telemetry().stage("sweep/precompute", dataset=ctx.dataset,
                           cells=len(todo), jobs=jobs):
        if jobs <= 1:
            for cell in todo:
                if cell["attack"] == "cw":
                    ctx.cw(cell["kappa"])
                else:
                    ctx.ead(cell["beta"], cell["kappa"])
            return summary
        # Materialize shared inputs once, in the parent, so workers do
        # not redundantly train/select (and so results cannot depend on
        # worker-local state).
        classifier = ctx.classifier
        x0, y0 = ctx.attack_seeds()
        log.info("precomputing %d attack cells on %s with %d workers",
                 len(todo), ctx.dataset, jobs)
        payloads = [(classifier, ctx.profile, x0, y0, cell) for cell in todo]
        outputs = parallel_map(_craft_cell, payloads, jobs=jobs, chunk_size=1)
        for cell, arrays_by_slot in zip(todo, outputs):
            keys = _cell_keys(ctx, cell)
            for slot, arrays in arrays_by_slot.items():
                ctx.cache.save("attacks", keys[slot], arrays,
                               meta={"cell": cell, "slot": slot})
    return summary


def _warm(ctx, kappas: Sequence[float], betas: Sequence[float],
          include_cw: bool, jobs: Optional[int]) -> None:
    """Precompute cells ahead of a serial read loop when parallelism is on."""
    if not isinstance(ctx, ExperimentContext):
        return  # stub contexts in unit tests
    jobs = resolve_jobs(ctx.jobs if jobs is None else jobs)
    if jobs > 1:
        precompute_attacks(ctx, kappas=kappas, betas=betas,
                           include_cw=include_cw, jobs=jobs)


def attack_result(ctx: ExperimentContext, attack: str, kappa: float,
                  beta: float = 1e-1, rule: str = "en") -> AttackResult:
    """Fetch one cached attack result by family name.

    ``attack`` is ``"cw"`` or ``"ead"`` (the latter selected by β + rule).
    """
    if attack == "cw":
        return ctx.cw(kappa)
    if attack == "ead":
        return ctx.ead(beta, kappa)[rule]
    raise KeyError(f"unknown attack family {attack!r}; expected 'cw' or 'ead'")


def accuracy_curves(ctx: ExperimentContext, magnet: MagNet,
                    kappas: Sequence[float], beta: float = 1e-1, *,
                    jobs: Optional[int] = None) -> Dict[str, List[float]]:
    """The three curves of Figures 2/3: C&W, EAD-L1, EAD-EN vs κ.

    ``jobs`` (default: the context's ``jobs`` hint) fans uncached cells
    out across worker processes before the serial scoring loop.
    """
    _warm(ctx, kappas, [beta], True, jobs)
    curves: Dict[str, List[float]] = {
        "C&W L2 attack": [],
        f"EAD-L1 beta={beta:g}": [],
        f"EAD-EN beta={beta:g}": [],
    }
    for kappa in kappas:
        cw = ctx.cw(kappa)
        ead = ctx.ead(beta, kappa)
        _, y0 = ctx.attack_seeds()
        curves["C&W L2 attack"].append(magnet.defense_accuracy(cw.x_adv, y0))
        curves[f"EAD-L1 beta={beta:g}"].append(
            magnet.defense_accuracy(ead["l1"].x_adv, y0))
        curves[f"EAD-EN beta={beta:g}"].append(
            magnet.defense_accuracy(ead["en"].x_adv, y0))
    return curves


def breakdown_curves(ctx: ExperimentContext, magnet: MagNet,
                     kappas: Sequence[float],
                     fetch: Callable[[float], AttackResult]
                     ) -> Dict[str, List[float]]:
    """Four defense-scheme curves (supplementary figure panels) vs κ."""
    series: Dict[str, List[float]] = {SCHEME_LABELS[s]: [] for s in SCHEMES}
    _, y0 = ctx.attack_seeds()
    for kappa in kappas:
        result = fetch(kappa)
        bd = defense_breakdown(magnet, result.x_adv, y0).as_dict()
        for scheme in SCHEMES:
            series[SCHEME_LABELS[scheme]].append(bd[scheme])
    return series


def best_asr(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str, *, jobs: Optional[int] = None) -> float:
    """Best-over-κ EAD attack success rate vs a variant (Tables IV/VII cells)."""
    _warm(ctx, kappas, [beta], False, jobs)
    _, y0 = ctx.attack_seeds()
    rates = [
        magnet.attack_success_rate(ctx.ead(beta, kappa)[rule].x_adv, y0)
        for kappa in kappas
    ]
    return float(max(rates))


def best_asr_row(ctx: ExperimentContext, magnets: Dict[str, MagNet],
                 kappas: Sequence[float], beta: float, rule: str
                 ) -> Dict[str, float]:
    """One table row: best EAD ASR per MagNet variant."""
    return {
        variant: best_asr(ctx, magnet, kappas, beta, rule)
        for variant, magnet in magnets.items()
    }


def cw_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
            *, jobs: Optional[int] = None) -> Dict[str, float]:
    """C&W's best-over-κ ASR and the distortions at that κ (Table I row)."""
    _warm(ctx, kappas, [], True, jobs)
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.cw(kappa)
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best


def ead_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str, *, jobs: Optional[int] = None
             ) -> Dict[str, float]:
    """EAD's best-over-κ ASR and distortions at that κ (Table I rows)."""
    _warm(ctx, kappas, [beta], False, jobs)
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.ead(beta, kappa)[rule]
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best
