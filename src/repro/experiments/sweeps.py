"""Confidence-sweep primitives shared by the table/figure experiments.

Every figure in the paper is a sweep of defense accuracy over the attack
confidence κ; every "best ASR" table cell is the max over that sweep.
These helpers pull cached attack results from an
:class:`~repro.experiments.context.ExperimentContext` and score them
against a MagNet variant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.attacks.base import AttackResult
from repro.defenses.magnet import MagNet
from repro.evaluation.metrics import defense_breakdown
from repro.experiments.context import ExperimentContext

#: Ordering of the paper's four defense schemes in breakdown figures.
SCHEMES = ("no_defense", "detector_only", "reformer_only", "full")

SCHEME_LABELS = {
    "no_defense": "No defense",
    "detector_only": "With detector",
    "reformer_only": "With reformer",
    "full": "With detector & reformer",
}


def attack_result(ctx: ExperimentContext, attack: str, kappa: float,
                  beta: float = 1e-1, rule: str = "en") -> AttackResult:
    """Fetch one cached attack result by family name.

    ``attack`` is ``"cw"`` or ``"ead"`` (the latter selected by β + rule).
    """
    if attack == "cw":
        return ctx.cw(kappa)
    if attack == "ead":
        return ctx.ead(beta, kappa)[rule]
    raise KeyError(f"unknown attack family {attack!r}; expected 'cw' or 'ead'")


def accuracy_curves(ctx: ExperimentContext, magnet: MagNet,
                    kappas: Sequence[float], beta: float = 1e-1
                    ) -> Dict[str, List[float]]:
    """The three curves of Figures 2/3: C&W, EAD-L1, EAD-EN vs κ."""
    curves: Dict[str, List[float]] = {
        "C&W L2 attack": [],
        f"EAD-L1 beta={beta:g}": [],
        f"EAD-EN beta={beta:g}": [],
    }
    for kappa in kappas:
        cw = ctx.cw(kappa)
        ead = ctx.ead(beta, kappa)
        _, y0 = ctx.attack_seeds()
        curves["C&W L2 attack"].append(magnet.defense_accuracy(cw.x_adv, y0))
        curves[f"EAD-L1 beta={beta:g}"].append(
            magnet.defense_accuracy(ead["l1"].x_adv, y0))
        curves[f"EAD-EN beta={beta:g}"].append(
            magnet.defense_accuracy(ead["en"].x_adv, y0))
    return curves


def breakdown_curves(ctx: ExperimentContext, magnet: MagNet,
                     kappas: Sequence[float],
                     fetch: Callable[[float], AttackResult]
                     ) -> Dict[str, List[float]]:
    """Four defense-scheme curves (supplementary figure panels) vs κ."""
    series: Dict[str, List[float]] = {SCHEME_LABELS[s]: [] for s in SCHEMES}
    _, y0 = ctx.attack_seeds()
    for kappa in kappas:
        result = fetch(kappa)
        bd = defense_breakdown(magnet, result.x_adv, y0).as_dict()
        for scheme in SCHEMES:
            series[SCHEME_LABELS[scheme]].append(bd[scheme])
    return series


def best_asr(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str) -> float:
    """Best-over-κ EAD attack success rate vs a variant (Tables IV/VII cells)."""
    _, y0 = ctx.attack_seeds()
    rates = [
        magnet.attack_success_rate(ctx.ead(beta, kappa)[rule].x_adv, y0)
        for kappa in kappas
    ]
    return float(max(rates))


def best_asr_row(ctx: ExperimentContext, magnets: Dict[str, MagNet],
                 kappas: Sequence[float], beta: float, rule: str
                 ) -> Dict[str, float]:
    """One table row: best EAD ASR per MagNet variant."""
    return {
        variant: best_asr(ctx, magnet, kappas, beta, rule)
        for variant, magnet in magnets.items()
    }


def cw_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float]
            ) -> Dict[str, float]:
    """C&W's best-over-κ ASR and the distortions at that κ (Table I row)."""
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.cw(kappa)
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best


def ead_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str) -> Dict[str, float]:
    """EAD's best-over-κ ASR and distortions at that κ (Table I rows)."""
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.ead(beta, kappa)[rule]
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best
