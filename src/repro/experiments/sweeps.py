"""Confidence-sweep primitives shared by the table/figure experiments.

Every figure in the paper is a sweep of defense accuracy over the attack
confidence κ; every "best ASR" table cell is the max over that sweep.
These helpers pull cached attack results from an
:class:`~repro.experiments.context.ExperimentContext` and score them
against a MagNet variant.

Crafting dominates sweep wall-clock and every (attack, κ, β) cell is
independent, so the sweep helpers route missing cells through
:mod:`repro.runtime`: :func:`precompute_attacks` fans them out across a
process pool and publishes the results into the context's disk cache
under exactly the keys the serial accessors use.  Workers receive the
already-trained classifier and the already-selected attack seeds, and
the attacks themselves are deterministic, so a parallel sweep is
bitwise-identical to a serial one.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.base import AttackResult
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.ead import DECISION_RULES, EAD
from repro.defenses.magnet import MagNet
from repro.experiments.context import (
    ExperimentContext,
    _result_to_arrays,
)
from repro.evaluation.metrics import defense_breakdown
from repro.runtime.executor import ParallelExecutor, resolve_jobs
from repro.runtime.faults import (
    FaultPlan,
    ItemFailure,
    RetryPolicy,
    corrupt_cache_entry,
)
from repro.obs import event, span
from repro.utils.cache import stable_hash
from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Namespace the checkpoint manifests live under in the disk cache.
CHECKPOINT_NAMESPACE = "checkpoints"

#: Default fault-tolerance policy for attack sweeps: no per-item timeout
#: (attack wall-clock varies by orders of magnitude across profiles),
#: two retries with exponential backoff starting at 0.25 s.
SWEEP_RETRY_POLICY = RetryPolicy(timeout_s=None, retries=2, backoff_s=0.25)

#: Ordering of the paper's four defense schemes in breakdown figures.
SCHEMES = ("no_defense", "detector_only", "reformer_only", "full")

SCHEME_LABELS = {
    "no_defense": "No defense",
    "detector_only": "With detector",
    "reformer_only": "With reformer",
    "full": "With detector & reformer",
}


# ----------------------------------------------------------------------
# Parallel pre-computation of attack cells
# ----------------------------------------------------------------------
def attack_grid(ctx: ExperimentContext,
                kappas: Optional[Sequence[float]] = None,
                betas: Optional[Sequence[float]] = None,
                include_cw: bool = True) -> List[Dict]:
    """Enumerate the (attack, κ[, β]) cells of a sweep as work items.

    Defaults to the context profile's full κ grid and β list — the pool
    of cells every table/figure of that profile draws from.
    """
    if kappas is None:
        kappas = ctx.profile.kappas(ctx.dataset)
    if betas is None:
        betas = ctx.profile.betas
    cells: List[Dict] = []
    if include_cw:
        cells.extend({"attack": "cw", "kappa": float(k)} for k in kappas)
    cells.extend({"attack": "ead", "beta": float(b), "kappa": float(k)}
                 for b in betas for k in kappas)
    return cells


def _cell_keys(ctx: ExperimentContext, cell: Dict) -> Dict[str, str]:
    """Cache keys a cell publishes, labelled by result slot."""
    if cell["attack"] == "cw":
        return {"cw": ctx._attack_key(ctx._cw_spec(cell["kappa"]))}
    return {
        rule: ctx._attack_key(ctx._ead_spec(cell["beta"], cell["kappa"], rule))
        for rule in DECISION_RULES
    }


def _cell_id(cell: Dict) -> str:
    """Stable human-readable id for a cell (checkpoint manifest key)."""
    if cell["attack"] == "cw":
        return f"cw/k={cell['kappa']:g}"
    return f"ead/b={cell['beta']:g}/k={cell['kappa']:g}"


def _cell_ok(ctx: ExperimentContext, cell: Dict, verify: bool) -> bool:
    for key in _cell_keys(ctx, cell).values():
        if not verify:
            if not ctx.cache.contains("attacks", key):
                return False
            continue
        try:
            ctx.cache.load("attacks", key)
        except KeyError:
            return False
    return True


def missing_cells(ctx: ExperimentContext, cells: Sequence[Dict],
                  verify: bool = False) -> List[Dict]:
    """The subset of cells with at least one uncached result.

    With ``verify=True`` every cached entry is actually loaded, so a
    corrupted artifact (torn write from a killed run, injected fault)
    counts as missing — :class:`~repro.utils.cache.DiskCache` discards
    it on the failed load and the cell is recomputed.  Resume paths use
    this; the cheap existence check is enough for warm-path planning.
    """
    return [cell for cell in cells if not _cell_ok(ctx, cell, verify)]


# ----------------------------------------------------------------------
# Checkpoint manifests
# ----------------------------------------------------------------------
def sweep_checkpoint_key(ctx: ExperimentContext,
                         cells: Sequence[Dict]) -> str:
    """Identity of a sweep: classifier fingerprint + grid + seed count."""
    return stable_hash({
        "clf": ctx.classifier_fingerprint,
        "n_attack": ctx.profile.n_attack(ctx.dataset),
        "seed": ctx.seed,
        "cells": list(cells),
    })


def load_checkpoint(ctx: ExperimentContext, key: str) -> Optional[Dict]:
    """The sweep's checkpoint manifest, or None if absent/unreadable."""
    try:
        return ctx.cache.load_json(CHECKPOINT_NAMESPACE, key)
    except KeyError:
        return None


def _fresh_manifest(ctx: ExperimentContext, cells: Sequence[Dict],
                    jobs: int) -> Dict:
    return {
        "dataset": ctx.dataset,
        "profile": ctx.profile.name,
        "seed": ctx.seed,
        "total": len(cells),
        "done": {},
        "failed": {},
        "status": "running",
        "jobs": jobs,
        "updated": time.time(),
    }


def _save_manifest(ctx: ExperimentContext, key: str, manifest: Dict) -> None:
    manifest["updated"] = time.time()
    ctx.cache.save_json(CHECKPOINT_NAMESPACE, key, manifest)


def _craft_cell(payload) -> Dict[str, Dict]:
    """Worker body: craft one attack cell against a pickled classifier.

    Each cell is one *batched* attack run — the whole seed batch
    advances through the masked batch engine in a single dispatch
    stream per iteration (``batch_mode`` selects the engine; the
    ``per_example`` reference mode exists for equivalence checks).
    Returns ``{slot: arrays}`` (slot ``"cw"`` or a decision rule) so the
    parent can publish under the context's cache keys; workers never
    touch the cache directly, which keeps cache-write ordering with the
    parent deterministic.
    """
    classifier, profile, x0, y0, cell, batch_mode = payload
    if cell["attack"] == "cw":
        attack = CarliniWagnerL2.from_profile(classifier, profile,
                                              kappa=cell["kappa"],
                                              batch_mode=batch_mode)
        return {"cw": _result_to_arrays(attack.attack(x0, y0))}
    attack = EAD.from_profile(classifier, profile, beta=cell["beta"],
                              kappa=cell["kappa"], batch_mode=batch_mode)
    both = attack.attack_both(x0, y0)
    return {rule: _result_to_arrays(both[rule]) for rule in DECISION_RULES}


def precompute_attacks(ctx: ExperimentContext, *,
                       kappas: Optional[Sequence[float]] = None,
                       betas: Optional[Sequence[float]] = None,
                       include_cw: bool = True,
                       jobs: Optional[int] = None,
                       resume: bool = False,
                       policy: Optional[RetryPolicy] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       scheduler: Optional[str] = None
                       ) -> Dict[str, int]:
    """Craft every uncached cell of a sweep, fanning out across ``jobs``.

    After this returns, the serial accessors (``ctx.cw``/``ctx.ead``)
    are pure cache hits for the covered grid.  Returns a summary dict
    (``computed``/``cached``/``jobs``/``failed``/``healed``/``steals``).

    The sweep is fault-tolerant and resumable:

    * Cells run under ``policy`` (default :data:`SWEEP_RETRY_POLICY`):
      per-item timeout, bounded retry with exponential backoff, and
      failed-chunk re-dispatch on a worker crash.  A cell that exhausts
      its retries is recorded as failed — in the checkpoint manifest
      and as ``sweep/cell_failed`` telemetry — instead of aborting the
      sweep; every healthy cell still completes.
    * Every completed cell is published to the disk cache *and* noted
      in an atomically-rewritten checkpoint manifest
      (``checkpoints/<sweep-key>.json``) as it finishes, so a killed
      run resumes from the last completed cell.  ``resume=True``
      additionally load-verifies cached artifacts (a corrupt entry
      counts as missing) and retries previously-failed cells.
    * ``fault_plan`` injects deterministic chaos (crashes, hangs,
      transient faults, corrupted cache reads) for testing; because
      retries reuse per-cell seeds and attacks are deterministic, a
      faulted run that completes is bitwise-identical to a clean one.
    * ``scheduler`` (default: the context's ``scheduler`` hint, else
      ``"static"``) selects the executor's dispatch strategy;
      ``"work_stealing"`` keeps workers dense when high-κ cells
      straggle.  Either way the published artifacts are identical.
    """
    jobs = resolve_jobs(ctx.jobs if jobs is None else jobs)
    if policy is None:
        policy = getattr(ctx, "retry_policy", None) or SWEEP_RETRY_POLICY
    if fault_plan is None:
        fault_plan = getattr(ctx, "fault_plan", None)
    if scheduler is None:
        scheduler = getattr(ctx, "scheduler", None) or "static"
    cells = attack_grid(ctx, kappas=kappas, betas=betas,
                        include_cw=include_cw)
    todo = missing_cells(ctx, cells, verify=resume)
    summary = {"computed": len(todo), "cached": len(cells) - len(todo),
               "jobs": jobs, "failed": 0, "healed": 0,
               "scheduler": scheduler, "steals": 0}
    if not todo:
        return summary

    ckpt_key = sweep_checkpoint_key(ctx, cells)
    manifest = load_checkpoint(ctx, ckpt_key) if resume else None
    if manifest is None:
        manifest = _fresh_manifest(ctx, cells, jobs)
    else:
        log.info("resuming sweep %s on %s: %d/%d cells already done, "
                 "%d previously failed", ckpt_key, ctx.dataset,
                 len(cells) - len(todo), len(cells),
                 len(manifest.get("failed", {})))
        manifest["failed"] = {}      # previously-failed cells get retried
        manifest["status"] = "running"
        manifest["jobs"] = jobs
    for cell in cells:
        if cell not in todo:
            manifest["done"].setdefault(_cell_id(cell), {})
    _save_manifest(ctx, ckpt_key, manifest)

    with span("sweep/precompute", dataset=ctx.dataset,
              cells=len(todo), jobs=jobs, resume=resume or None,
              scheduler=scheduler) as evt:
        # Materialize shared inputs once, in the parent, so workers do
        # not redundantly train/select (and so results cannot depend on
        # worker-local state).
        classifier = ctx.classifier
        x0, y0 = ctx.attack_seeds()
        batch_mode = getattr(ctx, "batch_mode", "batched")
        if fault_plan is not None:
            log.warning("sweep chaos mode: %s", fault_plan.describe())
        log.info("precomputing %d attack cells on %s with %d workers "
                 "(%s engine)", len(todo), ctx.dataset, jobs, batch_mode)
        payloads = [(classifier, ctx.profile, x0, y0, cell, batch_mode)
                    for cell in todo]

        pinned: List[str] = []

        def publish(index: int, arrays_by_slot: Dict) -> None:
            """Publish one completed cell + checkpoint it, incrementally.

            Published keys are pinned until the sweep finishes: the
            checkpoint manifest references them, so a size-capped store
            must not LRU-evict them out from under the resume contract.
            """
            cell = todo[index]
            keys = _cell_keys(ctx, cell)
            paths = []
            for slot, arrays in arrays_by_slot.items():
                ctx.cache.pin("attacks", keys[slot])
                pinned.append(keys[slot])
                paths.append(ctx.cache.save(
                    "attacks", keys[slot], arrays,
                    meta={"cell": cell, "slot": slot}))
            if fault_plan is not None and fault_plan.corrupts_item(index):
                log.warning("injecting cache corruption into cell %s",
                            _cell_id(cell))
                corrupt_cache_entry(paths[0])
            manifest["done"][_cell_id(cell)] = {"keys": sorted(keys.values())}
            _save_manifest(ctx, ckpt_key, manifest)

        executor = ParallelExecutor(jobs, chunk_size=1, policy=policy,
                                    fault_plan=fault_plan, on_error="record",
                                    scheduler=scheduler)
        try:
            outputs = executor.map(_craft_cell, payloads, on_result=publish)
        finally:
            for key in pinned:
                ctx.cache.unpin("attacks", key)
        if executor.last_schedule is not None:
            summary["steals"] = executor.last_schedule.steals

        for cell, output in zip(todo, outputs):
            if isinstance(output, ItemFailure):
                summary["failed"] += 1
                manifest["failed"][_cell_id(cell)] = {
                    "kind": output.kind, "error": output.error,
                    "attempts": output.attempts,
                }
                event("sweep/cell_failed", cell=_cell_id(cell),
                      reason=output.kind, attempts=output.attempts)
                log.error("sweep cell %s failed terminally (%s after %d "
                          "attempts): %s", _cell_id(cell), output.kind,
                          output.attempts, output.error)

        if fault_plan is not None:
            # Self-heal pass: any cell that "completed" but whose
            # artifact is unreadable (injected corruption, torn write)
            # is recomputed serially; determinism makes the healed
            # artifact bitwise-identical.
            failed_ids = set(manifest["failed"])
            suspect = [c for c in cells if _cell_id(c) not in failed_ids]
            for cell in missing_cells(ctx, suspect, verify=True):
                log.warning("healing unreadable cell %s", _cell_id(cell))
                arrays_by_slot = _craft_cell(
                    (classifier, ctx.profile, x0, y0, cell, batch_mode))
                keys = _cell_keys(ctx, cell)
                for slot, arrays in arrays_by_slot.items():
                    ctx.cache.save("attacks", keys[slot], arrays,
                                   meta={"cell": cell, "slot": slot})
                manifest["done"][_cell_id(cell)] = {
                    "keys": sorted(keys.values()), "healed": True}
                summary["healed"] += 1

        manifest["status"] = ("partial" if manifest["failed"] else "complete")
        _save_manifest(ctx, ckpt_key, manifest)
        evt["failed"] = summary["failed"] or None
    return summary


def _warm(ctx, kappas: Sequence[float], betas: Sequence[float],
          include_cw: bool, jobs: Optional[int]) -> None:
    """Precompute cells ahead of a serial read loop when parallelism is on."""
    if not isinstance(ctx, ExperimentContext):
        return  # stub contexts in unit tests
    jobs = resolve_jobs(ctx.jobs if jobs is None else jobs)
    if jobs > 1:
        precompute_attacks(ctx, kappas=kappas, betas=betas,
                           include_cw=include_cw, jobs=jobs)


def attack_result(ctx: ExperimentContext, attack: str, kappa: float,
                  beta: float = 1e-1, rule: str = "en") -> AttackResult:
    """Fetch one cached attack result by family name.

    ``attack`` is ``"cw"`` or ``"ead"`` (the latter selected by β + rule).
    """
    if attack == "cw":
        return ctx.cw(kappa)
    if attack == "ead":
        return ctx.ead(beta, kappa)[rule]
    raise KeyError(f"unknown attack family {attack!r}; expected 'cw' or 'ead'")


def accuracy_curves(ctx: ExperimentContext, magnet: MagNet,
                    kappas: Sequence[float], beta: float = 1e-1, *,
                    jobs: Optional[int] = None) -> Dict[str, List[float]]:
    """The three curves of Figures 2/3: C&W, EAD-L1, EAD-EN vs κ.

    ``jobs`` (default: the context's ``jobs`` hint) fans uncached cells
    out across worker processes before the serial scoring loop.
    """
    _warm(ctx, kappas, [beta], True, jobs)
    curves: Dict[str, List[float]] = {
        "C&W L2 attack": [],
        f"EAD-L1 beta={beta:g}": [],
        f"EAD-EN beta={beta:g}": [],
    }
    for kappa in kappas:
        cw = ctx.cw(kappa)
        ead = ctx.ead(beta, kappa)
        _, y0 = ctx.attack_seeds()
        curves["C&W L2 attack"].append(magnet.defense_accuracy(cw.x_adv, y0))
        curves[f"EAD-L1 beta={beta:g}"].append(
            magnet.defense_accuracy(ead["l1"].x_adv, y0))
        curves[f"EAD-EN beta={beta:g}"].append(
            magnet.defense_accuracy(ead["en"].x_adv, y0))
    return curves


def breakdown_curves(ctx: ExperimentContext, magnet: MagNet,
                     kappas: Sequence[float],
                     fetch: Callable[[float], AttackResult]
                     ) -> Dict[str, List[float]]:
    """Four defense-scheme curves (supplementary figure panels) vs κ."""
    series: Dict[str, List[float]] = {SCHEME_LABELS[s]: [] for s in SCHEMES}
    _, y0 = ctx.attack_seeds()
    for kappa in kappas:
        result = fetch(kappa)
        bd = defense_breakdown(magnet, result.x_adv, y0).as_dict()
        for scheme in SCHEMES:
            series[SCHEME_LABELS[scheme]].append(bd[scheme])
    return series


def best_asr(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str, *, jobs: Optional[int] = None) -> float:
    """Best-over-κ EAD attack success rate vs a variant (Tables IV/VII cells)."""
    _warm(ctx, kappas, [beta], False, jobs)
    _, y0 = ctx.attack_seeds()
    rates = [
        magnet.attack_success_rate(ctx.ead(beta, kappa)[rule].x_adv, y0)
        for kappa in kappas
    ]
    return float(max(rates))


def best_asr_row(ctx: ExperimentContext, magnets: Dict[str, MagNet],
                 kappas: Sequence[float], beta: float, rule: str
                 ) -> Dict[str, float]:
    """One table row: best EAD ASR per MagNet variant."""
    return {
        variant: best_asr(ctx, magnet, kappas, beta, rule)
        for variant, magnet in magnets.items()
    }


def cw_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
            *, jobs: Optional[int] = None) -> Dict[str, float]:
    """C&W's best-over-κ ASR and the distortions at that κ (Table I row)."""
    _warm(ctx, kappas, [], True, jobs)
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.cw(kappa)
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best


def ead_best(ctx: ExperimentContext, magnet: MagNet, kappas: Sequence[float],
             beta: float, rule: str, *, jobs: Optional[int] = None
             ) -> Dict[str, float]:
    """EAD's best-over-κ ASR and distortions at that κ (Table I rows)."""
    _warm(ctx, kappas, [beta], False, jobs)
    _, y0 = ctx.attack_seeds()
    best = {"asr": -1.0, "kappa": float("nan"), "l1": float("nan"),
            "l2": float("nan")}
    for kappa in kappas:
        result = ctx.ead(beta, kappa)[rule]
        asr = magnet.attack_success_rate(result.x_adv, y0)
        if asr > best["asr"]:
            best = {"asr": asr, "kappa": float(kappa),
                    "l1": result.mean_distortion("l1"),
                    "l2": result.mean_distortion("l2")}
    return best
