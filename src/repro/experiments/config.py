"""Experiment profiles: the scale knobs for every table/figure run.

Three profiles:

* ``smoke`` — seconds-scale; used by the integration tests.
* ``quick`` — minutes-scale; the default for the benchmark harness.
  Reproduces the paper's *shapes* (who wins, where the dips fall) at
  reduced sample counts / iteration budgets / κ-grid resolution.
* ``paper`` — the paper's settings (1000 attack seeds, 1000 iterations,
  9 binary-search steps, κ-grid step 5, 256-wide robust autoencoders).
  Hours-scale on pure numpy; provided for full-fidelity runs.

Select with the ``REPRO_PROFILE`` environment variable.

``logit_scale`` calibrates the substitute classifiers' confidence scale
so the paper's κ axes ([0, 40] MNIST, [0, 100] CIFAR-10) correspond to
comparable input-space distortions (see DESIGN.md §2 and
``repro.models.classifiers.ScaledLogits``).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Tuple

#: EAD L1-regularization strengths evaluated throughout the paper.
PAPER_BETAS: Tuple[float, ...] = (1e-3, 1e-2, 5e-2, 1e-1)


@dataclasses.dataclass(frozen=True)
class ExperimentProfile:
    """All scale parameters for one reproduction run."""

    name: str
    # dataset sizes (train, val, test)
    digits_sizes: Tuple[int, int, int]
    objects_sizes: Tuple[int, int, int]
    # attack seed counts (paper: 1000 correctly classified test images)
    digits_attack: int
    objects_attack: int
    # attack optimization budget
    max_iterations: int
    binary_search_steps: int
    initial_const: float
    cw_lr: float
    ead_lr: float
    # confidence grids
    digits_kappas: Tuple[float, ...]
    objects_kappas: Tuple[float, ...]
    # EAD betas
    betas: Tuple[float, ...]
    # MagNet knobs
    wide_width: int              # stands in for the paper's 256
    ae_epochs: int
    wide_ae_epochs: int          # wide AEs converge faster; fewer epochs
    fpr_total_digits: float
    fpr_total_objects: float
    # classifier training + calibration
    classifier_epochs: int
    logit_scale_digits: float
    logit_scale_objects: float
    # kernel backend for all nn dispatches under this profile (see
    # repro.nn.backend).  The paper profile's 256-filter autoencoders are
    # conv-bound at a filter width where the FFT path wins; the smaller
    # profiles keep the bitwise-stable im2col default.
    nn_backend: str = "numpy"

    def sizes(self, dataset: str) -> Tuple[int, int, int]:
        return self.digits_sizes if dataset == "digits" else self.objects_sizes

    def n_attack(self, dataset: str) -> int:
        return self.digits_attack if dataset == "digits" else self.objects_attack

    def kappas(self, dataset: str) -> Tuple[float, ...]:
        return self.digits_kappas if dataset == "digits" else self.objects_kappas

    def fpr_total(self, dataset: str) -> float:
        return self.fpr_total_digits if dataset == "digits" else self.fpr_total_objects

    def logit_scale(self, dataset: str) -> float:
        return (self.logit_scale_digits if dataset == "digits"
                else self.logit_scale_objects)

    def config(self) -> Dict:
        return dataclasses.asdict(self)


SMOKE = ExperimentProfile(
    name="smoke",
    digits_sizes=(800, 200, 400),
    objects_sizes=(800, 200, 400),
    digits_attack=10,
    objects_attack=10,
    max_iterations=50,
    binary_search_steps=3,
    initial_const=1.0,
    cw_lr=5e-2,
    ead_lr=1e-2,
    digits_kappas=(0.0, 20.0),
    objects_kappas=(0.0, 50.0),
    betas=(1e-2, 1e-1),
    wide_width=8,
    ae_epochs=30,
    wide_ae_epochs=15,
    fpr_total_digits=0.002,
    fpr_total_objects=0.01,
    classifier_epochs=5,
    logit_scale_digits=6.0,
    logit_scale_objects=8.0,
)

QUICK = ExperimentProfile(
    name="quick",
    digits_sizes=(2000, 500, 1000),
    objects_sizes=(1800, 450, 800),
    digits_attack=32,
    objects_attack=16,
    max_iterations=150,
    binary_search_steps=4,
    initial_const=1.0,
    cw_lr=5e-2,
    ead_lr=2e-2,
    digits_kappas=(0.0, 10.0, 20.0, 30.0, 40.0),
    objects_kappas=(0.0, 30.0, 60.0, 100.0),
    betas=PAPER_BETAS,
    wide_width=16,
    ae_epochs=40,
    wide_ae_epochs=18,
    fpr_total_digits=0.002,
    fpr_total_objects=0.002,
    classifier_epochs=5,
    logit_scale_digits=5.0,
    logit_scale_objects=8.0,
)

PAPER = ExperimentProfile(
    name="paper",
    digits_sizes=(20000, 2000, 5000),
    objects_sizes=(16000, 2000, 4000),
    digits_attack=1000,
    objects_attack=1000,
    max_iterations=1000,
    binary_search_steps=9,
    initial_const=1e-3,
    cw_lr=1e-2,
    ead_lr=1e-2,
    digits_kappas=tuple(float(k) for k in range(0, 45, 5)),
    objects_kappas=tuple(float(k) for k in range(0, 105, 5)),
    betas=PAPER_BETAS,
    wide_width=256,
    ae_epochs=100,
    wide_ae_epochs=100,
    fpr_total_digits=0.001,
    fpr_total_objects=0.005,
    classifier_epochs=12,
    logit_scale_digits=5.0,
    logit_scale_objects=8.0,
    nn_backend="fft",
)

PROFILES = {p.name: p for p in (SMOKE, QUICK, PAPER)}


def current_profile() -> ExperimentProfile:
    """Resolve the active profile from $REPRO_PROFILE (default quick)."""
    name = os.environ.get("REPRO_PROFILE", "quick").lower()
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown REPRO_PROFILE={name!r}; available: {sorted(PROFILES)}"
        ) from None
