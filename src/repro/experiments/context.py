"""Shared experiment state: data, models, defenses, and cached attacks.

An :class:`ExperimentContext` binds one dataset to one profile and hands
out every artifact the table/figure experiments need.  Adversarial
examples are crafted against the *undefended* (scaled) classifier only —
the oblivious threat model — and cached on disk keyed by the classifier
fingerprint and the full attack configuration, so the ~20 experiments
share one pool of attack sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.batch import resolve_batch_mode
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.ead import DECISION_RULES, EAD
from repro.attacks.fgsm import FGSM, IterativeFGSM
from repro.datasets import load_digit_splits, load_object_splits
from repro.datasets.base import DataSplits
from repro.defenses.magnet import MagNet
from repro.defenses.variants import build_magnet
from repro.evaluation.protocol import select_attack_seeds
from repro.experiments.config import PROFILES, ExperimentProfile, current_profile
from repro.models.classifiers import ScaledLogits
from repro.models.zoo import ClassifierSpec, ModelZoo, register_model_builder
from repro.nn.backend import get_backend
from repro.nn.layers import Module
from repro.obs import span
from repro.utils.cache import DiskCache, default_cache, stable_hash
from repro.utils.logging import get_logger

log = get_logger(__name__)

_RESULT_FIELDS = ("x_adv", "success", "y_true", "y_adv",
                  "l0", "l1", "l2", "linf", "const")

#: Per-lane diagnostics (PR 6) — persisted when present, tolerated as
#: missing so artifacts cached before the batch engine still load.
_DIAG_FIELDS = ("iterations", "converged", "final_const")


def _result_to_arrays(result: AttackResult) -> Dict[str, np.ndarray]:
    arrays = {}
    for field in _RESULT_FIELDS:
        value = getattr(result, field)
        if value is None:
            value = np.full(len(result), np.nan)
        arrays[field] = np.asarray(value)
    for field in _DIAG_FIELDS:
        value = getattr(result, field)
        if value is not None:
            arrays[field] = np.asarray(value)
    return arrays


def _result_from_arrays(arrays: Dict[str, np.ndarray], name: str) -> AttackResult:
    iterations = arrays.get("iterations")
    converged = arrays.get("converged")
    return AttackResult(
        x_adv=arrays["x_adv"].astype(np.float32),
        success=arrays["success"].astype(bool),
        y_true=arrays["y_true"].astype(np.int64),
        y_adv=arrays["y_adv"].astype(np.int64),
        l0=arrays["l0"], l1=arrays["l1"], l2=arrays["l2"], linf=arrays["linf"],
        const=arrays["const"],
        name=name,
        iterations=None if iterations is None else iterations.astype(np.int64),
        converged=None if converged is None else converged.astype(bool),
        final_const=arrays.get("final_const"),
    )


class ExperimentContext:
    """One dataset + one profile: everything the experiments consume."""

    def __init__(self, dataset: str, profile: Optional[ExperimentProfile] = None,
                 cache: Optional[DiskCache] = None, seed: int = 0, *,
                 jobs: int = 1, retry_policy=None, fault_plan=None,
                 batch_mode: str = "batched", scheduler: str = "static",
                 nn_backend: Optional[str] = None):
        if dataset not in ("digits", "objects"):
            raise KeyError(f"dataset must be 'digits' or 'objects', got {dataset!r}")
        self.dataset = dataset
        self.profile = profile or current_profile()
        self.cache = cache if cache is not None else default_cache()
        self.seed = int(seed)
        #: Engine mode handed to the optimization attacks
        #: (:data:`repro.attacks.batch.BATCH_MODES`).  Like ``jobs``, an
        #: execution hint: ``per_example`` is the slow reference engine
        #: and produces equivalent results, so it is not part of the
        #: attack cache key.
        self.batch_mode = resolve_batch_mode(batch_mode)
        #: Worker processes the sweep helpers may fan attack cells out to
        #: (1 = serial).  An execution hint only: results are identical
        #: for any value.
        self.jobs = int(jobs)
        #: Fault-tolerance hints consumed by the sweep helpers, like
        #: ``jobs``: a :class:`~repro.runtime.faults.RetryPolicy`
        #: (None = the sweep default) and an optional
        #: :class:`~repro.runtime.faults.FaultPlan` for chaos runs.
        #: Neither affects *what* is computed — a faulted-but-completed
        #: sweep publishes bitwise-identical artifacts.
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        #: Executor dispatch strategy for sweeps (``"static"`` or
        #: ``"work_stealing"``).  Another pure execution hint: stealing
        #: moves cells between workers, never changes their seeds.
        self.scheduler = scheduler
        #: Kernel backend every attack dispatch pins (see
        #: :mod:`repro.nn.backend`).  ``None`` defers to the profile's
        #: ``nn_backend``.  Unlike the hints above this *can* change
        #: numerics (the FFT path is tolerance-equivalent, not bitwise),
        #: so any non-default selection becomes part of the attack cache
        #: key; the ``"numpy"`` default keys exactly as before.
        self.nn_backend = (nn_backend if nn_backend is not None
                           else getattr(self.profile, "nn_backend", "numpy"))
        get_backend(self.nn_backend)   # fail fast on unknown names
        self._splits: Optional[DataSplits] = None
        self._zoo: Optional[ModelZoo] = None
        self._classifier: Optional[Module] = None
        self._clf_fingerprint: Optional[str] = None
        self._seeds: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._magnets: Dict[str, MagNet] = {}

    # ------------------------------------------------------------------
    # Data & models
    # ------------------------------------------------------------------
    @property
    def splits(self) -> DataSplits:
        if self._splits is None:
            n_train, n_val, n_test = self.profile.sizes(self.dataset)
            loader = load_digit_splits if self.dataset == "digits" else load_object_splits
            log.info("generating %s splits (%d/%d/%d)", self.dataset,
                     n_train, n_val, n_test)
            self._splits = loader(n_train=n_train, n_val=n_val, n_test=n_test,
                                  seed=self.seed)
        return self._splits

    @property
    def zoo(self) -> ModelZoo:
        if self._zoo is None:
            self._zoo = ModelZoo(self.splits, cache=self.cache)
        return self._zoo

    def classifier_spec(self) -> ClassifierSpec:
        return ClassifierSpec(dataset=self.dataset, seed=self.seed,
                              epochs=self.profile.classifier_epochs)

    @property
    def classifier(self) -> Module:
        """The (logit-scaled) classifier both attacker and defender see."""
        if self._classifier is None:
            base = self.zoo.classifier(self.classifier_spec())
            scale = self.profile.logit_scale(self.dataset)
            self._classifier = ScaledLogits(base, scale) if scale != 1.0 else base
        return self._classifier

    @property
    def classifier_fingerprint(self) -> str:
        if self._clf_fingerprint is None:
            base = self.zoo.classifier(self.classifier_spec())
            self._clf_fingerprint = stable_hash({
                "state": base.state_dict(),
                "scale": self.profile.logit_scale(self.dataset),
            })
        return self._clf_fingerprint

    def attack_seeds(self) -> Tuple[np.ndarray, np.ndarray]:
        """The correctly-classified test images the attacks start from."""
        if self._seeds is None:
            self._seeds = select_attack_seeds(
                self.classifier, self.splits.test,
                self.profile.n_attack(self.dataset), seed=self.seed + 101)
        return self._seeds

    # ------------------------------------------------------------------
    # Defenses
    # ------------------------------------------------------------------
    def magnet(self, variant: str = "default", ae_loss: str = "mse") -> MagNet:
        """Calibrated MagNet variant wrapping the scaled classifier (memoized)."""
        key = f"{variant}/{ae_loss}"
        if key not in self._magnets:
            self._magnets[key] = build_magnet(
                self.zoo, self.dataset, variant,
                classifier=self.classifier,
                wide_width=self.profile.wide_width,
                ae_loss=ae_loss,
                ae_epochs=self.profile.ae_epochs,
                wide_ae_epochs=self.profile.wide_ae_epochs,
                fpr_total=self.profile.fpr_total(self.dataset),
                seed=self.seed,
            )
        return self._magnets[key]

    # ------------------------------------------------------------------
    # Cached attacks (all against the undefended classifier)
    # ------------------------------------------------------------------
    def _attack_key(self, spec: Dict) -> str:
        key = {
            "clf": self.classifier_fingerprint,
            "n_attack": self.profile.n_attack(self.dataset),
            "seed": self.seed,
            "spec": spec,
        }
        # Non-default backends change numerics (tolerance-equivalent,
        # not bitwise), so they get their own cache entries.  The numpy
        # default is deliberately left out of the key — artifacts cached
        # before the backend API existed stay valid.
        if self.nn_backend != "numpy":
            key["nn_backend"] = self.nn_backend
        return stable_hash(key)

    def _cached_attack(self, spec: Dict, name: str, run) -> AttackResult:
        key = self._attack_key(spec)
        with span(f"cell/{spec['attack']}", dataset=self.dataset,
                               batch=self.profile.n_attack(self.dataset)) as evt:
            try:
                result = _result_from_arrays(
                    self.cache.load("attacks", key), name)
                evt["cache"] = "hit"
                return result
            except KeyError:
                pass
            evt["cache"] = "miss"
            log.info("crafting %s on %s (%s profile)", name, self.dataset,
                     self.profile.name)
            result = run()
            self.cache.save("attacks", key, _result_to_arrays(result),
                            meta={"name": name, "spec": spec})
            return result

    def cw(self, kappa: float) -> AttackResult:
        """C&W-L2 at confidence κ (disk-cached)."""

        def run():
            x0, y0 = self.attack_seeds()
            attack = CarliniWagnerL2.from_profile(
                self.classifier, self.profile, kappa=kappa,
                batch_mode=self.batch_mode, backend=self.nn_backend)
            return attack.attack(x0, y0)

        return self._cached_attack(self._cw_spec(kappa),
                                   f"cw_l2(kappa={kappa:g})", run)

    def _cw_spec(self, kappa: float) -> Dict:
        p = self.profile
        return {"attack": "cw_l2", "kappa": float(kappa),
                "iters": p.max_iterations, "bsearch": p.binary_search_steps,
                "c0": p.initial_const, "lr": p.cw_lr}

    def ead(self, beta: float, kappa: float) -> Dict[str, AttackResult]:
        """EAD at (β, κ); returns both decision rules from one cached run."""
        results = {}
        missing = []
        with span("cell/ead", dataset=self.dataset,
                               batch=self.profile.n_attack(self.dataset)) as evt:
            for rule in DECISION_RULES:
                spec = self._ead_spec(beta, kappa, rule)
                key = self._attack_key(spec)
                try:
                    arrays = self.cache.load("attacks", key)
                    results[rule] = _result_from_arrays(
                        arrays, f"ead_{rule}(beta={beta:g}, kappa={kappa:g})")
                except KeyError:
                    missing.append(rule)
            evt["cache"] = "miss" if missing else "hit"
            if missing:
                log.info("crafting EAD beta=%g kappa=%g on %s (%s profile)",
                         beta, kappa, self.dataset, self.profile.name)
                x0, y0 = self.attack_seeds()
                attack = EAD.from_profile(self.classifier, self.profile,
                                          beta=beta, kappa=kappa,
                                          batch_mode=self.batch_mode,
                                          backend=self.nn_backend)
                both = attack.attack_both(x0, y0)
                for rule in DECISION_RULES:
                    spec = self._ead_spec(beta, kappa, rule)
                    self.cache.save("attacks", self._attack_key(spec),
                                    _result_to_arrays(both[rule]),
                                    meta={"name": both[rule].name, "spec": spec})
                    results[rule] = both[rule]
        return results

    def _ead_spec(self, beta: float, kappa: float, rule: str) -> Dict:
        p = self.profile
        return {"attack": "ead", "beta": float(beta), "kappa": float(kappa),
                "rule": rule, "iters": p.max_iterations,
                "bsearch": p.binary_search_steps, "c0": p.initial_const,
                "lr": p.ead_lr}

    def fgsm(self, epsilon: float = 0.1) -> AttackResult:
        """FGSM baseline (disk-cached)."""
        spec = {"attack": "fgsm", "eps": float(epsilon)}

        def run():
            x0, y0 = self.attack_seeds()
            return FGSM(self.classifier, epsilon=epsilon,
                        backend=self.nn_backend).attack(x0, y0)

        return self._cached_attack(spec, f"fgsm(eps={epsilon:g})", run)

    def ifgsm(self, epsilon: float = 0.1, steps: int = 10) -> AttackResult:
        """Iterative FGSM baseline (disk-cached)."""
        spec = {"attack": "ifgsm", "eps": float(epsilon), "steps": int(steps)}

        def run():
            x0, y0 = self.attack_seeds()
            return IterativeFGSM(self.classifier, epsilon=epsilon, steps=steps,
                                 backend=self.nn_backend).attack(x0, y0)

        return self._cached_attack(spec, f"ifgsm(eps={epsilon:g})", run)

    def deepfool(self, max_iterations: int = 30) -> AttackResult:
        """DeepFool baseline (disk-cached)."""
        spec = {"attack": "deepfool", "iters": int(max_iterations)}

        def run():
            x0, y0 = self.attack_seeds()
            return DeepFool(self.classifier, max_iterations=max_iterations,
                            backend=self.nn_backend).attack(x0, y0)

        return self._cached_attack(spec, "deepfool", run)


# ----------------------------------------------------------------------
# Serving integration: a picklable zoo-backed MagNet builder
# ----------------------------------------------------------------------
def build_served_magnet(dataset: str, variant: str = "default",
                        ae_loss: str = "mse", profile: str = "quick",
                        cache_dir: Optional[str] = None,
                        seed: int = 0) -> MagNet:
    """Build one calibrated zoo MagNet variant for a serving worker.

    Module-level and keyword-driven so a
    :class:`~repro.serving.router.ModelSpec` can carry it (or its
    catalog name ``"zoo-magnet"``) into spawn-started worker processes.
    With a warm cache directory this loads weights instead of training,
    so every worker reconstructs bitwise-identical models.
    """
    profile_obj = PROFILES[profile] if isinstance(profile, str) else profile
    cache = DiskCache(cache_dir) if cache_dir else None
    ctx = ExperimentContext(dataset, profile_obj, cache=cache, seed=seed)
    return ctx.magnet(variant, ae_loss=ae_loss)


register_model_builder("zoo-magnet", build_served_magnet)
