"""Command-line experiment runner.

Usage::

    python -m repro.experiments list            # show experiment ids
    python -m repro.experiments table1          # run one reproduction
    python -m repro.experiments all             # run everything in order
    REPRO_PROFILE=smoke python -m repro.experiments fig2

Reports print to stdout; trained models and attack sweeps are cached
under .repro_cache (override with REPRO_CACHE_DIR).
"""

from __future__ import annotations

import sys

from repro.experiments.registry import (
    EXPERIMENT_IDS,
    describe_experiments,
    run_experiment,
)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    target = argv[0]
    if target == "list":
        for exp_id, desc in describe_experiments().items():
            print(f"{exp_id:<8} {desc}")
        return 0
    exp_ids = list(EXPERIMENT_IDS) if target == "all" else [target]
    for exp_id in exp_ids:
        report = run_experiment(exp_id)
        print(report)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
