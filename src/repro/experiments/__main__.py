"""Command-line experiment runner.

Usage::

    python -m repro.experiments list                   # show experiment ids
    python -m repro.experiments run table1             # run one reproduction
    python -m repro.experiments run all --jobs 4       # everything, 4 workers
    python -m repro.experiments run fig2 --profile smoke --seed 1
    python -m repro.experiments scenarios list         # threat-model grid
    python -m repro.experiments scenarios run --threat-model bpda --resume
    python -m repro.experiments timings                # per-stage wall-clock
    python -m repro.experiments trace                  # span-tree report
    python -m repro.experiments serve --port 8080      # online inference

``scenarios`` drives the :mod:`repro.scenarios` registry — the
threat-model × attack × defense grid around the defended MagNet
pipeline (oblivious / transfer / gray-box / BPDA / detector-aware,
plus non-adversarial corruption rows).  ``scenarios list`` enumerates
the registry (axis filters: ``--dataset``, ``--variant``,
``--threat-model``, ``--attack``, ``--workload``); ``scenarios run``
executes the selected cells through the checkpointed parallel sweep
runner and prints the per-cell table plus the adaptive-vs-oblivious
gain summary.

``serve`` starts the micro-batching HTTP inference service over the
defended pipeline (``repro.serving``): concurrent ``POST /predict``
requests are coalesced into batches (``--max-batch``/``--max-wait-ms``)
with bounded admission (``--max-queue``, HTTP 429 beyond it); see
``GET /healthz`` and ``GET /stats`` for liveness and latency
percentiles, and ``GET /metrics`` for Prometheus-format counters.

``trace`` reassembles the hierarchical span tree recorded by
:mod:`repro.obs` (sweep → cell → attack → binary-search step; request →
micro-batch → pipeline stage) from the same JSONL log that ``timings``
aggregates flat, with per-span total/self times.

``run`` accepts ``--profile`` (smoke|quick|paper), ``--jobs`` (worker
processes; 0 = one per core, negative values rejected), ``--cache-dir``,
``--seed`` and ``--telemetry`` (JSONL event log, default
``<cache-dir>/telemetry.jsonl``).  Sweeps are fault-tolerant and
checkpointed: ``--resume`` continues an interrupted run from its
checkpoint manifest (recomputing only missing or corrupt cells),
``--timeout``/``--retries`` tune the per-cell watchdog and retry budget,
and ``--inject-faults "seed=1,crash=0.05,timeout=0.02,transient=0.1"``
runs deterministic chaos against the runtime itself.  The bare form
``python -m repro.experiments table1`` still works as an alias for
``run table1``.

``run`` and ``scenarios run`` also expose the storage/scheduling layer
(``repro.runtime.store``): ``--store-shards N`` sets the shard fan-out
of the content-addressed artifact store, ``--store-max-bytes SIZE``
(plain bytes or ``512M``/``2G``-style suffixes) bounds it with LRU
eviction, and ``--scheduler {static,work_stealing}`` picks the
executor's dispatch strategy — work stealing keeps workers dense when
high-κ cells straggle, with identical published artifacts.

``run``, ``scenarios run`` and ``serve`` take ``--nn-backend
{numpy,fft,buffered}`` to pin the kernel backend for every
conv/pool/elementwise dispatch (default: the profile's ``nn_backend`` —
``numpy`` for smoke/quick, ``fft`` for paper; see
``docs/nn_backends.md``).  ``numpy`` and ``buffered`` are bitwise
interchangeable; ``fft`` is tolerance-equivalent, so non-default
selections get their own attack-cache entries.

The ``REPRO_PROFILE`` / ``REPRO_CACHE_DIR`` environment variables remain
supported as fallbacks for scripts that predate these flags, but are
deprecated — prefer the explicit flags.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import warnings
from typing import List, Optional

from repro.experiments.config import PROFILES
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    describe_experiments,
    run_experiment,
)
from repro.nn.backend import available_backends, set_default_backend
from repro.obs import (
    configure_observability,
    load_events,
    render_timings,
    render_trace,
)
from repro.runtime.faults import FaultPlan, RetryPolicy
from repro.utils.cache import DiskCache
from repro.utils.logging import get_logger

log = get_logger(__name__)

_COMMANDS = ("run", "list", "timings", "trace", "serve", "scenarios")

_DEFAULT_TELEMETRY_NAME = "telemetry.jsonl"


def _deprecated_env(var: str, flag: str) -> Optional[str]:
    """Read a legacy env var, warning that the flag replaces it."""
    value = os.environ.get(var)
    if value:
        warnings.warn(
            f"{var} is deprecated; pass {flag} to "
            "`python -m repro.experiments` instead",
            DeprecationWarning, stacklevel=3)
        log.warning("%s is deprecated — use %s", var, flag)
    return value


def _jobs_arg(value: str) -> int:
    """argparse type for --jobs: integer >= 0 (0 = one per core)."""
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = one worker per core), got {jobs}; "
            "there is no '-1 means all cores' convention")
    return jobs


def _fault_plan_arg(value: str) -> FaultPlan:
    """argparse type for --inject-faults: a FaultPlan spec string."""
    try:
        return FaultPlan.parse(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}


def _bytes_arg(value: str) -> int:
    """argparse type for --store-max-bytes: bytes, with K/M/G/T suffixes."""
    text = value.strip().lower().rstrip("b")
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        amount = int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a size like 1048576, 512M or 2G, got {value!r}")
    if amount <= 0:
        raise argparse.ArgumentTypeError(
            f"--store-max-bytes must be positive, got {value!r}")
    return amount


def _nn_backend_flag(p: argparse.ArgumentParser) -> None:
    """--nn-backend flag shared by run / scenarios run / serve."""
    p.add_argument("--nn-backend", choices=available_backends(),
                   default=None,
                   help="kernel backend for conv/pool/elementwise "
                        "dispatches (see repro.nn.backend; default: the "
                        "profile's nn_backend — numpy for smoke/quick, "
                        "fft for paper)")


def _store_flags(p: argparse.ArgumentParser) -> None:
    """Artifact-store and scheduler flags shared by run/scenarios run."""
    p.add_argument("--store-shards", type=int, default=256, metavar="N",
                   help="shard fan-out of the content-addressed artifact "
                        "store (default 256)")
    p.add_argument("--store-max-bytes", type=_bytes_arg, default=None,
                   metavar="SIZE",
                   help="bound stored artifact bytes with LRU eviction; "
                        "accepts K/M/G/T suffixes (default: unbounded)")
    p.add_argument("--scheduler", choices=("static", "work_stealing"),
                   default="static",
                   help="sweep dispatch strategy: static pre-chunking or "
                        "a work-stealing deque (identical results; "
                        "stealing keeps workers dense under skewed cell "
                        "costs)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser(
        "run", help="run one or more experiments (or 'all')",
        description="Run table/figure reproductions by id.")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                     help=f"experiment ids or 'all'; ids: {', '.join(EXPERIMENT_IDS)}")
    run.add_argument("--profile", choices=sorted(PROFILES),
                     help="scale profile (default: quick, or deprecated "
                          "$REPRO_PROFILE)")
    run.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                     help="worker processes for attack sweeps "
                          "(1 = serial, 0 = one per core, negative "
                          "rejected, huge values clamped to 4x cores; "
                          "default 1)")
    run.add_argument("--resume", action="store_true",
                     help="continue an interrupted sweep from its "
                          "checkpoint manifest: load-verify cached cells "
                          "and recompute only missing/corrupt/failed ones")
    run.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-attack-cell timeout in seconds, enforced "
                          "by a SIGALRM watchdog inside the worker "
                          "(default: none)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry budget per attack cell before it is "
                          "recorded as a terminal failure (default 2)")
    run.add_argument("--inject-faults", type=_fault_plan_arg, default=None,
                     metavar="SPEC",
                     help="chaos mode: deterministic fault injection, e.g. "
                          "'seed=1,crash=0.05,timeout=0.02,transient=0.1"
                          ",corrupt=0.05,hang=120' (rates per sweep cell)")
    run.add_argument("--cache-dir", metavar="DIR",
                     help="artifact cache root (default: .repro_cache, or "
                          "deprecated $REPRO_CACHE_DIR)")
    run.add_argument("--seed", type=int, default=0,
                     help="root experiment seed (default 0)")
    run.add_argument("--telemetry", metavar="PATH",
                     help="JSONL event log (default: "
                          "<cache-dir>/telemetry.jsonl; 'off' disables)")
    _nn_backend_flag(run)
    _store_flags(run)

    sub.add_parser("list", help="show experiment ids",
                   description="List every experiment id with a description.")

    scenarios = sub.add_parser(
        "scenarios", help="enumerate or run the threat-model scenario grid",
        description="Drive the repro.scenarios registry: the threat-model "
                    "× attack × defense grid against the defended MagNet "
                    "pipeline.")
    scen_sub = scenarios.add_subparsers(dest="scenario_command")

    def _axis_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", action="append", metavar="NAME",
                       help="restrict to a dataset (repeatable)")
        p.add_argument("--variant", action="append", metavar="NAME",
                       help="restrict to a MagNet defense variant "
                            "(repeatable)")
        p.add_argument("--threat-model", action="append", metavar="NAME",
                       help="restrict to a threat model (oblivious, "
                            "transfer, graybox, bpda, detector_aware, "
                            "corruption; repeatable)")
        p.add_argument("--attack", action="append", metavar="NAME",
                       help="restrict to an attack family or corruption "
                            "(repeatable)")
        p.add_argument("--workload", action="append",
                       metavar="NAME",
                       help="restrict to a workload (adversarial or "
                            "corruption; repeatable)")

    scen_list = scen_sub.add_parser(
        "list", help="enumerate registered scenarios",
        description="List scenario ids matching the axis filters, plus an "
                    "axes summary.")
    _axis_flags(scen_list)

    scen_run = scen_sub.add_parser(
        "run", help="run the selected scenario cells",
        description="Execute the selected cells through the checkpointed "
                    "parallel sweep runner and print the per-cell report.")
    _axis_flags(scen_run)
    scen_run.add_argument("--profile", choices=sorted(PROFILES),
                          help="scale profile (default: quick)")
    scen_run.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                          help="worker processes (1 = serial, 0 = one per "
                               "core; default 1)")
    scen_run.add_argument("--resume", action="store_true",
                          help="continue an interrupted sweep from its "
                               "checkpoint manifest (load-verify cached "
                               "cells, recompute missing/corrupt ones)")
    scen_run.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="per-cell timeout in seconds (default: none)")
    scen_run.add_argument("--retries", type=int, default=None, metavar="N",
                          help="retry budget per cell (default 2)")
    scen_run.add_argument("--inject-faults", type=_fault_plan_arg,
                          default=None, metavar="SPEC",
                          help="chaos mode: deterministic fault injection "
                               "(same spec syntax as 'run')")
    scen_run.add_argument("--cache-dir", metavar="DIR",
                          help="artifact cache root (default: .repro_cache)")
    scen_run.add_argument("--seed", type=int, default=0,
                          help="root sweep seed (default 0)")
    scen_run.add_argument("--telemetry", metavar="PATH",
                          help="JSONL event log (default: "
                               "<cache-dir>/telemetry.jsonl; 'off' "
                               "disables)")
    _nn_backend_flag(scen_run)
    _store_flags(scen_run)

    serve = sub.add_parser(
        "serve", help="run the online MagNet inference service over HTTP",
        description="Serve the defended pipeline: coalesce concurrent "
                    "/predict requests into micro-batches through one "
                    "batched MagNet pass. Endpoints: POST /predict, "
                    "GET /healthz, GET /stats.")
    serve.add_argument("--dataset", choices=("digits", "objects"),
                       default="digits", help="dataset whose models to serve")
    serve.add_argument("--variant", default="default",
                       help="MagNet variant (default: 'default')")
    serve.add_argument("--ae-loss", default="mse", choices=("mse", "mae"),
                       help="autoencoder training loss (default mse)")
    serve.add_argument("--profile", choices=sorted(PROFILES),
                       help="scale profile for the served models "
                            "(default: quick)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = ephemeral; the bound port is "
                            "printed on startup)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="flush a micro-batch at this many requests "
                            "(default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=5.0, metavar="MS",
                       help="flush when the oldest queued request is this "
                            "old (default 5)")
    serve.add_argument("--max-queue", type=int, default=256, metavar="N",
                       help="admission bound: reject (HTTP 429) beyond this "
                            "queue depth (default 256)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker threads draining the queue; with "
                            "--models these are OS-process cluster workers "
                            "(default 1)")
    serve.add_argument("--models", metavar="V1,V2,...",
                       help="comma-separated MagNet variants to route by "
                            "the /predict 'model' field (starts the "
                            "multi-process cluster; overrides --variant)")
    serve.add_argument("--adaptive-wait", action="store_true",
                       help="AIMD-tune each tenant's max_wait_ms from its "
                            "live queue-depth gauge (bounds: "
                            "[--min-wait-ms, --max-wait-ms])")
    serve.add_argument("--min-wait-ms", type=float, default=0.25,
                       metavar="MS",
                       help="adaptive-wait lower bound (default 0.25)")
    serve.add_argument("--max-requests", type=int, default=None, metavar="N",
                       help="exit after serving N requests (smoke/testing; "
                            "default: run until interrupted)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache root (default: .repro_cache)")
    serve.add_argument("--seed", type=int, default=0,
                       help="model seed (default 0)")
    serve.add_argument("--telemetry", metavar="PATH",
                       help="JSONL event log (default: "
                            "<cache-dir>/telemetry.jsonl; 'off' disables)")
    _nn_backend_flag(serve)

    timings = sub.add_parser(
        "timings", help="per-stage wall-clock report from the telemetry log",
        description="Aggregate a telemetry JSONL log into a per-stage "
                    "wall-clock table.")
    timings.add_argument("--telemetry", metavar="PATH",
                         help="JSONL log to read (default: "
                              "<cache-dir>/telemetry.jsonl)")
    timings.add_argument("--cache-dir", metavar="DIR",
                         help="cache root holding the default telemetry log")

    trace = sub.add_parser(
        "trace", help="hierarchical span-tree report from the telemetry log",
        description="Reassemble the span tree recorded by repro.obs and "
                    "render it with per-span total/self wall-clock times.")
    trace.add_argument("--telemetry", metavar="PATH",
                       help="JSONL log to read (default: "
                            "<cache-dir>/telemetry.jsonl)")
    trace.add_argument("--cache-dir", metavar="DIR",
                       help="cache root holding the default telemetry log")
    trace.add_argument("--max-depth", type=int, default=None, metavar="N",
                       help="truncate the tree below this depth")
    trace.add_argument("--no-collapse", action="store_true",
                       help="show every span instead of collapsing "
                            "repeated same-name siblings into one xN line")
    return parser


def _resolve_cache_dir(flag_value: Optional[str]) -> str:
    if flag_value:
        return flag_value
    return _deprecated_env("REPRO_CACHE_DIR", "--cache-dir") or ".repro_cache"


def _resolve_profile(flag_value: Optional[str]):
    name = flag_value or _deprecated_env("REPRO_PROFILE", "--profile") or "quick"
    name = name.lower()
    if name not in PROFILES:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[name]


def _resolve_nn_backend(flag_value: Optional[str], profile) -> str:
    """Kernel backend selection: flag wins, else the profile's.

    Also installs the selection as the process-wide default so model
    *training* (the zoo) runs on the same backend as the attacks; pool
    workers inherit it through the executor's payloads.
    """
    name = flag_value or getattr(profile, "nn_backend", "numpy")
    set_default_backend(name)
    return name


def _telemetry_path(flag_value: Optional[str], cache_dir: str) -> Optional[str]:
    if flag_value == "off":
        return None
    if flag_value:
        return flag_value
    env = os.environ.get("REPRO_TELEMETRY")
    if env:
        return env
    return os.path.join(cache_dir, _DEFAULT_TELEMETRY_NAME)


def _cmd_run(args: argparse.Namespace) -> int:
    profile = _resolve_profile(args.profile)
    cache_dir = _resolve_cache_dir(args.cache_dir)

    exp_ids: List[str] = []
    for target in args.experiments:
        if target == "all":
            exp_ids.extend(EXPERIMENT_IDS)
        else:
            exp_ids.append(target)
    # Validate before enabling the process-global telemetry sink, so a
    # typo'd id leaves no environment side effects behind.
    for exp_id in exp_ids:
        if exp_id not in EXPERIMENT_IDS:
            raise KeyError(f"unknown experiment {exp_id!r}; available: "
                           f"{sorted(EXPERIMENT_IDS)}")

    retry_policy = None
    if args.timeout is not None or args.retries is not None:
        from repro.experiments.sweeps import SWEEP_RETRY_POLICY

        retry_policy = RetryPolicy(
            timeout_s=args.timeout,
            retries=(SWEEP_RETRY_POLICY.retries if args.retries is None
                     else args.retries),
            backoff_s=SWEEP_RETRY_POLICY.backoff_s)
    if args.inject_faults is not None:
        log.warning("chaos mode enabled: %s", args.inject_faults.describe())

    cache = DiskCache(cache_dir, shards=args.store_shards,
                      max_bytes=args.store_max_bytes)
    configure_observability(_telemetry_path(args.telemetry, cache_dir))
    nn_backend = _resolve_nn_backend(args.nn_backend, profile)
    for exp_id in exp_ids:
        report = run_experiment(exp_id, profile=profile, cache=cache,
                                seed=args.seed, jobs=args.jobs,
                                resume=args.resume,
                                retry_policy=retry_policy,
                                fault_plan=args.inject_faults,
                                scheduler=args.scheduler,
                                nn_backend=nn_backend)
        print(report)
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.context import ExperimentContext
    from repro.serving import InferenceService, ServingConfig, serve_in_thread

    profile = _resolve_profile(args.profile)
    cache_dir = _resolve_cache_dir(args.cache_dir)
    configure_observability(_telemetry_path(args.telemetry, cache_dir))
    _resolve_nn_backend(args.nn_backend, profile)

    if args.models:
        return _serve_cluster(args, profile, cache_dir)

    ctx = ExperimentContext(args.dataset, profile=profile,
                            cache=DiskCache(cache_dir), seed=args.seed)
    log.info("loading %s/%s models (%s profile) ...", args.dataset,
             args.variant, profile.name)
    magnet = ctx.magnet(args.variant, ae_loss=args.ae_loss)
    config = ServingConfig(max_batch=args.max_batch,
                           max_wait_ms=args.max_wait_ms,
                           max_queue=args.max_queue,
                           workers=args.workers,
                           adaptive_wait=args.adaptive_wait,
                           min_wait_ms=args.min_wait_ms)

    with InferenceService(magnet, config) as service:
        server, _ = serve_in_thread(service, args.host, args.port)
        host, port = server.server_address[:2]
        print(f"serving {args.dataset}/{args.variant} on http://{host}:{port} "
              f"(max_batch={config.max_batch}, "
              f"max_wait_ms={config.max_wait_ms:g}, "
              f"max_queue={config.max_queue})", flush=True)
        try:
            while True:
                time.sleep(0.2)
                if (args.max_requests is not None
                        and service.stats.completed >= args.max_requests):
                    log.info("served %d requests (--max-requests), exiting",
                             service.stats.completed)
                    break
                if not service.healthy():
                    log.error("service became unhealthy, exiting")
                    return 1
        except KeyboardInterrupt:
            print("interrupted, draining ...", flush=True)
        finally:
            server.shutdown()
            server.server_close()
    return 0


def _serve_cluster(args: argparse.Namespace, profile, cache_dir) -> int:
    """``serve --models v1,v2``: the multi-process multi-tenant cluster."""
    from repro.experiments.context import ExperimentContext, build_served_magnet
    from repro.serving import (
        ClusterConfig,
        ClusterService,
        ModelSpec,
        ServingConfig,
        serve_in_thread,
    )

    variants = [v.strip() for v in args.models.split(",") if v.strip()]
    if not variants:
        log.error("--models needs at least one variant")
        return 2
    # Warm the cache in-process first so every worker loads (never
    # re-trains) bitwise-identical weights.
    ctx = ExperimentContext(args.dataset, profile=profile,
                            cache=DiskCache(cache_dir), seed=args.seed)
    input_shape = tuple(ctx.splits.test.x.shape[1:])
    tenant_config = ServingConfig(max_batch=args.max_batch,
                                  max_wait_ms=args.max_wait_ms,
                                  max_queue=args.max_queue,
                                  adaptive_wait=args.adaptive_wait,
                                  min_wait_ms=args.min_wait_ms)
    specs = []
    for variant in variants:
        log.info("warming %s/%s models (%s profile) ...", args.dataset,
                 variant, profile.name)
        ctx.magnet(variant, ae_loss=args.ae_loss)
        specs.append(ModelSpec(
            model_id=variant, builder=build_served_magnet,
            builder_kwargs={"dataset": args.dataset, "variant": variant,
                            "ae_loss": args.ae_loss,
                            "profile": profile.name,
                            "cache_dir": str(cache_dir),
                            "seed": args.seed},
            input_shape=input_shape, config=tenant_config))

    cluster_config = ClusterConfig(workers=args.workers)
    with ClusterService(specs, cluster_config) as cluster:
        cluster.wait_ready(timeout=600.0)
        server, _ = serve_in_thread(cluster, args.host, args.port)
        host, port = server.server_address[:2]
        print(f"serving {args.dataset} x {variants} on http://{host}:{port} "
              f"({cluster_config.workers} workers, max_batch="
              f"{tenant_config.max_batch}, adaptive_wait="
              f"{tenant_config.adaptive_wait})", flush=True)
        try:
            while True:
                time.sleep(0.2)
                snap = cluster.stats_snapshot()
                if (args.max_requests is not None
                        and snap["requests"]["completed"]
                        >= args.max_requests):
                    log.info("served %d requests (--max-requests), exiting",
                             snap["requests"]["completed"])
                    break
                if not cluster.healthy():
                    log.error("cluster became unhealthy, exiting")
                    return 1
        except KeyboardInterrupt:
            print("interrupted, draining ...", flush=True)
        finally:
            server.shutdown()
            server.server_close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    path = _telemetry_path(args.telemetry, cache_dir)
    events = load_events(path) if path else []
    if not events:
        print(f"no telemetry events found at {path}")
        print("run experiments first: python -m repro.experiments run all")
        return 1
    print(f"telemetry: {path} ({len(events)} events)")
    print()
    print(render_trace(events, collapse=not args.no_collapse,
                       max_depth=args.max_depth))
    return 0


def _cmd_list() -> int:
    for exp_id, desc in describe_experiments().items():
        print(f"{exp_id:<8} {desc}")
    return 0


def _selected_scenarios(args: argparse.Namespace):
    """Registry scenarios matching the CLI axis filters."""
    from repro.scenarios import default_registry

    def axis(values):
        return tuple(values) if values else None

    registry = default_registry()
    return registry, registry.select(
        dataset=axis(args.dataset),
        defense_variant=axis(args.variant),
        threat_model=axis(args.threat_model),
        attack=axis(args.attack),
        workload=axis(args.workload))


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    registry, selected = _selected_scenarios(args)
    for scenario in selected:
        print(scenario.scenario_id)
    print()
    print(f"{len(selected)} of {len(registry)} scenarios selected; axes:")
    for axis, values in registry.axes().items():
        print(f"  {axis:<16} {', '.join(values)}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.experiments.context import ExperimentContext
    from repro.scenarios import (
        adaptive_gain,
        outcomes_table,
        render_table,
        run_scenarios,
    )
    from repro.scenarios.runner import SCENARIO_RETRY_POLICY

    registry, selected = _selected_scenarios(args)
    if not selected:
        print("no scenarios match the given filters")
        return 1

    profile = _resolve_profile(args.profile)
    cache_dir = _resolve_cache_dir(args.cache_dir)
    configure_observability(_telemetry_path(args.telemetry, cache_dir))

    policy = None
    if args.timeout is not None or args.retries is not None:
        policy = RetryPolicy(
            timeout_s=args.timeout,
            retries=(SCENARIO_RETRY_POLICY.retries if args.retries is None
                     else args.retries),
            backoff_s=SCENARIO_RETRY_POLICY.backoff_s)

    cache = DiskCache(cache_dir, shards=args.store_shards,
                      max_bytes=args.store_max_bytes)
    nn_backend = _resolve_nn_backend(args.nn_backend, profile)
    cells = registry.expand(args.seed, scenarios=selected)
    contexts = {
        dataset: ExperimentContext(dataset, profile=profile, cache=cache,
                                   seed=args.seed,
                                   scheduler=args.scheduler,
                                   nn_backend=nn_backend)
        for dataset in sorted({c.scenario.dataset for c in cells})
    }
    log.info("running %d scenario cells (%s profile, %d dataset(s))",
             len(cells), profile.name, len(contexts))
    if args.inject_faults is not None:
        log.warning("chaos mode enabled: %s", args.inject_faults.describe())
    outcomes = run_scenarios(cells, contexts, jobs=args.jobs,
                             resume=args.resume, policy=policy,
                             fault_plan=args.inject_faults,
                             scheduler=args.scheduler)

    print(render_table(outcomes_table(outcomes)))
    gains = adaptive_gain(outcomes)
    if gains:
        print()
        print("adaptive gain over the oblivious baseline:")
        print(render_table(gains, columns=(
            "dataset", "defense_variant", "attack", "threat_model",
            "baseline_asr", "adaptive_asr", "gain")))
    missing = len(cells) - len(outcomes)
    if missing:
        print()
        print(f"warning: {missing} cell(s) failed; rerun with --resume")
        return 1
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        return _cmd_scenarios_list(args)
    if args.scenario_command == "run":
        return _cmd_scenarios_run(args)
    print("usage: python -m repro.experiments scenarios {list,run} [...]")
    return 2


def _cmd_timings(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    path = _telemetry_path(args.telemetry, cache_dir)
    events = load_events(path) if path else []
    if not events:
        print(f"no telemetry events found at {path}")
        print("run experiments first: python -m repro.experiments run all")
        return 1
    print(f"telemetry: {path} ({len(events)} events)")
    print()
    print(render_timings(events))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    # Legacy alias: `python -m repro.experiments table1` == `run table1`.
    if argv[0] not in _COMMANDS and not argv[0].startswith("-"):
        argv = ["run"] + argv
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "timings":
        return _cmd_timings(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    print(__doc__)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
