"""repro — reproduction of "On the Limitation of MagNet Defense against
L1-based Adversarial Examples" (Lu, Chen, Chen & Yu, DSN 2018).

The package layers, bottom to top:

* :mod:`repro.nn` — a from-scratch numpy autodiff / neural-network
  framework (the substrate replacing TensorFlow);
* :mod:`repro.datasets` — procedurally generated MNIST / CIFAR-10
  stand-ins (the environment is offline);
* :mod:`repro.models` — classifier and MagNet-autoencoder zoo with
  disk-cached training;
* :mod:`repro.defenses` — MagNet: reconstruction-error and JSD detectors,
  the reformer, and the paper's robust variants;
* :mod:`repro.attacks` — EAD (the paper's L1 attack), C&W-L2, FGSM,
  I-FGSM and DeepFool;
* :mod:`repro.evaluation` — the oblivious transfer-attack protocol and
  metrics;
* :mod:`repro.experiments` — one runnable reproduction per paper table
  (I–VII) and figure (1–13).

Quickstart::

    from repro.experiments import run_experiment
    print(run_experiment("table1"))
"""

__version__ = "1.0.0"

from repro import attacks, datasets, defenses, evaluation, experiments, models, nn
from repro.experiments import run_experiment

__all__ = [
    "__version__",
    "attacks",
    "datasets",
    "defenses",
    "evaluation",
    "experiments",
    "models",
    "nn",
    "run_experiment",
]
