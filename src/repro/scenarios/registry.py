"""Declarative scenario registry.

A :class:`Scenario` is one evaluation cell: a threat model, an attack
(or corruption) inside it, a :mod:`repro.defenses.variants` MagNet
configuration, and a dataset.  The registry collects scenarios from
eager :meth:`~ScenarioRegistry.add` calls and lazy
:meth:`~ScenarioRegistry.generator` functions, enumerates them with
axis filters, and expands them into seed-stable sweep cells: a cell's
seed depends only on the root seed and the scenario's id, never on
registration order or on which subset of the registry is selected — so
a filtered run and a full run agree bitwise on their shared cells.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.datasets.corruptions import CORRUPTIONS
from repro.utils.cache import stable_hash

#: How much the attacker knows, orderered weakest to strongest; plus the
#: non-adversarial corruption workload as its own row.
THREAT_MODELS = ("oblivious", "transfer", "graybox", "bpda",
                 "detector_aware", "corruption")

#: Attack families available to the adversarial threat models.
ATTACK_FAMILIES = ("ead_l1", "ead_en", "cw")

WORKLOADS = ("adversarial", "corruption")

_DATASETS = ("digits", "objects")

ParamValue = float  # scenario params are numeric knobs (kappa, severity, ...)


@dataclasses.dataclass(frozen=True, order=True)
class Scenario:
    """One evaluation cell of the threat-model × attack × defense grid.

    ``params`` is a sorted tuple of ``(name, value)`` pairs (hashable,
    so scenarios can live in sets/dict keys); use
    :meth:`Scenario.create` to pass them as keyword arguments.  For
    ``workload="corruption"`` the ``attack`` field names the corruption
    and ``params`` carries its ``severity``.
    """

    dataset: str
    defense_variant: str
    threat_model: str
    attack: str
    workload: str = "adversarial"
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self):
        if self.dataset not in _DATASETS:
            raise ValueError(
                f"dataset must be one of {_DATASETS}, got {self.dataset!r}")
        if self.threat_model not in THREAT_MODELS:
            raise ValueError(
                f"threat_model must be one of {THREAT_MODELS}, "
                f"got {self.threat_model!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}")
        if (self.workload == "corruption") != (self.threat_model == "corruption"):
            raise ValueError(
                "corruption workload and corruption threat model imply each "
                f"other; got workload={self.workload!r}, "
                f"threat_model={self.threat_model!r}")
        if self.workload == "corruption":
            if self.attack not in CORRUPTIONS:
                raise ValueError(
                    f"unknown corruption {self.attack!r}; "
                    f"available: {sorted(CORRUPTIONS)}")
        elif self.attack not in ATTACK_FAMILIES:
            raise ValueError(
                f"attack must be one of {ATTACK_FAMILIES}, got {self.attack!r}")

    @classmethod
    def create(cls, dataset: str, defense_variant: str, threat_model: str,
               attack: str, workload: str = "adversarial",
               **params: ParamValue) -> "Scenario":
        """Build a scenario with params as keyword arguments."""
        return cls(dataset=dataset, defense_variant=defense_variant,
                   threat_model=threat_model, attack=attack,
                   workload=workload,
                   params=tuple(sorted(params.items())))

    @property
    def params_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)

    @property
    def scenario_id(self) -> str:
        """Canonical id: every axis plus the sorted params.

        Doubles as the human-readable row key in manifests and reports,
        e.g. ``digits/jsd/detector_aware/ead_l1;kappa=1``.
        """
        base = (f"{self.dataset}/{self.defense_variant}/"
                f"{self.threat_model}/{self.attack}")
        if not self.params:
            return base
        parts = ",".join(f"{k}={v:g}" for k, v in self.params)
        return f"{base};{parts}"

    def __str__(self) -> str:
        return self.scenario_id


@dataclasses.dataclass(frozen=True, order=True)
class SweepCell:
    """A scenario bound to its derived per-cell seed (ready to run)."""

    scenario: Scenario
    seed: int


def _derive_seed(root_seed: int, scenario: Scenario) -> int:
    """Per-cell seed from (root seed, scenario id) only.

    Hash-derived rather than positional so the seed survives registry
    growth, reordering and axis filtering — the invariant behind the
    bitwise-reproducible ``--resume`` contract.
    """
    digest = stable_hash({"root": int(root_seed),
                          "scenario": scenario.scenario_id})
    return int(digest, 16) % (2 ** 31)


class ScenarioRegistry:
    """A collection of scenarios with filterable enumeration.

    Scenarios arrive eagerly via :meth:`add` or lazily via
    :meth:`generator`-decorated functions (materialized once, on first
    enumeration).  Ids must be unique: registering the same id twice is
    idempotent for an identical scenario and an error otherwise.
    """

    def __init__(self):
        self._scenarios: Dict[str, Scenario] = {}
        self._generators: List[Callable[[], Iterable[Scenario]]] = []
        self._pending = 0

    def add(self, scenario: Scenario) -> Scenario:
        sid = scenario.scenario_id
        existing = self._scenarios.get(sid)
        if existing is not None and existing != scenario:
            raise ValueError(f"scenario id collision for {sid!r}")
        self._scenarios[sid] = scenario
        return scenario

    def generator(self, fn: Callable[[], Iterable[Scenario]]
                  ) -> Callable[[], Iterable[Scenario]]:
        """Register a function yielding scenarios (evaluated lazily)."""
        self._generators.append(fn)
        self._pending += 1
        return fn

    def _materialize(self) -> None:
        while self._pending:
            fn = self._generators[len(self._generators) - self._pending]
            self._pending -= 1
            for scenario in fn():
                self.add(scenario)

    def __len__(self) -> int:
        self._materialize()
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.list())

    def list(self) -> List[Scenario]:
        """All scenarios, sorted by id (registration order is irrelevant)."""
        self._materialize()
        return [self._scenarios[sid] for sid in sorted(self._scenarios)]

    def get(self, scenario_id: str) -> Scenario:
        self._materialize()
        try:
            return self._scenarios[scenario_id]
        except KeyError:
            raise KeyError(f"no scenario registered as {scenario_id!r}") from None

    def select(self, *, dataset: Optional[object] = None,
               defense_variant: Optional[object] = None,
               threat_model: Optional[object] = None,
               attack: Optional[object] = None,
               workload: Optional[object] = None) -> List[Scenario]:
        """Scenarios matching every given axis filter.

        Each filter accepts a single value or an iterable of allowed
        values; omitted axes match everything.
        """
        filters = {"dataset": dataset, "defense_variant": defense_variant,
                   "threat_model": threat_model, "attack": attack,
                   "workload": workload}

        def allowed(axis: str, value: str) -> bool:
            wanted = filters[axis]
            if wanted is None:
                return True
            if isinstance(wanted, str):
                return value == wanted
            return value in set(wanted)

        return [s for s in self.list()
                if all(allowed(axis, getattr(s, axis)) for axis in filters)]

    def expand(self, root_seed: int = 0, scenarios:
               Optional[Iterable[Scenario]] = None) -> List[SweepCell]:
        """Bind scenarios (default: all) to seed-stable sweep cells."""
        pool = self.list() if scenarios is None else sorted(
            scenarios, key=lambda s: s.scenario_id)
        return [SweepCell(scenario=s, seed=_derive_seed(root_seed, s))
                for s in pool]

    def axes(self) -> Dict[str, List[str]]:
        """Distinct values present per axis (for ``scenarios list``)."""
        out: Dict[str, List[str]] = {}
        for axis in ("dataset", "defense_variant", "threat_model",
                     "attack", "workload"):
            out[axis] = sorted({getattr(s, axis) for s in self.list()})
        return out


# ----------------------------------------------------------------------
# The standard registry
# ----------------------------------------------------------------------
#: Adversarial threat models of the standard grid (weakest → strongest).
_ADVERSARIAL_MODELS = ("oblivious", "transfer", "graybox", "bpda",
                       "detector_aware")

#: Attack families enumerated per threat model: the paper's L1 attack,
#: its elastic-net (L1+L2) sibling, and the C&W-L2 baseline they are
#: compared against.
_STANDARD_FAMILIES = ("ead_l1", "ead_en", "cw")

#: Corruption severities sampled for the non-adversarial rows.
_CORRUPTION_SEVERITIES = (1, 3, 5)


def default_registry() -> ScenarioRegistry:
    """The standard grid: 90 adversarial cells + 18 corruption rows.

    * digits × {default, jsd, wide, wide_jsd} × five threat models ×
      {EAD-L1, EAD-EN, C&W};
    * objects × {default, wide} × five threat models ×
      {EAD-L1, EAD-EN, C&W};
    * digits × {default} × every corruption × severities 1/3/5.

    The defense axes mirror :data:`repro.defenses.variants.MNIST_VARIANTS`
    and :data:`~repro.defenses.variants.CIFAR_VARIANTS` — every zoo
    variant a served model can route to has a scenario row.  Built fresh
    per call so callers can extend their copy without mutating a
    module-global.
    """
    registry = ScenarioRegistry()

    @registry.generator
    def adversarial() -> Iterator[Scenario]:
        grids = (("digits", ("default", "jsd", "wide", "wide_jsd")),
                 ("objects", ("default", "wide")))
        for dataset, variants in grids:
            for variant in variants:
                for model in _ADVERSARIAL_MODELS:
                    for family in _STANDARD_FAMILIES:
                        yield Scenario.create(dataset, variant, model, family)

    @registry.generator
    def corruptions() -> Iterator[Scenario]:
        for name in sorted(CORRUPTIONS):
            for severity in _CORRUPTION_SEVERITIES:
                yield Scenario.create("digits", "default", "corruption",
                                      name, workload="corruption",
                                      severity=severity)

    return registry
