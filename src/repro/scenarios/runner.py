"""Execute scenario cells against calibrated MagNet pipelines.

:func:`execute_scenario` is the pure cell body: given the scenario, the
models it needs and a seed batch, it crafts the threat model's
adversarial examples (or applies the corruption) and scores them with
the full MagNet decision — reporting attack success against the
defended pipeline, the misclassification and detection-bypass rates
separately, and the paper's four-scheme defense breakdown.

:func:`run_scenarios` is the sweep driver, mirroring
:mod:`repro.experiments.sweeps`: cells fan out across a
:class:`~repro.runtime.executor.ParallelExecutor` pool, every completed
cell is published to the disk cache under a seed- and
fingerprint-stable key and noted in an atomically-rewritten checkpoint
manifest, and ``resume=True`` load-verifies cached outcomes so a killed
run restarts from the last completed cell.  Cells are deterministic,
so a resumed or parallel sweep is bitwise-identical to a serial one.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.adaptive import (
    BPDAReformedModel,
    DetectorAwareCW,
    DetectorAwareEAD,
)
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.ead import EAD
from repro.attacks.graybox import ReformedModel
from repro.datasets.corruptions import corrupt
from repro.defenses.magnet import MagNet
from repro.evaluation.metrics import defense_breakdown
from repro.experiments.context import ExperimentContext
from repro.models.classifiers import ScaledLogits
from repro.nn.layers import Module
from repro.obs import counter, event, span
from repro.runtime.executor import ParallelExecutor, resolve_jobs
from repro.runtime.faults import FaultPlan, ItemFailure, RetryPolicy
from repro.scenarios.registry import Scenario, SweepCell
from repro.utils.cache import stable_hash
from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Disk-cache namespace for per-cell outcome documents.
OUTCOME_NAMESPACE = "scenarios"

#: Namespace for the sweep checkpoint manifests.
CHECKPOINT_NAMESPACE = "checkpoints"

#: Default fault policy: like attack sweeps, no per-item timeout, two
#: retries with short exponential backoff.
SCENARIO_RETRY_POLICY = RetryPolicy(timeout_s=None, retries=2, backoff_s=0.25)


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """Scores of one scenario cell against the full defended pipeline."""

    scenario_id: str
    dataset: str
    defense_variant: str
    threat_model: str
    attack: str
    workload: str
    seed: int
    n: int
    #: Fraction the attack itself marked successful against its craft
    #: model (NaN for corruption rows — nothing is crafted).
    craft_success_rate: float
    #: Paper ASR vs the full defense: neither detected nor corrected.
    attack_success_rate: float
    #: Wrong label after reforming, ignoring detection.
    misclassification_rate: float
    #: Flagged by at least one detector.
    detection_rate: float
    #: 1 − detection rate: the detector-evasion axis, reported per cell.
    detection_bypass_rate: float
    #: Wrong raw label with no defense at all.
    undefended_error_rate: float
    mean_l1: float
    mean_l2: float
    #: The paper's four defense schemes (accuracy under each).
    breakdown: Dict[str, float]

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ScenarioOutcome":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in fields})


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def build_craft_model(scenario: Scenario, classifier: Module, magnet: MagNet,
                      surrogate_classifier: Optional[Module] = None
                      ) -> Optional[Module]:
    """The model the attacker differentiates, per threat model.

    * ``oblivious`` — the undefended classifier (the paper's setting);
    * ``transfer`` — an independently trained surrogate classifier;
    * ``graybox`` — ``classifier(AE(x))``, gradients through the AE;
    * ``bpda`` — exact defended forward, identity backward;
    * ``detector_aware`` — the BPDA pipeline (detectors join the loss);
    * ``corruption`` — nothing is crafted (returns None).
    """
    tm = scenario.threat_model
    if tm == "oblivious":
        return classifier
    if tm == "transfer":
        if surrogate_classifier is None:
            raise ValueError(
                "transfer scenarios need a surrogate classifier")
        return surrogate_classifier
    if tm == "graybox":
        if magnet.reformer is None:
            raise ValueError(f"{scenario} needs a reformer in the defense")
        return ReformedModel(magnet.reformer.autoencoder, magnet.classifier)
    if tm in ("bpda", "detector_aware"):
        if magnet.reformer is None:
            raise ValueError(f"{scenario} needs a reformer in the defense")
        return BPDAReformedModel(magnet.reformer, magnet.classifier)
    if tm == "corruption":
        return None
    raise ValueError(f"unhandled threat model {tm!r}")


def build_attack(scenario: Scenario, model: Module, magnet: MagNet,
                 attack_params: Optional[Mapping] = None,
                 batch_mode: str = "batched"):
    """Instantiate the scenario's attack bound to its craft model.

    ``attack_params`` carries the optimization budget
    (``binary_search_steps`` / ``max_iterations`` / ``lr`` /
    ``initial_const``); scenario params supply the objective knobs
    (``kappa``, ``beta``, ``detector_weight``, ``threshold_frac``).
    """
    p = scenario.params_dict
    budget = dict(attack_params or {})
    budget["kappa"] = float(p.get("kappa", 0.0))
    budget["batch_mode"] = batch_mode
    family = scenario.attack
    if family in ("ead_l1", "ead_en"):
        budget["beta"] = float(p.get("beta", 1e-2))
        budget["rule"] = "l1" if family == "ead_l1" else "en"
    if scenario.threat_model == "detector_aware":
        aware = dict(detector_weight=float(p.get("detector_weight", 1.0)),
                     threshold_frac=float(p.get("threshold_frac", 0.95)))
        if family == "cw":
            return DetectorAwareCW(model, magnet.detectors, **aware, **budget)
        return DetectorAwareEAD(model, magnet.detectors, **aware, **budget)
    if family == "cw":
        return CarliniWagnerL2(model, **budget)
    return EAD(model, **budget)


def execute_scenario(scenario: Scenario, *, classifier: Module,
                     magnet: MagNet, x0: np.ndarray, y0: np.ndarray,
                     seed: int = 0,
                     attack_params: Optional[Mapping] = None,
                     surrogate_classifier: Optional[Module] = None,
                     batch_mode: str = "batched") -> ScenarioOutcome:
    """Run one cell: craft (or corrupt), then score the full defense."""
    with span("scenario/cell", scenario=scenario.scenario_id,
              threat=scenario.threat_model, n=len(x0)) as evt:
        if scenario.workload == "corruption":
            severity = int(scenario.params_dict.get("severity", 3))
            x_adv = corrupt(x0, scenario.attack, severity, seed=seed)
            craft_success = float("nan")
        else:
            model = build_craft_model(scenario, classifier, magnet,
                                      surrogate_classifier)
            attack = build_attack(scenario, model, magnet, attack_params,
                                  batch_mode)
            result = attack.attack(x0, y0)
            x_adv = result.x_adv
            craft_success = float(result.success.mean())

        outcome = score_scenario(scenario, magnet, x0, x_adv, y0,
                                 seed=seed, craft_success=craft_success)
        evt["asr"] = round(outcome.attack_success_rate, 4)
        evt["bypass"] = round(outcome.detection_bypass_rate, 4)
        counter("scenario/cells").inc()
        return outcome


def score_scenario(scenario: Scenario, magnet: MagNet, x0: np.ndarray,
                   x_adv: np.ndarray, y0: np.ndarray, *, seed: int,
                   craft_success: float) -> ScenarioOutcome:
    """Score already-crafted inputs with the full MagNet decision."""
    decision = magnet.decide(x_adv)
    y0 = np.asarray(y0)
    delta = (np.asarray(x_adv, dtype=np.float64)
             - np.asarray(x0, dtype=np.float64)).reshape(len(y0), -1)
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        dataset=scenario.dataset,
        defense_variant=scenario.defense_variant,
        threat_model=scenario.threat_model,
        attack=scenario.attack,
        workload=scenario.workload,
        seed=int(seed),
        n=int(len(y0)),
        craft_success_rate=craft_success,
        attack_success_rate=magnet.attack_success_rate(x_adv, y0),
        misclassification_rate=float(
            (decision.labels_reformed != y0).mean()),
        detection_rate=float(decision.detected.mean()),
        detection_bypass_rate=float(1.0 - decision.detected.mean()),
        undefended_error_rate=float((decision.labels_raw != y0).mean()),
        mean_l1=float(np.abs(delta).sum(axis=1).mean()),
        mean_l2=float(np.sqrt((delta ** 2).sum(axis=1)).mean()),
        breakdown=defense_breakdown(magnet, x_adv, y0).as_dict(),
    )


# ----------------------------------------------------------------------
# Sweep driver: checkpointed, resumable, parallel
# ----------------------------------------------------------------------
def default_attack_params(profile, family: str) -> Dict[str, float]:
    """The profile's optimization budget for one attack family."""
    return {
        "binary_search_steps": profile.binary_search_steps,
        "max_iterations": profile.max_iterations,
        "initial_const": profile.initial_const,
        "lr": profile.cw_lr if family == "cw" else profile.ead_lr,
    }


def scenario_cell_key(ctx: ExperimentContext, cell: SweepCell,
                      attack_params: Optional[Mapping] = None) -> str:
    """Cache key of one cell: scenario id + seed + experiment identity."""
    if attack_params is None and cell.scenario.workload == "adversarial":
        attack_params = default_attack_params(ctx.profile,
                                              cell.scenario.attack)
    return stable_hash({
        "scenario": cell.scenario.scenario_id,
        "cell_seed": cell.seed,
        "clf": ctx.classifier_fingerprint,
        "n_attack": ctx.profile.n_attack(ctx.dataset),
        "seed": ctx.seed,
        "attack_params": dict(attack_params or {}),
    })


def _cell_ok(ctx: ExperimentContext, cell: SweepCell, verify: bool) -> bool:
    # Outcome documents are small JSON files, so the verify pass simply
    # loads them — DiskCache discards a torn/corrupt document on the
    # failed load and the cell is recomputed.
    key = scenario_cell_key(ctx, cell)
    try:
        ctx.cache.load_json(OUTCOME_NAMESPACE, key)
        return True
    except KeyError:
        return False


def missing_cells(cells: Sequence[SweepCell],
                  contexts: Mapping[str, ExperimentContext],
                  verify: bool = False) -> List[SweepCell]:
    """Cells without a (readable, when ``verify``) cached outcome."""
    return [cell for cell in cells
            if not _cell_ok(contexts[cell.scenario.dataset], cell, verify)]


def _surrogate_classifier(ctx: ExperimentContext) -> Module:
    """An independently trained classifier for the transfer threat model.

    Trained from a different seed than the defended classifier but
    scaled identically, so κ means the same thing in both settings.
    """
    from repro.models.zoo import ClassifierSpec

    spec = ClassifierSpec(dataset=ctx.dataset, seed=ctx.seed + 1,
                          epochs=ctx.profile.classifier_epochs)
    base = ctx.zoo.classifier(spec)
    scale = ctx.profile.logit_scale(ctx.dataset)
    return ScaledLogits(base, scale) if scale != 1.0 else base


def _run_cell(payload) -> Dict:
    """Worker body: one scenario cell end to end, returns the outcome doc."""
    (scenario, seed, classifier, magnet, surrogate, x0, y0, attack_params,
     batch_mode) = payload
    outcome = execute_scenario(
        scenario, classifier=classifier, magnet=magnet, x0=x0, y0=y0,
        seed=seed, attack_params=attack_params,
        surrogate_classifier=surrogate, batch_mode=batch_mode)
    return outcome.to_dict()


def _checkpoint_key(cells: Sequence[SweepCell],
                    contexts: Mapping[str, ExperimentContext]) -> str:
    datasets = sorted({c.scenario.dataset for c in cells})
    return stable_hash({
        "cells": [(c.scenario.scenario_id, c.seed) for c in cells],
        "contexts": {
            ds: {"clf": contexts[ds].classifier_fingerprint,
                 "profile": contexts[ds].profile.name,
                 "seed": contexts[ds].seed}
            for ds in datasets
        },
    })


def run_scenarios(cells: Sequence[SweepCell],
                  contexts: Mapping[str, ExperimentContext], *,
                  jobs: Optional[int] = None, resume: bool = False,
                  policy: Optional[RetryPolicy] = None,
                  fault_plan: Optional[FaultPlan] = None,
                  scheduler: str = "static"
                  ) -> Dict[str, ScenarioOutcome]:
    """Run every cell, fanning uncached ones out across ``jobs`` workers.

    ``contexts`` maps dataset name to the :class:`ExperimentContext`
    whose models/seeds/cache that dataset's cells use.  Completed cells
    are published as JSON outcome documents and checkpointed in an
    atomically-rewritten manifest; ``resume=True`` load-verifies cached
    outcomes (a corrupt document counts as missing) so interrupted
    sweeps restart from the last completed cell.  ``fault_plan``
    injects deterministic chaos into the workers (``--inject-faults``),
    and ``scheduler`` selects the executor dispatch strategy
    (``"work_stealing"`` keeps workers dense when cell costs are
    skewed; the outcome documents are byte-identical either way).
    Returns every requested cell's outcome, keyed by scenario id.
    """
    cells = sorted(cells, key=lambda c: (c.scenario.scenario_id, c.seed))
    for cell in cells:
        if cell.scenario.dataset not in contexts:
            raise KeyError(
                f"no context for dataset {cell.scenario.dataset!r} "
                f"(needed by {cell.scenario})")
    jobs = resolve_jobs(jobs if jobs is not None else 1)
    policy = policy or SCENARIO_RETRY_POLICY
    todo = missing_cells(cells, contexts, verify=resume)

    ckpt_ctx = contexts[cells[0].scenario.dataset] if cells else None
    with span("scenario/sweep", cells=len(cells), todo=len(todo),
              jobs=jobs, resume=resume or None, scheduler=scheduler) as evt:
        if todo:
            ckpt_key = _checkpoint_key(cells, contexts)
            manifest = None
            if resume:
                try:
                    manifest = ckpt_ctx.cache.load_json(
                        CHECKPOINT_NAMESPACE, ckpt_key)
                except KeyError:
                    manifest = None
            if manifest is None:
                manifest = {"total": len(cells), "done": {}, "failed": {},
                            "status": "running", "jobs": jobs,
                            "updated": time.time()}
            else:
                log.info("resuming scenario sweep %s: %d/%d cells done, "
                         "%d previously failed", ckpt_key,
                         len(cells) - len(todo), len(cells),
                         len(manifest.get("failed", {})))
                manifest["failed"] = {}
                manifest["status"] = "running"
                manifest["jobs"] = jobs

            def save_manifest() -> None:
                manifest["updated"] = time.time()
                ckpt_ctx.cache.save_json(CHECKPOINT_NAMESPACE, ckpt_key,
                                         manifest)

            for cell in cells:
                if cell not in todo:
                    manifest["done"].setdefault(cell.scenario.scenario_id, {})
            save_manifest()

            # Materialize shared inputs once, in the parent, so workers
            # cannot train models or diverge on worker-local state.
            payloads = []
            surrogates: Dict[str, Optional[Module]] = {}
            for cell in todo:
                s = cell.scenario
                ctx = contexts[s.dataset]
                surrogate = None
                if s.threat_model == "transfer":
                    if s.dataset not in surrogates:
                        surrogates[s.dataset] = _surrogate_classifier(ctx)
                    surrogate = surrogates[s.dataset]
                x0, y0 = ctx.attack_seeds()
                params = (default_attack_params(ctx.profile, s.attack)
                          if s.workload == "adversarial" else None)
                payloads.append((s, cell.seed, ctx.classifier,
                                 ctx.magnet(s.defense_variant), surrogate,
                                 x0, y0, params, ctx.batch_mode))
            log.info("running %d/%d scenario cells with %d workers",
                     len(todo), len(cells), jobs)

            def publish(index: int, doc: Dict) -> None:
                cell = todo[index]
                ctx = contexts[cell.scenario.dataset]
                key = scenario_cell_key(ctx, cell)
                ctx.cache.save_json(OUTCOME_NAMESPACE, key, doc)
                manifest["done"][cell.scenario.scenario_id] = {"key": key}
                save_manifest()

            executor = ParallelExecutor(jobs, chunk_size=1, policy=policy,
                                        fault_plan=fault_plan,
                                        on_error="record",
                                        scheduler=scheduler)
            outputs = executor.map(_run_cell, payloads, on_result=publish)
            if executor.last_schedule is not None:
                evt["steals"] = executor.last_schedule.steals or None
            for cell, output in zip(todo, outputs):
                if isinstance(output, ItemFailure):
                    sid = cell.scenario.scenario_id
                    manifest["failed"][sid] = {
                        "kind": output.kind, "error": output.error,
                        "attempts": output.attempts}
                    event("scenario/cell_failed", cell=sid,
                          reason=output.kind, attempts=output.attempts)
                    log.error("scenario cell %s failed terminally (%s): %s",
                              sid, output.kind, output.error)
            manifest["status"] = ("partial" if manifest["failed"]
                                  else "complete")
            save_manifest()
            evt["failed"] = len(manifest["failed"]) or None

        outcomes = load_outcomes(cells, contexts)
        evt["loaded"] = len(outcomes)
    return outcomes


def load_outcomes(cells: Sequence[SweepCell],
                  contexts: Mapping[str, ExperimentContext]
                  ) -> Dict[str, ScenarioOutcome]:
    """Cached outcomes for ``cells`` (cells still missing are skipped)."""
    outcomes: Dict[str, ScenarioOutcome] = {}
    for cell in cells:
        ctx = contexts[cell.scenario.dataset]
        key = scenario_cell_key(ctx, cell)
        try:
            doc = ctx.cache.load_json(OUTCOME_NAMESPACE, key)
        except KeyError:
            continue
        outcomes[cell.scenario.scenario_id] = ScenarioOutcome.from_dict(doc)
    return outcomes
