"""Aggregate scenario outcomes into comparison tables.

The headline artifact is the oblivious-vs-adaptive comparison: the
paper's threat model next to transfer / gray-box / BPDA /
detector-aware columns for the same attack family and defense variant,
plus the non-adversarial corruption rows as context.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.scenarios.runner import ScenarioOutcome

#: Column order of the per-cell report table.
TABLE_COLUMNS = ("scenario", "threat_model", "attack", "asr",
                 "misclassified", "bypass", "craft", "l1", "l2")


def outcomes_table(outcomes: Mapping[str, ScenarioOutcome]) -> List[Dict]:
    """Flat per-cell rows (sorted by scenario id) for tables/JSON."""
    rows = []
    for sid in sorted(outcomes):
        o = outcomes[sid]
        rows.append({
            "scenario": sid,
            "dataset": o.dataset,
            "defense_variant": o.defense_variant,
            "threat_model": o.threat_model,
            "attack": o.attack,
            "workload": o.workload,
            "asr": o.attack_success_rate,
            "misclassified": o.misclassification_rate,
            "bypass": o.detection_bypass_rate,
            "craft": o.craft_success_rate,
            "l1": o.mean_l1,
            "l2": o.mean_l2,
        })
    return rows


def success_by_threat_model(outcomes: Mapping[str, ScenarioOutcome]
                            ) -> Dict[str, float]:
    """Mean full-defense ASR per threat model (adversarial cells only)."""
    buckets: Dict[str, List[float]] = {}
    for o in outcomes.values():
        if o.workload != "adversarial":
            continue
        buckets.setdefault(o.threat_model, []).append(o.attack_success_rate)
    return {tm: sum(vals) / len(vals) for tm, vals in sorted(buckets.items())}


def adaptive_gain(outcomes: Mapping[str, ScenarioOutcome],
                  baseline: str = "oblivious",
                  adaptive: Sequence[str] = ("bpda", "detector_aware")
                  ) -> List[Dict]:
    """ASR gain of each adaptive threat model over the oblivious baseline.

    Rows are grouped by (dataset, defense variant, attack family); a
    group appears only when both the baseline and at least one adaptive
    cell were run.
    """
    by_group: Dict[tuple, Dict[str, ScenarioOutcome]] = {}
    for o in outcomes.values():
        if o.workload != "adversarial":
            continue
        key = (o.dataset, o.defense_variant, o.attack)
        by_group.setdefault(key, {})[o.threat_model] = o

    rows = []
    for (dataset, variant, attack), models in sorted(by_group.items()):
        base = models.get(baseline)
        if base is None:
            continue
        for tm in adaptive:
            cell = models.get(tm)
            if cell is None:
                continue
            rows.append({
                "dataset": dataset,
                "defense_variant": variant,
                "attack": attack,
                "threat_model": tm,
                "baseline_asr": base.attack_success_rate,
                "adaptive_asr": cell.attack_success_rate,
                "gain": cell.attack_success_rate - base.attack_success_rate,
            })
    return rows


def render_table(rows: Iterable[Mapping], columns: Sequence[str] = TABLE_COLUMNS
                 ) -> str:
    """Fixed-width text table of selected columns (CLI output)."""
    rows = list(rows)

    def fmt(value) -> str:
        if isinstance(value, float):
            return "nan" if value != value else f"{value:.3f}"
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max([len(col)] + [len(line[i]) for line in cells])
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = ["  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
            for line in cells]
    return "\n".join([header, rule] + body)
