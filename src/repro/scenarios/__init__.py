"""Scenario registry: threat model × attack × defense × workload.

The paper evaluates MagNet in a single setting — the oblivious threat
model, where examples are crafted against the undefended classifier.
This package turns that one setting into an *axis*: a declarative
registry enumerates :class:`Scenario` cells over threat models
(oblivious / transfer / gray-box / BPDA / detector-aware), attack
families (EAD-L1, EAD-EN, C&W-L2), :mod:`repro.defenses.variants`
MagNet configurations, datasets, and non-adversarial corruption
workloads; the runner dispatches every cell through the
:mod:`repro.runtime` executor with checkpoint/resume and scores it with
the :mod:`repro.evaluation` protocol.

One CLI call (``repro-experiments scenarios run``) therefore produces
the oblivious-vs-adaptive attack-success comparison that frames the
whole reproduction: the paper's L1 result holds in its threat model,
and collapses under the adaptive attacks of
:mod:`repro.attacks.adaptive`.
"""

from repro.scenarios.registry import (
    ATTACK_FAMILIES,
    THREAT_MODELS,
    WORKLOADS,
    Scenario,
    ScenarioRegistry,
    SweepCell,
    default_registry,
)
from repro.scenarios.runner import (
    ScenarioOutcome,
    execute_scenario,
    load_outcomes,
    run_scenarios,
    scenario_cell_key,
)
from repro.scenarios.report import (
    adaptive_gain,
    outcomes_table,
    render_table,
    success_by_threat_model,
)

__all__ = [
    "ATTACK_FAMILIES",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRegistry",
    "SweepCell",
    "THREAT_MODELS",
    "WORKLOADS",
    "adaptive_gain",
    "default_registry",
    "execute_scenario",
    "load_outcomes",
    "outcomes_table",
    "render_table",
    "run_scenarios",
    "scenario_cell_key",
    "success_by_threat_model",
]
