"""Full-model serialization: architecture config + weights in one file.

``Module.state_dict`` covers weights; this module adds the architecture
so a model can be reconstructed without the code that built it being
re-run with the right arguments.  Models are stored as an ``.npz`` of
weights plus a JSON header naming a *builder* from :data:`BUILDERS` and
its kwargs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict

import numpy as np

from repro.models.autoencoders import (
    build_cifar_ae,
    build_mnist_ae_deep,
    build_mnist_ae_shallow,
)
from repro.models.classifiers import build_digit_classifier, build_object_classifier
from repro.nn.layers import Module

#: Registry of reconstructible architectures: name -> builder(**kwargs).
BUILDERS: Dict[str, Callable[..., Module]] = {
    "digit_classifier": build_digit_classifier,
    "object_classifier": build_object_classifier,
    "mnist_ae_deep": build_mnist_ae_deep,
    "mnist_ae_shallow": build_mnist_ae_shallow,
    "cifar_ae": build_cifar_ae,
}

_HEADER_KEY = "__repro_model_header__"


def register_builder(name: str, builder: Callable[..., Module]) -> None:
    """Register a custom architecture builder for save/load round trips."""
    if not callable(builder):
        raise TypeError("builder must be callable")
    BUILDERS[name] = builder


def save_model(model: Module, path: os.PathLike, builder: str,
               builder_kwargs: Dict[str, Any]) -> Path:
    """Persist a model: weights + (builder name, kwargs) header.

    ``builder``/``builder_kwargs`` must reconstruct an architecture with
    identical parameter names and shapes.
    """
    if builder not in BUILDERS:
        raise KeyError(
            f"unknown builder {builder!r}; register it first "
            f"(available: {sorted(BUILDERS)})")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = json.dumps({"builder": builder, "kwargs": builder_kwargs})
    arrays = dict(model.state_dict())
    if _HEADER_KEY in arrays:
        raise ValueError(f"parameter name collides with {_HEADER_KEY!r}")
    arrays[_HEADER_KEY] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path


def load_model(path: os.PathLike) -> Module:
    """Rebuild a model saved with :func:`save_model`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if _HEADER_KEY not in data.files:
            raise ValueError(f"{path} is not a repro model file (no header)")
        header = json.loads(bytes(data[_HEADER_KEY].tobytes()).decode("utf-8"))
        state = {name: data[name] for name in data.files
                 if name != _HEADER_KEY}
    builder_name = header["builder"]
    if builder_name not in BUILDERS:
        raise KeyError(
            f"model was saved with builder {builder_name!r}, which is not "
            f"registered in this process")
    model = BUILDERS[builder_name](**header["kwargs"])
    model.load_state_dict(state)
    model.eval()
    return model
