"""MagNet autoencoder architectures (paper Tables II and V).

MagNet (Meng & Chen, CCS'17) uses three autoencoder shapes, all with
sigmoid activations:

* MNIST **AE-I** ("Detector I & Reformer"):
  Conv w — AvgPool 2x2 — Conv w — Conv w — Upsample 2x2 — Conv w — Conv 1,
  all 3x3, sigmoid throughout.
* MNIST **AE-II** ("Detector II"): Conv w — Conv w — Conv 1, 3x3, sigmoid.
* CIFAR AE ("Detectors & Reformer"): Conv w — Conv w — Conv 3, 3x3, sigmoid.

The default MagNet sets the conv width ``w = 3``; the paper's *robust*
variants raise it to 256 (its Tables II/V).  Width is a constructor
parameter here; the quick benchmark profile uses an intermediate width so
pure-numpy convolutions stay tractable (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import AvgPool2D, Conv2D, Sequential, Sigmoid, UpSample2D
from repro.utils.rng import rng_from_seed

DEFAULT_WIDTH = 3
ROBUST_WIDTH = 256


def build_mnist_ae_deep(width: int = DEFAULT_WIDTH, in_channels: int = 1,
                        seed: int = 0) -> Sequential:
    """MNIST AE-I: the pooling/upsampling autoencoder (Detector I & Reformer)."""
    rng = rng_from_seed(seed)
    w = int(width)
    return Sequential(
        Conv2D(in_channels, w, 3, padding="same", rng=rng), Sigmoid(),
        AvgPool2D(2),
        Conv2D(w, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, w, 3, padding="same", rng=rng), Sigmoid(),
        UpSample2D(2),
        Conv2D(w, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, in_channels, 3, padding="same", rng=rng), Sigmoid(),
    )


def build_mnist_ae_shallow(width: int = DEFAULT_WIDTH, in_channels: int = 1,
                           seed: int = 0) -> Sequential:
    """MNIST AE-II: the shallow autoencoder (Detector II)."""
    rng = rng_from_seed(seed)
    w = int(width)
    return Sequential(
        Conv2D(in_channels, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, in_channels, 3, padding="same", rng=rng), Sigmoid(),
    )


def build_cifar_ae(width: int = DEFAULT_WIDTH, in_channels: int = 3,
                   seed: int = 0) -> Sequential:
    """CIFAR AE: the single autoencoder behind both detectors and the reformer."""
    rng = rng_from_seed(seed)
    w = int(width)
    return Sequential(
        Conv2D(in_channels, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, w, 3, padding="same", rng=rng), Sigmoid(),
        Conv2D(w, in_channels, 3, padding="same", rng=rng), Sigmoid(),
    )


def build_autoencoder(dataset: str, kind: str, width: int = DEFAULT_WIDTH,
                      seed: int = 0) -> Sequential:
    """Dispatch: (dataset, kind) → architecture.

    ``kind`` is ``"deep"`` (AE-I) or ``"shallow"`` (AE-II) for digits;
    only ``"deep"`` exists for objects (the CIFAR AE).
    """
    if dataset == "digits":
        if kind == "deep":
            return build_mnist_ae_deep(width=width, seed=seed)
        if kind == "shallow":
            return build_mnist_ae_shallow(width=width, seed=seed)
        raise KeyError(f"unknown MNIST AE kind {kind!r}; expected 'deep' or 'shallow'")
    if dataset == "objects":
        if kind in ("deep", "shallow"):
            return build_cifar_ae(width=width, seed=seed)
        raise KeyError(f"unknown CIFAR AE kind {kind!r}")
    raise KeyError(f"unknown dataset {dataset!r}; expected 'digits' or 'objects'")


def architecture_rows(dataset: str, kind: str, width: int) -> List[str]:
    """Layer descriptions in the paper's Table II / Table V notation."""
    w = int(width)
    if dataset == "digits" and kind == "deep":
        return [
            f"Conv.Sigmoid 3x3x{w}",
            "AveragePooling 2x2",
            f"Conv.Sigmoid 3x3x{w}",
            f"Conv.Sigmoid 3x3x{w}",
            "Upsampling 2x2",
            f"Conv.Sigmoid 3x3x{w}",
            "Conv.Sigmoid 3x3x1",
        ]
    if dataset == "digits" and kind == "shallow":
        return [
            f"Conv.Sigmoid 3x3x{w}",
            f"Conv.Sigmoid 3x3x{w}",
            "Conv.Sigmoid 3x3x1",
        ]
    if dataset == "objects":
        return [
            f"Conv.Sigmoid 3x3x{w}",
            f"Conv.Sigmoid 3x3x{w}",
            "Conv.Sigmoid 3x3x3",
        ]
    raise KeyError(f"no architecture row for ({dataset!r}, {kind!r})")
