"""Model zoo: classifier and MagNet-autoencoder architectures + cached training."""

from repro.models.autoencoders import (
    DEFAULT_WIDTH,
    ROBUST_WIDTH,
    architecture_rows,
    build_autoencoder,
    build_cifar_ae,
    build_mnist_ae_deep,
    build_mnist_ae_shallow,
)
from repro.models.io import BUILDERS, load_model, register_builder, save_model
from repro.models.classifiers import (
    build_classifier,
    build_digit_classifier,
    build_object_classifier,
)
from repro.models.zoo import (
    AutoencoderSpec,
    ClassifierSpec,
    ModelZoo,
    data_fingerprint,
    train_autoencoder,
    train_classifier,
)

__all__ = [
    "AutoencoderSpec",
    "BUILDERS",
    "ClassifierSpec",
    "DEFAULT_WIDTH",
    "ModelZoo",
    "ROBUST_WIDTH",
    "architecture_rows",
    "build_autoencoder",
    "build_cifar_ae",
    "build_classifier",
    "build_digit_classifier",
    "build_mnist_ae_deep",
    "build_mnist_ae_shallow",
    "build_object_classifier",
    "data_fingerprint",
    "load_model",
    "register_builder",
    "save_model",
    "train_autoencoder",
    "train_classifier",
]
