"""Train-once model zoo with disk caching.

The 7 tables and 13 figures reuse the same classifiers and autoencoders;
this module trains each (dataset, architecture, loss, seed) combination at
most once per cache directory.  Cache keys incorporate a fingerprint of
the training data, so changing dataset parameters invalidates stale
weights automatically.

MagNet trains its autoencoders as *denoisers*: Gaussian noise (volume 0.1
in the original) is added to the inputs while the reconstruction target
stays clean.  ``AutoencoderSpec.train_noise`` reproduces that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.base import DataSplits
from repro.models.autoencoders import build_autoencoder
from repro.models.classifiers import build_classifier
from repro.nn.layers import Module
from repro.nn.training import Trainer, accuracy
from repro.obs import span
from repro.utils.cache import DiskCache, default_cache, stable_hash
from repro.utils.logging import get_logger
from repro.utils.rng import rng_from_seed

log = get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class ClassifierSpec:
    """Everything that determines a trained classifier."""
    dataset: str                 # canonical name: "digits" | "objects"
    variant: str = "compact"
    seed: int = 0
    epochs: int = 6
    batch_size: int = 64
    lr: float = 1e-3

    def config(self) -> Dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AutoencoderSpec:
    """Everything that determines a trained MagNet autoencoder."""
    dataset: str                 # "digits" | "objects"
    kind: str = "deep"           # "deep" (AE-I / CIFAR AE) | "shallow" (AE-II)
    width: int = 3
    loss: str = "mse"            # "mse" (default MagNet) | "mae" (Fig 12/13 variant)
    seed: int = 0
    epochs: int = 40
    batch_size: int = 64
    lr: float = 1e-2
    train_noise: float = 0.1     # MagNet's denoising noise volume

    def config(self) -> Dict:
        return dataclasses.asdict(self)


def data_fingerprint(splits: DataSplits) -> str:
    """Cheap stable fingerprint of the training distribution."""
    train = splits.train
    head = min(64, len(train))
    return stable_hash({
        "name": splits.name,
        "n_train": len(train),
        "shape": list(train.image_shape),
        "x_head": train.x[:head],
        "y_head": train.y[:head],
    })


def train_classifier(splits: DataSplits, spec: ClassifierSpec) -> Tuple[Module, Dict]:
    """Train a classifier from scratch; returns (model, info dict)."""
    model = build_classifier(spec.dataset, seed=spec.seed, variant=spec.variant)
    trainer = Trainer(model, loss="cross_entropy", lr=spec.lr, seed=spec.seed + 1)
    history = trainer.fit(
        splits.train.x, splits.train.y,
        epochs=spec.epochs, batch_size=spec.batch_size,
        x_val=splits.val.x, y_val=splits.val.y, verbose=False,
    )
    info = {
        "val_accuracy": history.epochs[-1].val_accuracy,
        "test_accuracy": accuracy(model, splits.test.x, splits.test.y),
        "train_loss": history.final_train_loss,
    }
    log.info("trained classifier %s: test_acc=%.4f", spec, info["test_accuracy"])
    return model, info


def train_autoencoder(splits: DataSplits, spec: AutoencoderSpec) -> Tuple[Module, Dict]:
    """Train a MagNet autoencoder (denoising, per the original recipe)."""
    model = build_autoencoder(spec.dataset, spec.kind, width=spec.width, seed=spec.seed)
    trainer = Trainer(model, loss=spec.loss, lr=spec.lr, seed=spec.seed + 1)
    x_clean = splits.train.x
    if spec.train_noise > 0:
        rng = rng_from_seed(spec.seed + 7)
        x_in = np.clip(
            x_clean + rng.normal(0, spec.train_noise, size=x_clean.shape), 0, 1
        ).astype(np.float32)
    else:
        x_in = x_clean
    history = trainer.fit(
        x_in, x_clean,
        epochs=spec.epochs, batch_size=spec.batch_size, verbose=False,
    )
    val_loss = trainer.evaluate_loss(splits.val.x, splits.val.x)
    info = {"train_loss": history.final_train_loss, "val_loss": val_loss}
    log.info("trained autoencoder %s: val_%s=%.5f", spec, spec.loss, val_loss)
    return model, info


class ModelZoo:
    """Disk-cached access to trained models for one dataset's splits."""

    def __init__(self, splits: DataSplits, cache: Optional[DiskCache] = None):
        self.splits = splits
        self.cache = cache if cache is not None else default_cache()
        self._fingerprint = data_fingerprint(splits)
        self._memory: Dict[str, Module] = {}

    def _key(self, spec) -> str:
        return stable_hash({"data": self._fingerprint, "spec": spec.config()})

    def classifier(self, spec: Optional[ClassifierSpec] = None) -> Module:
        """Return a trained classifier, from memory, disk, or fresh training."""
        spec = spec or ClassifierSpec(dataset=_dataset_of(self.splits))
        key = "clf-" + self._key(spec)
        if key in self._memory:
            return self._memory[key]
        model = build_classifier(spec.dataset, seed=spec.seed, variant=spec.variant)
        model = self._restore_or_train(
            key, model, lambda: train_classifier(self.splits, spec),
            stage="train/classifier", batch=spec.batch_size)
        self._memory[key] = model
        return model

    def autoencoder(self, spec: Optional[AutoencoderSpec] = None) -> Module:
        """Return a trained autoencoder, from memory, disk, or fresh training."""
        spec = spec or AutoencoderSpec(dataset=_dataset_of(self.splits))
        key = "ae-" + self._key(spec)
        if key in self._memory:
            return self._memory[key]
        model = build_autoencoder(spec.dataset, spec.kind, width=spec.width,
                                  seed=spec.seed)
        model = self._restore_or_train(
            key, model, lambda: train_autoencoder(self.splits, spec),
            stage="train/autoencoder", batch=spec.batch_size)
        self._memory[key] = model
        return model

    def _restore_or_train(self, key: str, fresh_model: Module, train_fn,
                          stage: str = "train/model",
                          batch: Optional[int] = None) -> Module:
        with span(stage, batch=batch) as evt:
            try:
                state = self.cache.load("models", key)
                fresh_model.load_state_dict(state)
                fresh_model.eval()
                evt["cache"] = "hit"
                return fresh_model
            except KeyError:
                pass
            evt["cache"] = "miss"
            model, info = train_fn()
            self.cache.save("models", key, model.state_dict(), meta=info)
            model.eval()
            return model

    def model_meta(self, spec) -> Dict:
        """Return the training-info sidecar for a previously trained spec."""
        prefix = "clf-" if isinstance(spec, ClassifierSpec) else "ae-"
        return self.cache.load_meta("models", prefix + self._key(spec))


def _dataset_of(splits: DataSplits) -> str:
    name = splits.name
    if "digit" in name:
        return "digits"
    if "object" in name:
        return "objects"
    raise ValueError(f"cannot infer dataset kind from splits name {name!r}")


# ----------------------------------------------------------------------
# Model-builder catalog (spawn-safe serving workers)
# ----------------------------------------------------------------------
#: Registered builder callables, keyed by catalog name.  A serving
#: :class:`~repro.serving.router.ModelSpec` may name a builder here
#: instead of embedding a callable, so only the *name* and its kwargs
#: cross a process boundary — the worker resolves and calls the builder
#: locally (training/loading from its own cache as needed).
_MODEL_BUILDERS: Dict[str, object] = {}


def register_model_builder(name: str, builder, replace: bool = False) -> None:
    """Register ``builder`` under ``name`` for by-name worker resolution.

    ``builder`` must be a module-level callable returning a ready (e.g.
    calibrated-MagNet) model; it is looked up again inside each worker
    process, so it must be importable there.
    """
    if not callable(builder):
        raise TypeError(f"builder for {name!r} must be callable")
    if name in _MODEL_BUILDERS and not replace:
        raise ValueError(f"model builder {name!r} already registered")
    _MODEL_BUILDERS[name] = builder


def resolve_model_builder(name: str):
    """Look up a registered builder, importing known provider modules.

    Providers register at import time; a fresh worker process has not
    imported them yet, so resolution lazily pulls in the standard ones
    (kept as function-local imports to avoid circular imports — both
    providers import :mod:`repro.models.zoo` themselves).
    """
    if name not in _MODEL_BUILDERS:
        import importlib
        for provider in ("repro.serving.smoke", "repro.experiments.context"):
            try:
                importlib.import_module(provider)
            except Exception:  # pragma: no cover - provider deps missing
                continue
            if name in _MODEL_BUILDERS:
                break
    try:
        return _MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model builder {name!r}; registered: "
            f"{sorted(_MODEL_BUILDERS)}") from None


def registered_model_builders() -> Tuple[str, ...]:
    return tuple(sorted(_MODEL_BUILDERS))
