"""Image classifier architectures.

Two families per dataset:

* ``compact`` (default) — a scaled-down CNN that reaches the accuracy the
  experiments need at pure-numpy-friendly cost.  All benchmark profiles
  use these.
* ``paper`` — the architecture the MagNet paper trained (4 conv + 3 dense
  for MNIST; the CIFAR net is similarly heavier).  Available for full-
  fidelity runs when compute allows.

Classifiers output raw logits; use :func:`repro.nn.functional.softmax`
for probabilities (the JSD detector does).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import rng_from_seed


class ScaledLogits(Module):
    """Multiply a trained classifier's logits by a fixed constant.

    Scaling logits leaves predictions and accuracy untouched but steepens
    the logit landscape: reaching attack confidence κ on the scaled model
    costs the same input perturbation as κ/scale on the base model.  The
    paper's MNIST/CIFAR DNNs have much steeper logits than our compact
    substitutes (their κ∈[0,100] sweeps stay at small distortion), so the
    experiment configs wrap classifiers with the scale that calibrates
    the κ axis to the paper's range (see DESIGN.md §2).
    """

    def __init__(self, base: Module, scale: float):
        super().__init__()
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.base = base
        self.scale = float(scale)

    def forward(self, x):
        return self.base(x) * self.scale

    def __repr__(self):
        return f"ScaledLogits(scale={self.scale:g}, base={self.base!r})"


def build_digit_classifier(seed: int = 0, variant: str = "compact") -> Sequential:
    """CNN for 28x28x1 SyntheticDigits (the MNIST stand-in).

    compact: Conv16-Pool-Conv32-Pool-FC128-FC10 (~110k params).
    paper:   the MagNet MNIST net — Conv32,Conv32,Pool,Conv64,Conv64,Pool,
             FC200,FC200,FC10.
    """
    rng = rng_from_seed(seed)
    if variant == "compact":
        return Sequential(
            Conv2D(1, 16, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, 32, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(32 * 7 * 7, 128, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(128, 10, rng=rng),
        )
    if variant == "paper":
        return Sequential(
            Conv2D(1, 32, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            Conv2D(32, 32, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(32, 64, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            Conv2D(64, 64, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(64 * 7 * 7, 200, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(200, 200, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(200, 10, rng=rng),
        )
    raise ValueError(f"unknown variant {variant!r}; expected 'compact' or 'paper'")


def build_object_classifier(seed: int = 0, variant: str = "compact") -> Sequential:
    """CNN for 32x32x3 SyntheticObjects (the CIFAR-10 stand-in)."""
    rng = rng_from_seed(seed)
    if variant == "compact":
        return Sequential(
            Conv2D(3, 24, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(24, 48, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(48, 64, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(64 * 4 * 4, 128, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(128, 10, rng=rng),
        )
    if variant == "paper":
        return Sequential(
            Conv2D(3, 64, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            Conv2D(64, 64, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(64, 128, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            Conv2D(128, 128, 3, padding="same", rng=rng, weight_init="he_uniform"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(128 * 8 * 8, 256, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(256, 256, rng=rng, weight_init="he_uniform"),
            ReLU(),
            Dense(256, 10, rng=rng),
        )
    raise ValueError(f"unknown variant {variant!r}; expected 'compact' or 'paper'")


def build_classifier(dataset: str, seed: int = 0, variant: str = "compact") -> Sequential:
    """Dispatch on canonical dataset name (``digits`` / ``objects``)."""
    if dataset == "digits":
        return build_digit_classifier(seed=seed, variant=variant)
    if dataset == "objects":
        return build_object_classifier(seed=seed, variant=variant)
    raise KeyError(f"unknown dataset {dataset!r}; expected 'digits' or 'objects'")
