"""Evaluation harness: oblivious protocol, metrics, and text reporting."""

from repro.evaluation.metrics import (
    DefenseBreakdown,
    asr_against,
    attack_statistics,
    defense_breakdown,
)
from repro.evaluation.protocol import (
    ObliviousEvaluation,
    evaluate_oblivious,
    run_oblivious_attack,
    select_attack_seeds,
)
from repro.evaluation.analysis import (
    ClassBreakdown,
    confusion_pairs,
    per_class_breakdown,
    perturbation_statistics,
)
from repro.evaluation.roc import RocCurve, detector_roc_report, roc_curve
from repro.evaluation.transfer import (
    self_transfer_consistency,
    transfer_matrix,
    transfer_success,
)
from repro.evaluation.reporting import (
    format_architecture,
    format_series,
    format_table,
    sparkline,
)

__all__ = [
    "ClassBreakdown",
    "DefenseBreakdown",
    "ObliviousEvaluation",
    "RocCurve",
    "asr_against",
    "attack_statistics",
    "confusion_pairs",
    "defense_breakdown",
    "detector_roc_report",
    "evaluate_oblivious",
    "format_architecture",
    "format_series",
    "format_table",
    "per_class_breakdown",
    "perturbation_statistics",
    "roc_curve",
    "run_oblivious_attack",
    "select_attack_seeds",
    "self_transfer_consistency",
    "sparkline",
    "transfer_matrix",
    "transfer_success",
]
