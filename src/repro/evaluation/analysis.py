"""Result-analysis helpers: per-class breakdowns and perturbation anatomy.

These back the examples' diagnostic output and give downstream users the
standard slices of an attack evaluation: which classes fall first, where
the perturbation mass lives, and how sparse each attack really is.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult
from repro.defenses.magnet import MagNet


@dataclasses.dataclass
class ClassBreakdown:
    """Per-true-class attack statistics."""

    label: int
    count: int
    attack_success: float           # vs the undefended model
    defense_asr: Optional[float]    # vs the defense (None if not scored)
    mean_l1: float

    def as_row(self) -> List:
        return [self.label, self.count, 100 * self.attack_success,
                (100 * self.defense_asr
                 if self.defense_asr is not None else float("nan")),
                self.mean_l1]


def per_class_breakdown(result: AttackResult,
                        magnet: Optional[MagNet] = None
                        ) -> List[ClassBreakdown]:
    """Slice an attack result by true class.

    With ``magnet`` given, also computes the per-class defense-level ASR.
    """
    breakdowns: List[ClassBreakdown] = []
    detected = None
    reformed = None
    if magnet is not None:
        decision = magnet.decide(result.x_adv)
        detected = decision.detected
        reformed = decision.labels_reformed
    for label in np.unique(result.y_true):
        mask = result.y_true == label
        success = result.success[mask]
        l1 = result.l1[mask][success] if success.any() else np.array([0.0])
        defense_asr = None
        if magnet is not None:
            bypassed = (~detected[mask]) & (reformed[mask] != label)
            defense_asr = float(bypassed.mean())
        breakdowns.append(ClassBreakdown(
            label=int(label),
            count=int(mask.sum()),
            attack_success=float(success.mean()),
            defense_asr=defense_asr,
            mean_l1=float(l1.mean()),
        ))
    return breakdowns


def perturbation_statistics(result: AttackResult,
                            quantiles: Sequence[float] = (0.5, 0.9, 0.99)
                            ) -> Dict[str, float]:
    """Anatomy of the successful perturbations.

    Reports sparsity (fraction of pixels touched), the magnitude
    quantiles of the touched pixels, and energy concentration (fraction
    of L2^2 carried by the top-5% largest pixels) — the quantity that
    separates EAD's spiky perturbations from C&W's diffuse ones.
    """
    if not result.success.any():
        return {"n": 0}
    # Reconstruct per-example deltas is impossible without x0; use the
    # stored norms plus x_adv-based quantities where we can.
    n_pixels = int(np.prod(result.x_adv.shape[1:]))
    ok = result.success
    stats: Dict[str, float] = {
        "n": int(ok.sum()),
        "sparsity": float((result.l0[ok] / n_pixels).mean()),
        "mean_l1": float(result.l1[ok].mean()),
        "mean_l2": float(result.l2[ok].mean()),
        "mean_linf": float(result.linf[ok].mean()),
    }
    # Mean |changed pixel| = L1 / L0 (guard empty perturbations).
    l0 = np.maximum(result.l0[ok], 1.0)
    stats["mean_abs_changed"] = float((result.l1[ok] / l0).mean())
    # Peak-to-average ratio of the perturbation (Linf vs L1/L0):
    stats["peak_to_average"] = float(
        (result.linf[ok] / np.maximum(result.l1[ok] / l0, 1e-9)).mean())
    for q in quantiles:
        stats[f"l1_q{q:g}"] = float(np.quantile(result.l1[ok], q))
    return stats


def confusion_pairs(result: AttackResult, top_k: int = 5
                    ) -> List[Dict[str, float]]:
    """Most common (true class → adversarial class) flips."""
    ok = result.success
    if not ok.any():
        return []
    pairs: Dict[tuple, int] = {}
    for t, a in zip(result.y_true[ok], result.y_adv[ok]):
        pairs[(int(t), int(a))] = pairs.get((int(t), int(a)), 0) + 1
    total = sum(pairs.values())
    ranked = sorted(pairs.items(), key=lambda kv: -kv[1])[:top_k]
    return [
        {"true": t, "adversarial": a, "count": c, "fraction": c / total}
        for (t, a), c in ranked
    ]
