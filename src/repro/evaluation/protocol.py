"""The oblivious (black-box transfer) attack protocol.

The paper's threat model: the attacker crafts adversarial examples
against the *undefended* classifier — completely unaware MagNet exists —
and the defender then evaluates the same classifier wrapped in MagNet on
those examples.  This module fixes that protocol:

1. select attack seeds — test images the undefended classifier gets
   right (the paper samples 1000 correctly classified test images);
2. craft examples against the undefended classifier;
3. score each MagNet variant on the crafted batch.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import logits_of
from repro.datasets.base import Dataset
from repro.defenses.magnet import MagNet
from repro.evaluation.metrics import DefenseBreakdown, defense_breakdown
from repro.nn.layers import Module
from repro.utils.rng import rng_from_seed


def select_attack_seeds(model: Module, data: Dataset, n: int,
                        seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` correctly classified test images (and their labels).

    Raises if the classifier gets fewer than ``n`` test images right —
    the protocol is meaningless on a weak classifier.
    """
    preds = logits_of(model, data.x).argmax(axis=1)
    correct = np.flatnonzero(preds == data.y)
    if len(correct) < n:
        raise ValueError(
            f"classifier is only correct on {len(correct)} test images, "
            f"cannot select {n} attack seeds")
    rng = rng_from_seed(seed)
    chosen = rng.choice(correct, size=n, replace=False)
    chosen.sort()
    return data.x[chosen], data.y[chosen]


@dataclasses.dataclass
class ObliviousEvaluation:
    """Outcome of one attack evaluated against one MagNet variant."""

    attack_name: str
    magnet_name: str
    attack_success_rate: float      # vs the defense (paper's ASR)
    defense_accuracy: float         # = 1 - ASR
    undefended_success_rate: float  # vs the bare classifier
    breakdown: DefenseBreakdown
    mean_l1: float
    mean_l2: float

    def summary(self) -> str:
        return (f"{self.attack_name} vs {self.magnet_name}: "
                f"ASR={100 * self.attack_success_rate:.1f}% "
                f"(undefended {100 * self.undefended_success_rate:.1f}%), "
                f"L1={self.mean_l1:.3f}, L2={self.mean_l2:.3f}")


def evaluate_oblivious(magnet: MagNet, result: AttackResult) -> ObliviousEvaluation:
    """Score an attack result (crafted obliviously) against a MagNet."""
    breakdown = defense_breakdown(magnet, result.x_adv, result.y_true)
    return ObliviousEvaluation(
        attack_name=result.name,
        magnet_name=magnet.name,
        attack_success_rate=1.0 - breakdown.full,
        defense_accuracy=breakdown.full,
        undefended_success_rate=result.success_rate,
        breakdown=breakdown,
        mean_l1=result.mean_distortion("l1"),
        mean_l2=result.mean_distortion("l2"),
    )


def run_oblivious_attack(attack: Attack, magnet: MagNet, x0: np.ndarray,
                         y0: np.ndarray) -> ObliviousEvaluation:
    """Craft (against attack.model — the undefended net) and evaluate."""
    result = attack.attack(x0, y0)
    return evaluate_oblivious(magnet, result)
