"""Detector ROC analysis.

The paper tunes MagNet's detectors by a fixed false-positive budget; the
natural follow-up question — *could any threshold have worked?* — is
answered by the detector's full ROC curve over clean vs adversarial
scores.  These utilities compute ROC points, AUC, and the TPR at a given
FPR, and power the detector-headroom ablation benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np


@dataclasses.dataclass
class RocCurve:
    """An ROC curve: thresholds with their (fpr, tpr) operating points."""

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve (trapezoidal; points are FPR-sorted)."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.tpr, self.fpr))

    def tpr_at_fpr(self, max_fpr: float) -> float:
        """Best achievable TPR with FPR <= max_fpr."""
        ok = self.fpr <= max_fpr + 1e-12
        return float(self.tpr[ok].max()) if ok.any() else 0.0

    def threshold_at_fpr(self, max_fpr: float) -> float:
        """Lowest threshold whose FPR stays within budget."""
        ok = self.fpr <= max_fpr + 1e-12
        if not ok.any():
            return float(self.thresholds.max())
        best = np.flatnonzero(ok)[np.argmax(self.tpr[ok])]
        return float(self.thresholds[best])


def roc_curve(clean_scores: Sequence[float],
              adversarial_scores: Sequence[float]) -> RocCurve:
    """Compute the ROC of a higher-is-anomalous detector score.

    Positives are adversarial examples (detected when score > threshold).
    """
    clean = np.asarray(clean_scores, dtype=np.float64)
    adv = np.asarray(adversarial_scores, dtype=np.float64)
    if clean.size == 0 or adv.size == 0:
        raise ValueError("need both clean and adversarial scores")
    thresholds = np.unique(np.concatenate([clean, adv]))
    # Sentinels: below the min (accept everything → (1,1)) and above the
    # max (reject nothing → (0,0)), so the curve spans the full FPR range.
    thresholds = np.concatenate(
        [[thresholds[0] - 1.0], thresholds, [thresholds[-1] + 1.0]])
    fpr = np.array([(clean > t).mean() for t in thresholds])
    tpr = np.array([(adv > t).mean() for t in thresholds])
    order = np.lexsort((tpr, fpr))
    return RocCurve(thresholds=thresholds[order], fpr=fpr[order],
                    tpr=tpr[order])


def detector_roc_report(detector, x_clean: np.ndarray, x_adv: np.ndarray,
                        fpr_budgets: Sequence[float] = (0.001, 0.01, 0.05)
                        ) -> dict:
    """Summarize a detector's separability for one adversarial batch."""
    clean_scores = detector.score(x_clean)
    adv_scores = detector.score(x_adv)
    curve = roc_curve(clean_scores, adv_scores)
    return {
        "detector": detector.name,
        "auc": curve.auc,
        "clean_median": float(np.median(clean_scores)),
        "adv_median": float(np.median(adv_scores)),
        "tpr_at_fpr": {f"{b:g}": curve.tpr_at_fpr(b) for b in fpr_budgets},
    }
