"""Plain-text rendering of tables and figure series.

The paper's figures are line charts (classification accuracy vs attack
confidence).  With no plotting stack available offline, every figure is
reproduced as (a) the underlying numeric series, printed as aligned
columns, and (b) a coarse ASCII sparkline per curve so trends are visible
directly in benchmark output.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float = 1.0) -> str:
    """Unicode sparkline of a numeric series scaled to [lo, hi]."""
    span = max(hi - lo, 1e-12)
    out = []
    for v in values:
        if v is None or (isinstance(v, float) and np.isnan(v)):
            out.append("·")
            continue
        frac = min(max((v - lo) / span, 0.0), 1.0)
        out.append(_SPARK_LEVELS[int(round(frac * (len(_SPARK_LEVELS) - 1)))])
    return "".join(out)


def format_series(x_label: str, x_values: Sequence, series: Mapping[str, Sequence[float]],
                  title: Optional[str] = None, as_percent: bool = True) -> str:
    """Render a figure's curves: one numeric column per x, plus sparklines.

    ``series`` maps curve name → list of y values aligned with x_values.
    """
    headers = [x_label] + list(series.keys())
    rows: List[List] = []
    for i, x in enumerate(x_values):
        row: List = [x]
        for name in series:
            y = series[name][i]
            if y is None or (isinstance(y, float) and np.isnan(y)):
                row.append(float("nan"))
            else:
                row.append(100.0 * y if as_percent else y)
        rows.append(row)
    table = format_table(headers, rows, title=title)
    spark_lines = [
        f"  {name:<28} {sparkline(list(ys))}" for name, ys in series.items()
    ]
    return table + "\n" + "\n".join(spark_lines)


def format_architecture(title: str, columns: Mapping[str, Sequence[str]]) -> str:
    """Render an architecture table (paper Tables II and V)."""
    names = list(columns.keys())
    depth = max(len(v) for v in columns.values())
    rows = []
    for i in range(depth):
        rows.append([columns[n][i] if i < len(columns[n]) else "" for n in names])
    return format_table(names, rows, title=title)
