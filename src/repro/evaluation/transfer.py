"""Attack transferability analysis.

The paper's entire threat model rests on *transferability*: examples
crafted on the undefended model transfer to the defended one.  This
module generalizes that measurement to arbitrary model pairs — craft on
a source model, evaluate misclassification on every target model — the
classic transfer-matrix experiment (Papernot et al., 2016).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import logits_of
from repro.nn.layers import Module
from repro.runtime.executor import parallel_map, resolve_jobs
from repro.obs import span


def transfer_success(result: AttackResult, target: Module) -> float:
    """Fraction of *source-successful* examples that also fool ``target``.

    Returns NaN when the source attack found nothing (no numerator).
    """
    if not result.success.any():
        return float("nan")
    x = result.x_adv[result.success]
    y = result.y_true[result.success]
    preds = logits_of(target, x).argmax(axis=1)
    return float((preds != y).mean())


def _craft_on_source(payload) -> AttackResult:
    """Worker body: craft the attack bound to one source model."""
    attack_factory, model, x0, y0 = payload
    return attack_factory(model).attack(x0, y0)


def transfer_matrix(attack_factory, models: Mapping[str, Module],
                    x0: np.ndarray, y0: np.ndarray, *,
                    jobs: Optional[int] = 1) -> Dict[str, Dict[str, float]]:
    """Full craft-on-A, evaluate-on-B matrix.

    Args:
        attack_factory: callable ``model -> Attack`` (fresh attack bound
            to each source model).
        models: name -> model mapping; every model is both source and
            target.
        x0, y0: clean seeds and labels (should be correctly classified by
            every model for a clean reading).
        jobs: worker processes to craft the per-source attacks with
            (``1`` = serial, ``None``/``0`` = one per core).  Crafting
            per source model is independent, so the matrix is identical
            for any value; factories that don't pickle (e.g. lambdas)
            degrade to the serial path.

    Returns:
        nested dict ``matrix[source][target]`` = transfer success rate.
    """
    names = list(models)
    with span("transfer/matrix", sources=len(names), batch=len(y0)):
        payloads = [(attack_factory, models[name], x0, y0) for name in names]
        crafted = parallel_map(_craft_on_source, payloads,
                               jobs=resolve_jobs(jobs), chunk_size=1)
    results: Dict[str, AttackResult] = dict(zip(names, crafted))
    matrix: Dict[str, Dict[str, float]] = {}
    for src, result in results.items():
        matrix[src] = {
            tgt: transfer_success(result, model)
            for tgt, model in models.items()
        }
    return matrix


def self_transfer_consistency(matrix: Mapping[str, Mapping[str, float]]
                              ) -> bool:
    """Diagonal sanity check: an attack always 'transfers' to its source."""
    return all(
        np.isnan(row[src]) or row[src] >= 0.999
        for src, row in matrix.items()
    )
