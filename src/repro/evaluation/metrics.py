"""Evaluation metrics: defense decomposition and distortion statistics.

The paper's supplementary figures decompose MagNet into four *defense
schemes* evaluated on the same adversarial examples:

1. no defense — the plain classifier;
2. detector only — rejected or correctly classified raw;
3. reformer only — correctly classified after reforming;
4. detector & reformer — rejected or correctly classified after reforming.

:class:`DefenseBreakdown` captures all four from one MagNet pass.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.attacks.base import AttackResult
from repro.defenses.magnet import MagNet, MagNetDecision


@dataclasses.dataclass
class DefenseBreakdown:
    """Accuracy of the four defense schemes on one example batch."""

    no_defense: float
    detector_only: float
    reformer_only: float
    full: float

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)

    @classmethod
    def from_decision(cls, decision: MagNetDecision,
                      y_true: np.ndarray) -> "DefenseBreakdown":
        y_true = np.asarray(y_true, dtype=np.int64)
        raw_ok = decision.labels_raw == y_true
        ref_ok = decision.labels_reformed == y_true
        det = decision.detected
        return cls(
            no_defense=float(raw_ok.mean()),
            detector_only=float((det | raw_ok).mean()),
            reformer_only=float(ref_ok.mean()),
            full=float((det | ref_ok).mean()),
        )


def defense_breakdown(magnet: MagNet, x_adv: np.ndarray,
                      y_true: np.ndarray) -> DefenseBreakdown:
    """Evaluate all four defense schemes on a batch of (possibly
    adversarial) inputs."""
    return DefenseBreakdown.from_decision(magnet.decide(x_adv), y_true)


def attack_statistics(result: AttackResult) -> Dict[str, float]:
    """Success rate + success-averaged distortions, Table-I style."""
    return {
        "success_rate": result.success_rate,
        "l0": result.mean_distortion("l0"),
        "l1": result.mean_distortion("l1"),
        "l2": result.mean_distortion("l2"),
        "linf": result.mean_distortion("linf"),
    }


def asr_against(magnet: MagNet, result: AttackResult) -> float:
    """Defense-level attack success rate of an attack result vs a MagNet.

    Follows the paper: ASR is measured over the full attacked batch (rows
    where the attack failed against the undefended model carry the clean
    image, which the defense handles correctly, so they count as
    defended).
    """
    return magnet.attack_success_rate(result.x_adv, result.y_true)
