"""Adaptive attacks against the *defended* MagNet pipeline.

:mod:`repro.attacks.graybox` recreates Carlini & Wagner's gray-box
setting by differentiating through the reformer as an ordinary module.
This module goes two steps further, following "MagNet and 'Efficient
Defenses...' are Not Robust" (arXiv:1711.08478):

* **BPDA** (Backward-Pass Differentiable Approximation) — the forward
  pass runs the *exact* defended pipeline (the real
  :class:`~repro.defenses.reformer.Reformer`, including its output
  clipping), while the backward pass substitutes a differentiable
  surrogate: the identity by default, or any autoencoder-shaped module
  (e.g. an independently trained AE, the gray-box "doesn't know the
  exact parameters" assumption).  Success/selection therefore always
  reflects the true defense, never the surrogate.
* **Detector-aware combined loss** — MagNet's
  :class:`~repro.defenses.detectors.ReconstructionDetector` and
  :class:`~repro.defenses.detectors.JSDDetector` scores are re-expressed
  as differentiable :mod:`repro.nn` graphs, and a hinge on each
  calibrated threshold is folded into the EAD / C&W objective through
  the :class:`~repro.attacks.batch.BatchLoopMixin` loss hooks.  Because
  the penalty is exactly zero only when every score sits at or below its
  (safety-scaled) threshold, the engines' unchanged success test
  ``f <= -kappa`` now means *misclassified at confidence κ AND under
  every detection threshold* — detection bypass by construction — and
  the whole thing still runs on the PR 5 masked batch engine.

Everything here is model-agnostic plumbing; the scenario registry
(:mod:`repro.scenarios`) enumerates the threat models built from it.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.ead import EAD
from repro.attacks.gradients import frozen_parameters
from repro.defenses.detectors import Detector, JSDDetector, ReconstructionDetector
from repro.nn.autograd import (
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    relu,
    sqrt,
)
from repro.nn.layers import Module

__all__ = [
    "BPDAReformedModel",
    "DetectorAwareCW",
    "DetectorAwareEAD",
    "DetectorMarginPenalty",
    "bpda_model",
    "detector_aware_attack",
    "detector_score_graph",
    "jsd_score_graph",
    "reconstruction_score_graph",
    "straight_through",
]


# ----------------------------------------------------------------------
# BPDA: exact forward, substituted backward
# ----------------------------------------------------------------------
def straight_through(value: np.ndarray, backward: Tensor) -> Tensor:
    """Graph node carrying ``value`` forward and ``backward``'s graph back.

    The BPDA primitive: the output's data is exactly ``value`` (no
    arithmetic detour, so the forward pass is bit-identical to the
    non-differentiable computation it stands in for), while the vector-
    Jacobian product is the identity onto ``backward`` — gradients flow
    as if the replaced computation were ``backward`` itself.  Builds the
    parent link the same way the autograd primitives do, and records
    nothing under :func:`~repro.nn.autograd.no_grad`.
    """
    backward = as_tensor(backward)
    value = np.asarray(value, dtype=backward.data.dtype)
    if value.shape != backward.shape:
        raise ValueError(
            f"straight-through shapes must match: value {value.shape} "
            f"vs backward path {backward.shape}")
    out = Tensor(value, dtype=value.dtype)
    if is_grad_enabled() and (backward.requires_grad or backward._parents):
        out._parents = [(backward, lambda g: g)]
    return out


class BPDAReformedModel(Module):
    """The defended pipeline with a BPDA backward pass.

    Forward: ``logits = classifier(reformer.reform(x))`` — the *real*
    reformer, including its [0, 1] output clipping, so predictions (and
    therefore attack success tests) are exactly the defended pipeline's.
    Backward: gradients flow through ``surrogate`` instead of the
    reformer — the identity when ``surrogate`` is None (Athalye et
    al.'s BPDA-with-identity, justified by AE(x) ≈ x near the data
    manifold), or any same-shaped module (surrogate-AE BPDA).
    """

    def __init__(self, reformer, classifier: Module,
                 surrogate: Optional[Module] = None):
        super().__init__()
        if reformer is None:
            raise ValueError("BPDA needs a reformer to approximate")
        self.reformer = reformer
        self.classifier = classifier
        self.surrogate = surrogate

    def forward(self, x) -> Tensor:
        xt = as_tensor(x)
        reformed = self.reformer.reform(xt.data)
        backward_path = xt if self.surrogate is None else self.surrogate(xt)
        return self.classifier(straight_through(reformed, backward_path))


def bpda_model(magnet, surrogate: Optional[Module] = None) -> BPDAReformedModel:
    """Build the BPDA surrogate for a MagNet instance (cf.
    :func:`~repro.attacks.graybox.graybox_model`)."""
    if magnet.reformer is None:
        raise ValueError("this MagNet variant has no reformer to attack through")
    return BPDAReformedModel(magnet.reformer, magnet.classifier,
                             surrogate=surrogate)


# ----------------------------------------------------------------------
# Differentiable detector scores
# ----------------------------------------------------------------------
def reconstruction_score_graph(autoencoder: Module, xt: Tensor,
                               norm: int = 1) -> Tensor:
    """``ReconstructionDetector.score`` as a differentiable graph.

    Per example: the per-pixel-mean Lp distance between ``x`` and
    ``AE(x)`` — identical arithmetic to the numpy detector, built from
    autograd ops so it can join an attack objective.
    """
    if norm not in (1, 2):
        raise ValueError(f"norm must be 1 or 2, got {norm}")
    xt = as_tensor(xt)
    recon = autoencoder(xt)
    diff = (xt - recon).reshape(xt.shape[0], -1)
    if norm == 1:
        return diff.abs().mean(axis=1)
    return sqrt((diff * diff).mean(axis=1))


def _softmax_graph(logits: Tensor, temperature: float) -> Tensor:
    """Temperature softmax; the stabilizing shift is a constant (softmax
    is shift-invariant, so detaching it leaves the gradient exact)."""
    z = logits * (1.0 / temperature)
    shift = as_tensor(z.data.max(axis=1, keepdims=True))
    e = (z - shift).exp()
    return e / e.sum(axis=1, keepdims=True)


def jsd_score_graph(autoencoder: Module, classifier: Module, xt: Tensor,
                    temperature: float, eps: float = 1e-12) -> Tensor:
    """``JSDDetector.score`` as a differentiable graph.

    Row-wise Jensen–Shannon divergence between the classifier's softened
    predictions on ``x`` and on ``AE(x)``, with the same post-softmax
    clipping as the numpy detector (clipping's flat regions contribute
    zero gradient — the standard subgradient).
    """
    xt = as_tensor(xt)
    recon = autoencoder(xt)
    p = _softmax_graph(classifier(xt), temperature).clip(eps, 1.0)
    q = _softmax_graph(classifier(recon), temperature).clip(eps, 1.0)
    m = (p + q) * 0.5
    kl_pm = (p * (p.log() - m.log())).sum(axis=1)
    kl_qm = (q * (q.log() - m.log())).sum(axis=1)
    return (kl_pm + kl_qm) * 0.5


def detector_score_graph(detector: Detector, xt: Tensor) -> Tensor:
    """Differentiable score graph for a calibrated MagNet detector."""
    if isinstance(detector, ReconstructionDetector):
        return reconstruction_score_graph(detector.autoencoder, xt,
                                          detector.norm)
    if isinstance(detector, JSDDetector):
        return jsd_score_graph(detector.autoencoder, detector.classifier,
                               xt, detector.temperature)
    raise TypeError(
        f"no differentiable graph for {type(detector).__name__}; "
        "supported: ReconstructionDetector, JSDDetector")


class DetectorMarginPenalty:
    """Differentiable hinge on every detector's calibrated threshold.

    Per example the penalty is ``weight * Σ_d relu(s_d(x) / τ_d - 1)``
    with ``τ_d = threshold_frac * threshold_d``: zero exactly when every
    score sits at or below its safety-scaled threshold, growing linearly
    (in threshold units, so detectors with wildly different score scales
    contribute comparably) once a detector would fire.  ``threshold_frac
    < 1`` crafts examples that stay *under* the boundary with margin
    instead of riding it.
    """

    def __init__(self, detectors: Sequence[Detector], weight: float = 1.0,
                 threshold_frac: float = 0.95):
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if not 0.0 < threshold_frac <= 1.0:
            raise ValueError(
                f"threshold_frac must be in (0, 1], got {threshold_frac}")
        self.detectors: List[Detector] = list(detectors)
        for det in self.detectors:
            if det.threshold is None:
                raise RuntimeError(
                    f"{det.name} has no threshold; calibrate the MagNet "
                    "before building a detector-aware attack")
            if det.threshold <= 0:
                raise ValueError(
                    f"{det.name} threshold must be positive for the "
                    f"normalized hinge, got {det.threshold}")
        self.weight = float(weight)
        self.threshold_frac = float(threshold_frac)

    def graph(self, xt: Tensor) -> Tensor:
        """(N,) penalty graph over a (possibly grad-tracking) input."""
        total: Optional[Tensor] = None
        for det in self.detectors:
            tau = det.threshold * self.threshold_frac
            term = relu(detector_score_graph(det, xt) * (1.0 / tau) - 1.0)
            total = term if total is None else total + term
        if total is None:
            return as_tensor(np.zeros(xt.shape[0], dtype=np.float32))
        return total * self.weight

    @contextlib.contextmanager
    def _frozen(self):
        """Freeze every detector-owned module so the penalty backward
        skips parameter-gradient work (attacks only need d/dx)."""
        with contextlib.ExitStack() as stack:
            for det in self.detectors:
                for attr in ("autoencoder", "classifier"):
                    module = getattr(det, attr, None)
                    if module is not None:
                        stack.enter_context(frozen_parameters(module))
            yield

    def values(self, x: np.ndarray) -> np.ndarray:
        """(N,) penalty values, no graph (success tests)."""
        with no_grad():
            return self.graph(as_tensor(np.asarray(x, dtype=np.float32))
                              ).data.astype(np.float64)

    def value_and_grad(self, x: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Penalty values and their input gradient, one backward pass."""
        xt = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
        with self._frozen():
            penalty = self.graph(xt)
        penalty.backward(np.ones_like(penalty.data))
        grad = xt.grad if xt.grad is not None else np.zeros_like(xt.data)
        return penalty.data.astype(np.float64), grad


# ----------------------------------------------------------------------
# Detector-aware optimization attacks
# ----------------------------------------------------------------------
class _DetectorAwareMixin:
    """Fold a :class:`DetectorMarginPenalty` into an optimization attack.

    Overrides the :class:`~repro.attacks.batch.BatchLoopMixin` loss
    hooks: the penalty's value joins the hinge loss (so the unchanged
    engine success test ``f <= -kappa`` additionally requires every
    detector score under its safety-scaled threshold) and its gradient
    joins the input gradient.  The masked batch engine, per-lane binary
    search and abort-early machinery are untouched.
    """

    penalty: DetectorMarginPenalty

    def _attack_loss_and_grad(self, x, labels):
        f_vals, grad, logits = super()._attack_loss_and_grad(x, labels)
        p_vals, p_grad = self.penalty.value_and_grad(x)
        return f_vals + p_vals, grad + p_grad.astype(grad.dtype), logits

    def _attack_loss(self, x, labels):
        f_vals, logits = super()._attack_loss(x, labels)
        return f_vals + self.penalty.values(x), logits

    def _result_name(self, *args, **kwargs) -> str:
        return "detector_aware+" + super()._result_name(*args, **kwargs)


class DetectorAwareEAD(_DetectorAwareMixin, EAD):
    """EAD whose objective jointly fools the model and evades detection.

    ``model`` is typically a :class:`BPDAReformedModel` (or a gray-box
    :class:`~repro.attacks.graybox.ReformedModel`), so one optimization
    run targets the full defended pipeline: misclassify after reforming
    *and* stay under every detector threshold.  A lane counts as
    successful only when both hold.
    """

    name = "ead_detector_aware"

    def __init__(self, model: Module, detectors: Sequence[Detector], *,
                 detector_weight: float = 1.0, threshold_frac: float = 0.95,
                 **ead_kwargs):
        super().__init__(model, **ead_kwargs)
        self.penalty = DetectorMarginPenalty(
            detectors, weight=detector_weight, threshold_frac=threshold_frac)


class DetectorAwareCW(_DetectorAwareMixin, CarliniWagnerL2):
    """C&W-L2 with the detector-evasion hinge in its objective."""

    name = "cw_l2_detector_aware"

    def __init__(self, model: Module, detectors: Sequence[Detector], *,
                 detector_weight: float = 1.0, threshold_frac: float = 0.95,
                 **cw_kwargs):
        super().__init__(model, **cw_kwargs)
        self.penalty = DetectorMarginPenalty(
            detectors, weight=detector_weight, threshold_frac=threshold_frac)


def detector_aware_attack(magnet, family: str = "ead", *,
                          surrogate: Optional[Module] = None,
                          detector_weight: float = 1.0,
                          threshold_frac: float = 0.95,
                          **attack_kwargs):
    """Build the full adaptive attack against a calibrated MagNet.

    The crafted model is the BPDA pipeline (exact defended forward,
    identity/surrogate backward) and every detector of ``magnet`` joins
    the objective.  ``family`` selects :class:`DetectorAwareEAD`
    (``"ead"``) or :class:`DetectorAwareCW` (``"cw"``);
    ``attack_kwargs`` pass through to the underlying attack.
    """
    model = bpda_model(magnet, surrogate=surrogate)
    if family == "ead":
        cls = DetectorAwareEAD
    elif family == "cw":
        cls = DetectorAwareCW
    else:
        raise ValueError(f"family must be 'ead' or 'cw', got {family!r}")
    return cls(model, magnet.detectors, detector_weight=detector_weight,
               threshold_frac=threshold_frac, **attack_kwargs)
