"""EAD: Elastic-net Attacks to DNNs (Chen et al., AAAI 2018).

The paper's central attack.  EAD minimizes

    c * f(x, t) + ||x - x0||_2^2 + beta * ||x - x0||_1     s.t. x in [0,1]^p

via iterative shrinkage-thresholding: a gradient step on the smooth part
``g(x) = c*f(x) + ||x - x0||_2^2`` followed by the projected
shrink operator S_beta (paper eq. (5)), which zeroes perturbations
smaller than beta and shrinks larger ones — the L1 sparsification that
lets these examples slip past MagNet.

Both the plain ISTA iteration of the paper's eq. (4) and the FISTA
momentum variant used by the reference EAD implementation are available
(``method="ista"|"fista"``); the step size follows the reference's
square-root polynomial decay.

Two *decision rules* select the final adversarial example among all
successful iterates: least elastic-net distortion (``"en"``) or least L1
distortion (``"l1"``).  A single optimization run tracks both, so
:meth:`EAD.attack_both` shares all compute between the two rules — the
paper evaluates both everywhere.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import margin_loss_and_grad
from repro.nn.layers import Module
from repro.obs import counter, span
from repro.utils.logging import get_logger

log = get_logger(__name__)

DECISION_RULES = ("en", "l1")


def shrink_threshold(z: np.ndarray, x0: np.ndarray, beta: float) -> np.ndarray:
    """The projected shrinkage-thresholding operator S_beta (paper eq. (5)).

    Per pixel: keep the original value when the proposed perturbation is
    within beta; otherwise shrink the perturbation by beta and project
    into the [0, 1] box.
    """
    diff = z - x0
    shrunk_up = np.minimum(z - beta, 1.0)
    shrunk_down = np.maximum(z + beta, 0.0)
    return np.where(diff > beta, shrunk_up,
                    np.where(diff < -beta, shrunk_down, x0)).astype(np.float32)


class EAD(Attack):
    """Batched elastic-net attack with per-example binary search on c.

    All hyperparameters after ``model`` are keyword-only; use
    :meth:`from_profile` to bind the attack budget of an
    :class:`~repro.experiments.config.ExperimentProfile`.
    """

    name = "ead"

    def __init__(self, model: Module, *, beta: float = 1e-2, kappa: float = 0.0,
                 binary_search_steps: int = 9, max_iterations: int = 1000,
                 lr: float = 1e-2, initial_const: float = 1e-3,
                 const_upper: float = 1e10, rule: str = "en",
                 method: str = "fista", targeted: bool = False):
        super().__init__(model)
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if rule not in DECISION_RULES:
            raise ValueError(f"rule must be one of {DECISION_RULES}, got {rule!r}")
        if method not in ("ista", "fista"):
            raise ValueError(f"method must be 'ista' or 'fista', got {method!r}")
        self.beta = float(beta)
        self.kappa = float(kappa)
        self.binary_search_steps = int(binary_search_steps)
        self.max_iterations = int(max_iterations)
        self.lr = float(lr)
        self.initial_const = float(initial_const)
        self.const_upper = float(const_upper)
        self.rule = rule
        self.method = method
        self.targeted = bool(targeted)

    @classmethod
    def from_profile(cls, model: Module, profile, **overrides) -> "EAD":
        """Build the attack with a profile's optimization budget.

        Maps ``max_iterations`` / ``binary_search_steps`` /
        ``initial_const`` / ``ead_lr`` from an
        :class:`~repro.experiments.config.ExperimentProfile`; keyword
        ``overrides`` (typically ``beta=``, ``kappa=``) win over profile
        fields.
        """
        params = dict(
            binary_search_steps=profile.binary_search_steps,
            max_iterations=profile.max_iterations,
            lr=profile.ead_lr,
            initial_const=profile.initial_const,
        )
        params.update(overrides)
        return cls(model, **params)

    # ------------------------------------------------------------------
    def attack(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Craft adversarial examples, returning the configured rule's picks."""
        return self.attack_both(x0, labels)[self.rule]

    def attack_both(self, x0: np.ndarray, labels: np.ndarray
                    ) -> Dict[str, AttackResult]:
        """Run once, return ``{"en": ..., "l1": ...}`` results.

        The optimization trajectory is identical for both decision rules;
        only the selection among successful iterates differs, so sharing
        one run halves the experiment cost.
        """
        self._validate_inputs(x0, labels)
        x0 = np.asarray(x0, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        n = x0.shape[0]

        lower = np.zeros(n, dtype=np.float64)
        upper = np.full(n, self.const_upper, dtype=np.float64)
        const = np.full(n, self.initial_const, dtype=np.float64)

        best = {
            rule: {
                "score": np.full(n, np.inf, dtype=np.float64),
                "adv": x0.copy(),
                "const": np.full(n, np.nan, dtype=np.float64),
            }
            for rule in DECISION_RULES
        }
        ever_success = np.zeros(n, dtype=bool)
        iters = counter("attack/iterations")

        with span(f"attack/{self.name}", batch=n, beta=self.beta,
                  kappa=self.kappa) as attack_sp:
            for step in range(self.binary_search_steps):
                with span("attack/binary_search_step", step=step):
                    x, y, step_success = self._optimize_step(
                        x0, labels, const, best, ever_success, iters)

                found = step_success
                upper[found] = np.minimum(upper[found], const[found])
                lower[~found] = np.maximum(lower[~found], const[~found])
                has_upper = upper < self.const_upper
                midpoint = (lower + upper) / 2.0
                const = np.where(has_upper, midpoint,
                                 np.where(found, const, const * 10.0))
                const = np.minimum(const, self.const_upper)
            attack_sp["successes"] = int(ever_success.sum())

        log.debug("EAD beta=%g kappa=%g: %d/%d successful",
                  self.beta, self.kappa, int(ever_success.sum()), n)
        results = {}
        for rule in DECISION_RULES:
            results[rule] = AttackResult.from_examples(
                self.model, x0, best[rule]["adv"], ever_success, labels,
                const=best[rule]["const"],
                name=f"ead_{rule}(beta={self.beta:g}, kappa={self.kappa:g})")
        return results

    def _optimize_step(self, x0: np.ndarray, labels: np.ndarray,
                       const: np.ndarray, best: Dict[str, Dict[str, np.ndarray]],
                       ever_success: np.ndarray, iters):
        """One binary-search step: a full ISTA/FISTA run at fixed ``const``.

        Mutates ``best`` and ``ever_success`` in place; returns the final
        iterate, the slack variable, and this step's success mask.
        """
        n = x0.shape[0]
        x = x0.copy()
        y = x0.copy()   # FISTA slack variable (equals x for ISTA)
        step_success = np.zeros(n, dtype=bool)

        for it in range(self.max_iterations):
            iters.inc()
            lr_it = self.lr * np.sqrt(max(1.0 - it / self.max_iterations, 0.0))

            f_vals, grad_f, _ = margin_loss_and_grad(
                self.model, y, labels, self.kappa, targeted=self.targeted)
            grad_g = (const[:, None, None, None].astype(np.float32) * grad_f
                      + 2.0 * (y - x0))
            z = y - lr_it * grad_g
            x_new = shrink_threshold(z, x0, self.beta)

            if self.method == "fista":
                momentum = it / (it + 3.0)
                y = x_new + momentum * (x_new - x)
            else:
                y = x_new
            x = x_new

            # Evaluate the *iterate* (not the slack) for success/selection.
            f_iter, _, _ = _margin_no_grad(
                self.model, x_new, labels, self.kappa, self.targeted)
            succeeded = f_iter <= -self.kappa + 1e-6
            if not succeeded.any():
                continue
            step_success |= succeeded
            ever_success |= succeeded

            delta = (x_new - x0).astype(np.float64).reshape(n, -1)
            l1 = np.abs(delta).sum(axis=1)
            l2_sq = (delta ** 2).sum(axis=1)
            scores = {"l1": l1, "en": self.beta * l1 + l2_sq}
            for rule in DECISION_RULES:
                improved = succeeded & (scores[rule] < best[rule]["score"])
                if improved.any():
                    best[rule]["score"][improved] = scores[rule][improved]
                    best[rule]["adv"][improved] = x_new[improved]
                    best[rule]["const"][improved] = const[improved]

        return x, y, step_success


def _margin_no_grad(model: Module, x: np.ndarray, labels: np.ndarray,
                    kappa: float, targeted: bool):
    """Hinge loss values without building a graph (success checks only)."""
    from repro.attacks.gradients import attack_margin, logits_of

    logits = logits_of(model, x)
    margin = attack_margin(logits, labels, targeted)
    f_vals = np.maximum(-margin, -kappa)
    return f_vals, None, logits
