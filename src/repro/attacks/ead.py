"""EAD: Elastic-net Attacks to DNNs (Chen et al., AAAI 2018).

The paper's central attack.  EAD minimizes

    c * f(x, t) + ||x - x0||_2^2 + beta * ||x - x0||_1     s.t. x in [0,1]^p

via iterative shrinkage-thresholding: a gradient step on the smooth part
``g(x) = c*f(x) + ||x - x0||_2^2`` followed by the projected
shrink operator S_beta (paper eq. (5)), which zeroes perturbations
smaller than beta and shrinks larger ones — the L1 sparsification that
lets these examples slip past MagNet.

Both the plain ISTA iteration of the paper's eq. (4) and the FISTA
momentum variant used by the reference EAD implementation are available
(``method="ista"|"fista"``); the step size follows the reference's
square-root polynomial decay.

Two *decision rules* select the final adversarial example among all
successful iterates: least elastic-net distortion (``"en"``) or least L1
distortion (``"l1"``).  A single optimization run tracks both, so
:meth:`EAD.attack_both` shares all compute between the two rules — the
paper evaluates both everywhere.

The optimize loop runs on the masked batch engine
(:mod:`repro.attacks.batch`): all lanes advance per numpy dispatch, the
per-example binary-search bracket lives in wide arrays, and with
``abort_early=True`` lanes whose elastic-net objective plateaus freeze
in place and drop out of the model dispatch.  ``batch_mode=
"per_example"`` selects the lane-at-a-time reference engine instead.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.attacks.base import Attack, AttackResult, concat_results
from repro.attacks.batch import BatchLoopMixin, MaskedLanes
from repro.nn.backend import flush_kernel_events, use_backend
from repro.nn.layers import Module
from repro.obs import counter, histogram, span
from repro.utils.logging import get_logger

log = get_logger(__name__)

DECISION_RULES = ("en", "l1")


def shrink_threshold(z: np.ndarray, x0: np.ndarray, beta: float) -> np.ndarray:
    """The projected shrinkage-thresholding operator S_beta (paper eq. (5)).

    Per pixel: keep the original value when the proposed perturbation is
    within beta; otherwise shrink the perturbation by beta and project
    into the [0, 1] box.
    """
    diff = z - x0
    shrunk_up = np.minimum(z - beta, 1.0)
    shrunk_down = np.maximum(z + beta, 0.0)
    return np.where(diff > beta, shrunk_up,
                    np.where(diff < -beta, shrunk_down, x0)).astype(np.float32)


class EAD(BatchLoopMixin, Attack):
    """Batch-first elastic-net attack with per-lane binary search on c.

    All hyperparameters after ``model`` are keyword-only; use
    :meth:`from_profile` to bind the attack budget of an
    :class:`~repro.experiments.config.ExperimentProfile`.
    """

    name = "ead"

    def __init__(self, model: Module, *, beta: float = 1e-2, kappa: float = 0.0,
                 binary_search_steps: int = 9, max_iterations: int = 1000,
                 lr: float = 1e-2, initial_const: float = 1e-3,
                 const_upper: float = 1e10, rule: str = "en",
                 method: str = "fista", targeted: bool = False,
                 abort_early: bool = False, batch_mode: str = "batched",
                 backend: str = None):
        super().__init__(model, backend=backend)
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if rule not in DECISION_RULES:
            raise ValueError(f"rule must be one of {DECISION_RULES}, got {rule!r}")
        if method not in ("ista", "fista"):
            raise ValueError(f"method must be 'ista' or 'fista', got {method!r}")
        self.beta = float(beta)
        self.kappa = float(kappa)
        self.binary_search_steps = int(binary_search_steps)
        self.max_iterations = int(max_iterations)
        self.lr = float(lr)
        self.initial_const = float(initial_const)
        self.const_upper = float(const_upper)
        self.rule = rule
        self.method = method
        self.targeted = bool(targeted)
        self.abort_early = bool(abort_early)
        self._set_batch_mode(batch_mode)

    @classmethod
    def from_profile(cls, model: Module, profile, **overrides) -> "EAD":
        """Build the attack with a profile's optimization budget.

        Maps ``max_iterations`` / ``binary_search_steps`` /
        ``initial_const`` / ``ead_lr`` / ``nn_backend`` from an
        :class:`~repro.experiments.config.ExperimentProfile`; keyword
        ``overrides`` (typically ``beta=``, ``kappa=``,
        ``batch_mode=``) win over profile fields.
        """
        params = dict(
            binary_search_steps=profile.binary_search_steps,
            max_iterations=profile.max_iterations,
            lr=profile.ead_lr,
            initial_const=profile.initial_const,
            backend=getattr(profile, "nn_backend", None),
        )
        params.update(overrides)
        return cls(model, **params)

    def _result_name(self, rule: str) -> str:
        return f"ead_{rule}(beta={self.beta:g}, kappa={self.kappa:g})"

    # ------------------------------------------------------------------
    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Batch body: run once, return the configured rule's picks."""
        return self._attack_both_prepared(x0, labels)[self.rule]

    def attack_both(self, x0: np.ndarray, labels: np.ndarray
                    ) -> Dict[str, AttackResult]:
        """Run once, return ``{"en": ..., "l1": ...}`` results.

        The optimization trajectory is identical for both decision rules;
        only the selection among successful iterates differs, so sharing
        one run halves the experiment cost.  Batch-in/batch-out like
        :meth:`attack`, including the ``N=0`` fast path.
        """
        x0, labels = self._prepare(x0, labels)
        if x0.shape[0] == 0:
            return {rule: AttackResult.empty(x0, labels,
                                             name=self._result_name(rule))
                    for rule in DECISION_RULES}
        with use_backend(self.backend):
            results = self._attack_both_prepared(x0, labels)
        flush_kernel_events()
        return results

    def _attack_both_prepared(self, x0: np.ndarray, labels: np.ndarray
                              ) -> Dict[str, AttackResult]:
        """Dispatch a prepared, non-empty batch to the selected engine."""
        if self._use_lanewise and x0.shape[0] > 1:
            parts = self._lanewise(x0, labels, self._attack_both_batched)
            return {
                rule: concat_results([part[rule] for part in parts],
                                     name=self._result_name(rule))
                for rule in DECISION_RULES
            }
        return self._attack_both_batched(x0, labels)

    def _attack_both_batched(self, x0: np.ndarray, labels: np.ndarray
                             ) -> Dict[str, AttackResult]:
        """The wide engine: one numpy dispatch per iteration for all lanes."""
        n = x0.shape[0]

        # Per-lane binary-search bracket, carried as wide arrays.
        c_lo = np.zeros(n, dtype=np.float64)
        c_hi = np.full(n, self.const_upper, dtype=np.float64)
        const = np.full(n, self.initial_const, dtype=np.float64)

        best = {
            rule: {
                "score": np.full(n, np.inf, dtype=np.float64),
                "adv": x0.copy(),
                "const": np.full(n, np.nan, dtype=np.float64),
            }
            for rule in DECISION_RULES
        }
        ever_success = np.zeros(n, dtype=bool)
        iterations = np.zeros(n, dtype=np.int64)
        converged = np.zeros(n, dtype=bool)
        dispatches = 0
        iters = counter("attack/iterations")

        with span(f"attack/{self.name}", batch=n, beta=self.beta,
                  kappa=self.kappa, mode=self.batch_mode) as attack_sp:
            for step in range(self.binary_search_steps):
                with span("attack/binary_search_step", step=step) as step_sp:
                    lanes, step_success = self._optimize_step(
                        x0, labels, const, best, ever_success, iters)
                    iterations += lanes.iterations
                    dispatches += lanes.dispatches
                    converged = ~lanes.active
                    step_sp["frozen"] = n - lanes.count

                found = step_success
                c_hi[found] = np.minimum(c_hi[found], const[found])
                c_lo[~found] = np.maximum(c_lo[~found], const[~found])
                has_upper = c_hi < self.const_upper
                midpoint = (c_lo + c_hi) / 2.0
                const = np.where(has_upper, midpoint,
                                 np.where(found, const, const * 10.0))
                const = np.minimum(const, self.const_upper)
            attack_sp["successes"] = int(ever_success.sum())
            attack_sp["dispatches"] = dispatches
            attack_sp["lane_iterations"] = int(iterations.sum())
            counter("attack/dispatches").inc(dispatches)
            lane_hist = histogram("attack/lane_iterations")
            for count in iterations:
                lane_hist.observe(float(count))

        log.debug("EAD beta=%g kappa=%g: %d/%d successful",
                  self.beta, self.kappa, int(ever_success.sum()), n)
        results = {}
        for rule in DECISION_RULES:
            results[rule] = AttackResult.from_examples(
                self.model, x0, best[rule]["adv"], ever_success, labels,
                const=best[rule]["const"],
                name=self._result_name(rule),
                iterations=iterations.copy(),
                converged=converged.copy(),
                final_const=const.copy())
        return results

    def _optimize_step(self, x0: np.ndarray, labels: np.ndarray,
                       const: np.ndarray, best: Dict[str, Dict[str, np.ndarray]],
                       ever_success: np.ndarray, iters):
        """One binary-search step: a masked ISTA/FISTA run at fixed ``const``.

        All lanes advance together; with ``abort_early`` a lane whose
        elastic-net objective plateaus is frozen (its mask clears) and
        later dispatches compact to the surviving lanes.  Mutates
        ``best`` and ``ever_success`` in place; returns the step's
        :class:`~repro.attacks.batch.MaskedLanes` and success mask.
        """
        n = x0.shape[0]
        lanes = MaskedLanes(n)
        x = x0.copy()
        y = x0.copy()   # FISTA slack variable (equals x for ISTA)
        step_success = np.zeros(n, dtype=bool)
        prev_obj = np.full(n, np.inf, dtype=np.float64)
        check_every = max(self.max_iterations // 10, 1)
        const_f32 = const.astype(np.float32)

        for it in range(self.max_iterations):
            if not lanes.any_active():
                break
            sub = lanes.sub
            pos = np.arange(n) if isinstance(sub, slice) else sub
            n_active = pos.shape[0]
            lr_it = self.lr * np.sqrt(max(1.0 - it / self.max_iterations, 0.0))

            x0_a, lab_a = x0[sub], labels[sub]
            f_vals, grad_f, _ = self._attack_loss_and_grad(y[sub], lab_a)
            grad_g = (const_f32[sub][:, None, None, None] * grad_f
                      + 2.0 * (y[sub] - x0_a))
            z = y[sub] - lr_it * grad_g
            x_new = shrink_threshold(z, x0_a, self.beta)

            if self.method == "fista":
                momentum = it / (it + 3.0)
                y[sub] = x_new + momentum * (x_new - x[sub])
            else:
                y[sub] = x_new
            x[sub] = x_new

            # Evaluate the *iterate* (not the slack) for success/selection.
            f_iter, _ = self._attack_loss(x_new, lab_a)
            lanes.tick(dispatches=2)
            iters.inc(n_active)

            succeeded = f_iter <= -self.kappa + 1e-6
            check_abort = (self.abort_early
                           and (it + 1) % check_every == 0)
            if succeeded.any() or check_abort:
                delta = (x_new - x0_a).astype(np.float64).reshape(n_active, -1)
                l1 = np.abs(delta).sum(axis=1)
                l2_sq = (delta ** 2).sum(axis=1)

            if succeeded.any():
                hit = pos[succeeded]
                step_success[hit] = True
                ever_success[hit] = True
                scores = {"l1": l1, "en": self.beta * l1 + l2_sq}
                for rule in DECISION_RULES:
                    improved = succeeded & (scores[rule] < best[rule]["score"][pos])
                    if improved.any():
                        upd = pos[improved]
                        best[rule]["score"][upd] = scores[rule][improved]
                        best[rule]["adv"][upd] = x_new[improved]
                        best[rule]["const"][upd] = const[upd]

            if check_abort:
                # Per-lane plateau test on the full elastic-net objective;
                # stalled lanes freeze in place (bit-stable from here on).
                obj = const[pos] * f_iter + l2_sq + self.beta * l1
                stalled = obj > prev_obj[pos] * 0.9999
                if stalled.any():
                    lanes.freeze(pos[stalled])
                keep = pos[~stalled]
                prev_obj[keep] = obj[~stalled]

        return lanes, step_success
