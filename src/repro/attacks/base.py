"""Attack interfaces and result containers."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.nn.layers import Module
from repro.nn.training import predict_labels


def flat_norms(delta: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-example L0 / L1 / L2 / Linf norms of a perturbation batch."""
    flat = delta.reshape(delta.shape[0], -1)
    return {
        "l0": (np.abs(flat) > 1e-6).sum(axis=1).astype(np.float64),
        "l1": np.abs(flat).sum(axis=1).astype(np.float64),
        "l2": np.sqrt((flat ** 2).sum(axis=1)).astype(np.float64),
        "linf": np.abs(flat).max(axis=1, initial=0.0).astype(np.float64),
    }


@dataclasses.dataclass
class AttackResult:
    """Outcome of one batched attack run.

    ``x_adv`` contains the best adversarial example found per input; rows
    whose ``success`` flag is False contain the unmodified original.
    Distortion entries are per-example; use :meth:`mean_distortion` for
    the success-averaged statistics Table I reports.
    """

    x_adv: np.ndarray
    success: np.ndarray
    y_true: np.ndarray
    y_adv: np.ndarray
    l0: np.ndarray
    l1: np.ndarray
    l2: np.ndarray
    linf: np.ndarray
    const: Optional[np.ndarray] = None
    name: str = "attack"

    @classmethod
    def from_examples(cls, model: Module, x0: np.ndarray, x_adv: np.ndarray,
                      success: np.ndarray, y_true: np.ndarray,
                      const: Optional[np.ndarray] = None,
                      name: str = "attack") -> "AttackResult":
        """Assemble a result, re-deriving labels and distortions."""
        x_adv = np.asarray(x_adv, dtype=np.float32)
        success = np.asarray(success, dtype=bool)
        # Failed rows carry the original image so downstream defense
        # evaluation sees a well-defined (non-adversarial) input.
        x_final = np.where(success[:, None, None, None], x_adv, x0)
        norms = flat_norms(x_final - x0)
        return cls(
            x_adv=x_final,
            success=success,
            y_true=np.asarray(y_true, dtype=np.int64),
            y_adv=predict_labels(model, x_final),
            const=const,
            name=name,
            **norms,
        )

    @property
    def success_rate(self) -> float:
        """Fraction of inputs for which an adversarial example was found
        (against the *undefended* model — not the defense-level ASR)."""
        return float(self.success.mean()) if len(self.success) else 0.0

    def mean_distortion(self, order: str) -> float:
        """Mean Lp distortion over *successful* examples (paper convention)."""
        values = getattr(self, order)
        if not self.success.any():
            return float("nan")
        return float(values[self.success].mean())

    def __len__(self) -> int:
        return len(self.success)


class Attack:
    """Base class: an attack binds a model and exposes ``attack``."""

    name = "attack"

    def __init__(self, model: Module):
        self.model = model

    def attack(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        raise NotImplementedError  # pragma: no cover

    @staticmethod
    def _validate_inputs(x0: np.ndarray, labels: np.ndarray) -> None:
        x0 = np.asarray(x0)
        labels = np.asarray(labels)
        if x0.ndim != 4:
            raise ValueError(f"expected NCHW inputs, got shape {x0.shape}")
        if labels.shape != (x0.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} != ({x0.shape[0]},)")
        lo, hi = float(x0.min(initial=0)), float(x0.max(initial=0))
        if lo < -1e-6 or hi > 1 + 1e-6:
            raise ValueError(f"inputs must lie in [0,1], got range [{lo}, {hi}]")
