"""Attack interfaces and result containers.

Every attack in :mod:`repro.attacks` follows one **batch-first**
contract: :meth:`Attack.attack` takes a batch of NCHW inputs plus a
label vector and returns a batched :class:`AttackResult`.  The base
class owns validation, dtype normalization and the ``N=0`` fast path;
concrete attacks implement :meth:`Attack._run` on the already-prepared
batch.  Single-example calls go through the deprecated
:meth:`Attack.attack_one` shim.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Optional, Sequence

import numpy as np

from repro.nn.backend import flush_kernel_events, use_backend
from repro.nn.layers import Module
from repro.nn.training import predict_labels


def flat_norms(delta: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-example L0 / L1 / L2 / Linf norms of a perturbation batch."""
    flat = delta.reshape(delta.shape[0], -1)
    return {
        "l0": (np.abs(flat) > 1e-6).sum(axis=1).astype(np.float64),
        "l1": np.abs(flat).sum(axis=1).astype(np.float64),
        "l2": np.sqrt((flat ** 2).sum(axis=1)).astype(np.float64),
        "linf": np.abs(flat).max(axis=1, initial=0.0).astype(np.float64),
    }


@dataclasses.dataclass
class AttackResult:
    """Outcome of one batched attack run.

    ``x_adv`` contains the best adversarial example found per input; rows
    whose ``success`` flag is False contain the unmodified original.
    Distortion entries are per-example; use :meth:`mean_distortion` for
    the success-averaged statistics Table I reports.

    The optimization attacks (EAD, C&W) additionally fill the per-lane
    diagnostics:

    * ``iterations`` — optimizer iterations each lane actually consumed
      across all binary-search steps (masked-out lanes stop counting);
    * ``converged`` — True where the lane's final optimize run froze on
      a loss plateau before exhausting its iteration budget (budget
      exhaustion, the only other way out, leaves it False);
    * ``final_const`` — the per-lane binary-search trade-off constant
      ``c`` after the last binary-search update (``const`` records the
      ``c`` that produced the *best* example instead).
    """

    x_adv: np.ndarray
    success: np.ndarray
    y_true: np.ndarray
    y_adv: np.ndarray
    l0: np.ndarray
    l1: np.ndarray
    l2: np.ndarray
    linf: np.ndarray
    const: Optional[np.ndarray] = None
    name: str = "attack"
    iterations: Optional[np.ndarray] = None
    converged: Optional[np.ndarray] = None
    final_const: Optional[np.ndarray] = None

    @classmethod
    def from_examples(cls, model: Module, x0: np.ndarray, x_adv: np.ndarray,
                      success: np.ndarray, y_true: np.ndarray,
                      const: Optional[np.ndarray] = None,
                      name: str = "attack",
                      iterations: Optional[np.ndarray] = None,
                      converged: Optional[np.ndarray] = None,
                      final_const: Optional[np.ndarray] = None
                      ) -> "AttackResult":
        """Assemble a result, re-deriving labels and distortions."""
        x_adv = np.asarray(x_adv, dtype=np.float32)
        success = np.asarray(success, dtype=bool)
        # Failed rows carry the original image so downstream defense
        # evaluation sees a well-defined (non-adversarial) input.
        x_final = np.where(success[:, None, None, None], x_adv, x0)
        norms = flat_norms(x_final - x0)
        return cls(
            x_adv=x_final,
            success=success,
            y_true=np.asarray(y_true, dtype=np.int64),
            y_adv=predict_labels(model, x_final),
            const=const,
            name=name,
            iterations=iterations,
            converged=converged,
            final_const=final_const,
            **norms,
        )

    @classmethod
    def empty(cls, x0: np.ndarray, labels: np.ndarray,
              name: str = "attack") -> "AttackResult":
        """A zero-example result (the ``N=0`` fast path — no model calls)."""
        x0 = np.asarray(x0, dtype=np.float32)
        zeros = np.zeros(0, dtype=np.float64)
        return cls(
            x_adv=x0[:0].copy(),
            success=np.zeros(0, dtype=bool),
            y_true=np.asarray(labels, dtype=np.int64)[:0],
            y_adv=np.zeros(0, dtype=np.int64),
            l0=zeros, l1=zeros.copy(), l2=zeros.copy(), linf=zeros.copy(),
            const=zeros.copy(),
            name=name,
            iterations=np.zeros(0, dtype=np.int64),
            converged=np.zeros(0, dtype=bool),
            final_const=zeros.copy(),
        )

    @property
    def success_rate(self) -> float:
        """Fraction of inputs for which an adversarial example was found
        (against the *undefended* model — not the defense-level ASR)."""
        return float(self.success.mean()) if len(self.success) else 0.0

    def mean_distortion(self, order: str) -> float:
        """Mean Lp distortion over *successful* examples (paper convention)."""
        values = getattr(self, order)
        if not self.success.any():
            return float("nan")
        return float(values[self.success].mean())

    def __len__(self) -> int:
        return len(self.success)


_CONCAT_FIELDS = ("x_adv", "success", "y_true", "y_adv",
                  "l0", "l1", "l2", "linf",
                  "const", "iterations", "converged", "final_const")


def concat_results(parts: Sequence[AttackResult],
                   name: Optional[str] = None) -> AttackResult:
    """Stitch per-lane (or per-shard) results back into one batch.

    Optional fields (``const``, the diagnostics) survive only when
    present on *every* part.  Used by the ``per_example`` engine mode to
    reassemble lane-at-a-time runs in original order.
    """
    if not parts:
        raise ValueError("concat_results needs at least one part")
    fields: Dict[str, Optional[np.ndarray]] = {}
    for field in _CONCAT_FIELDS:
        values = [getattr(part, field) for part in parts]
        if any(v is None for v in values):
            fields[field] = None
        else:
            fields[field] = np.concatenate([np.asarray(v) for v in values])
    return AttackResult(name=name if name is not None else parts[0].name,
                        **fields)


class Attack:
    """Base class: an attack binds a model and exposes ``attack``.

    The public entry point is batch-in/batch-out: subclasses implement
    :meth:`_run` and inherit validation, float32/int64 normalization and
    the empty-batch fast path from :meth:`attack`.
    """

    name = "attack"

    def __init__(self, model: Module, *, backend: Optional[str] = None):
        self.model = model
        #: Kernel backend for every model dispatch inside :meth:`attack`
        #: (``None``: the ambient selection; see repro.nn.backend).
        self.backend = backend

    # ------------------------------------------------------------------
    # Batch-first public API
    # ------------------------------------------------------------------
    def attack(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Craft adversarial examples for a batch.

        ``x0`` is NCHW in [0, 1]; ``labels`` are true labels for
        untargeted attacks and target labels for targeted ones.  Returns
        a batched :class:`AttackResult` aligned with the input rows.
        """
        x0, labels = self._prepare(x0, labels)
        if x0.shape[0] == 0:
            return AttackResult.empty(x0, labels, name=self.name)
        with use_backend(self.backend):
            result = self._run(x0, labels)
        # Attribute this attack's conv dispatch burst in the telemetry log.
        flush_kernel_events()
        return result

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Attack body on a validated, non-empty float32/int64 batch."""
        raise NotImplementedError  # pragma: no cover

    def attack_one(self, x0: np.ndarray, label: int) -> AttackResult:
        """Deprecated single-example shim over the batch-first API.

        .. deprecated::
            Stack examples and call :meth:`attack` instead; per-example
            dispatch forfeits the batched engine's vectorization.
        """
        warnings.warn(
            f"{type(self).__name__}.attack_one() is deprecated; the attack "
            "API is batch-first — stack inputs and call attack() instead",
            DeprecationWarning, stacklevel=2)
        x0 = np.asarray(x0, dtype=np.float32)
        if x0.ndim == 3:
            x0 = x0[None]
        labels = np.asarray([label], dtype=np.int64).reshape(1)
        return self.attack(x0, labels)

    # ------------------------------------------------------------------
    def _prepare(self, x0: np.ndarray, labels: np.ndarray):
        """Validate and normalize one batch (shared by all entry points)."""
        self._validate_inputs(x0, labels)
        return (np.asarray(x0, dtype=np.float32),
                np.asarray(labels, dtype=np.int64))

    @staticmethod
    def _validate_inputs(x0: np.ndarray, labels: np.ndarray) -> None:
        x0 = np.asarray(x0)
        labels = np.asarray(labels)
        if x0.ndim != 4:
            raise ValueError(f"expected NCHW inputs, got shape {x0.shape}")
        if labels.shape != (x0.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} != ({x0.shape[0]},)")
        lo, hi = float(x0.min(initial=0)), float(x0.max(initial=0))
        if lo < -1e-6 or hi > 1 + 1e-6:
            raise ValueError(f"inputs must lie in [0,1], got range [{lo}, {hi}]")
