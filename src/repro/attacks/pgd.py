"""Projected Gradient Descent (Madry et al., 2018) and momentum I-FGSM.

Extensions beyond the paper's attack set, included because the paper's
discussion (and its follow-up literature, e.g. "Attacking the Madry
defense model with L1-based adversarial examples") contrasts EAD with
the PGD family.  PGD here supports both Linf and L2 projection balls and
optional random starts; MI-FGSM (Dong et al., 2018) adds momentum to the
iterative sign method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import cross_entropy_grad, is_successful, logits_of
from repro.nn.layers import Module
from repro.utils.rng import rng_from_seed


def _project_l2(delta: np.ndarray, epsilon: float) -> np.ndarray:
    """Project each example's perturbation onto the L2 ball of radius eps."""
    flat = delta.reshape(delta.shape[0], -1)
    norms = np.sqrt((flat ** 2).sum(axis=1, keepdims=True))
    factor = np.minimum(1.0, epsilon / np.maximum(norms, 1e-12))
    return (flat * factor).reshape(delta.shape)


class PGD(Attack):
    """Projected gradient descent in an Linf or L2 ball around the input."""

    name = "pgd"

    def __init__(self, model: Module, *, epsilon: float = 0.1,
                 step_size: float = 0.02, steps: int = 20,
                 norm: str = "linf", random_start: bool = True,
                 seed: int = 0):
        super().__init__(model)
        if epsilon < 0 or step_size <= 0 or steps < 1:
            raise ValueError("invalid PGD parameters")
        if norm not in ("linf", "l2"):
            raise ValueError(f"norm must be 'linf' or 'l2', got {norm!r}")
        self.epsilon = float(epsilon)
        self.step_size = float(step_size)
        self.steps = int(steps)
        self.norm = norm
        self.random_start = bool(random_start)
        self.seed = int(seed)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        rng = rng_from_seed(self.seed)

        if self.random_start and self.epsilon > 0:
            if self.norm == "linf":
                delta = rng.uniform(-self.epsilon, self.epsilon,
                                    size=x0.shape).astype(np.float32)
            else:
                delta = rng.standard_normal(x0.shape).astype(np.float32)
                delta = _project_l2(delta, self.epsilon).astype(np.float32)
        else:
            delta = np.zeros_like(x0)
        x = np.clip(x0 + delta, 0.0, 1.0)

        for _ in range(self.steps):
            _, grad = cross_entropy_grad(self.model, x, labels)
            if self.norm == "linf":
                x = x + self.step_size * np.sign(grad).astype(np.float32)
                x = np.clip(x, x0 - self.epsilon, x0 + self.epsilon)
            else:
                flat = grad.reshape(grad.shape[0], -1)
                norms = np.sqrt((flat ** 2).sum(axis=1))[:, None, None, None]
                step = grad / np.maximum(norms, 1e-12)
                x = x + self.step_size * step.astype(np.float32)
                x = (x0 + _project_l2(x - x0, self.epsilon)).astype(np.float32)
            x = np.clip(x, 0.0, 1.0).astype(np.float32)

        success = is_successful(logits_of(self.model, x), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x, success, labels,
            name=f"pgd_{self.norm}(eps={self.epsilon:g}, steps={self.steps})")


class MomentumFGSM(Attack):
    """MI-FGSM (Dong et al., CVPR 2018): I-FGSM with gradient momentum."""

    name = "mifgsm"

    def __init__(self, model: Module, *, epsilon: float = 0.1,
                 steps: int = 10, decay: float = 1.0,
                 step_size: Optional[float] = None):
        super().__init__(model)
        if epsilon < 0 or steps < 1 or decay < 0:
            raise ValueError("invalid MI-FGSM parameters")
        self.epsilon = float(epsilon)
        self.steps = int(steps)
        self.decay = float(decay)
        self.step_size = (float(step_size) if step_size is not None
                          else self.epsilon / self.steps)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        x = x0.copy()
        momentum = np.zeros_like(x0)
        lo = np.clip(x0 - self.epsilon, 0.0, 1.0)
        hi = np.clip(x0 + self.epsilon, 0.0, 1.0)

        for _ in range(self.steps):
            _, grad = cross_entropy_grad(self.model, x, labels)
            flat = np.abs(grad).reshape(grad.shape[0], -1)
            l1 = flat.sum(axis=1)[:, None, None, None]
            momentum = self.decay * momentum + grad / np.maximum(l1, 1e-12)
            x = x + self.step_size * np.sign(momentum).astype(np.float32)
            x = np.clip(x, lo, hi)

        success = is_successful(logits_of(self.model, x), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x, success, labels,
            name=f"mifgsm(eps={self.epsilon:g}, steps={self.steps})")
