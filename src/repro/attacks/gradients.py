"""Input-gradient helpers shared by all gradient-based attacks.

The C&W / EAD hinge loss (paper eqs. (2)-(3)) is piecewise linear in the
logits, so its input gradient is obtained from a single forward pass and
one backward pass with a hand-constructed upstream gradient on the logits
— no per-class backward passes needed.
"""

from __future__ import annotations

import contextlib
from typing import Tuple

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module


@contextlib.contextmanager
def frozen_parameters(model: Module):
    """Temporarily clear ``requires_grad`` on every model parameter.

    Attacks differentiate w.r.t. the *input* only; with parameters
    frozen, the graph builder never records the weight/bias branches, so
    the backward pass skips all parameter-gradient work (a significant
    share of each attack iteration).  Restores the flags on exit.

    Model stand-ins without ``parameters()`` (test doubles, wrapped
    callables) pass through untouched.
    """
    params = getattr(model, "parameters", lambda: [])()
    saved = [p.requires_grad for p in params]
    for p in params:
        p.requires_grad = False
    try:
        yield
    finally:
        for p, flag in zip(params, saved):
            p.requires_grad = flag


def logits_of(model: Module, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
    """Plain batched forward pass (no graph); empty batches skip the model."""
    x = np.asarray(x)
    if x.shape[0] == 0:
        return np.zeros((0, 0), dtype=np.float32)
    outs = []
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            outs.append(model(Tensor(x[start:start + batch_size])).data)
    return np.concatenate(outs, axis=0)


def attack_margin(logits: np.ndarray, labels: np.ndarray,
                  targeted: bool = False) -> np.ndarray:
    """Signed attack margin per example.

    Untargeted: ``max_{j != t0} Z_j - Z_{t0}`` (positive once misclassified).
    Targeted:   ``Z_t - max_{j != t} Z_j`` (positive once classified as t).
    An attack at confidence κ succeeds when the margin reaches κ.
    """
    z = np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    rows = np.arange(z.shape[0])
    z_lab = z[rows, labels]
    masked = z.copy()
    masked[rows, labels] = -np.inf
    z_other = masked.max(axis=1)
    return (z_lab - z_other) if targeted else (z_other - z_lab)


def is_successful(logits: np.ndarray, labels: np.ndarray, kappa: float,
                  targeted: bool = False, tol: float = 1e-6) -> np.ndarray:
    """Success mask at confidence level κ."""
    return attack_margin(logits, labels, targeted) >= kappa - tol


def margin_only(model: Module, x: np.ndarray, labels: np.ndarray,
                kappa: float, targeted: bool = False
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Hinge loss values without building a graph (success checks only).

    Returns ``(f_values (N,), logits (N,K))`` — the forward half of
    :func:`margin_loss_and_grad` for the batched engines' per-iterate
    success tests.
    """
    logits = logits_of(model, x)
    margin = attack_margin(logits, labels, targeted)
    f_values = np.maximum(-margin, -kappa)
    return f_values, logits


def margin_loss_and_grad(model: Module, x: np.ndarray, labels: np.ndarray,
                         kappa: float, targeted: bool = False
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate the hinge attack loss f and its input gradient.

    Untargeted (paper eq. 3): ``f = max(Z_{t0} - max_{j != t0} Z_j, -κ)``.
    Targeted   (paper eq. 2): ``f = max(max_{j != t} Z_j - Z_t, -κ)``.

    Returns:
        (f_values (N,), grad_x (N,C,H,W), logits (N,K)).
        The gradient is exactly zero for examples sitting on the hinge
        floor (margin ≥ κ), matching the subgradient the original
        attacks use.
    """
    xt = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    with frozen_parameters(model):
        logits_t = model(xt)
    z = logits_t.data
    n = z.shape[0]
    rows = np.arange(n)
    labels = np.asarray(labels, dtype=np.int64)

    z_lab = z[rows, labels]
    masked = z.copy()
    masked[rows, labels] = -np.inf
    j_star = masked.argmax(axis=1)
    z_other = masked[rows, j_star]

    if targeted:
        raw = z_other - z_lab
    else:
        raw = z_lab - z_other
    f_values = np.maximum(raw, -kappa)
    active = raw > -kappa

    upstream = np.zeros_like(z)
    if targeted:
        upstream[rows[active], j_star[active]] = 1.0
        upstream[rows[active], labels[active]] = -1.0
    else:
        upstream[rows[active], labels[active]] = 1.0
        upstream[rows[active], j_star[active]] = -1.0

    logits_t.backward(upstream)
    grad = xt.grad if xt.grad is not None else np.zeros_like(xt.data)
    return f_values.astype(np.float64), grad, z


def cross_entropy_grad(model: Module, x: np.ndarray, labels: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient of the (sum) cross-entropy loss w.r.t. the input.

    Used by FGSM / I-FGSM, which only consume the gradient's sign.
    Returns (loss_per_example, grad_x).
    """
    xt = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    with frozen_parameters(model):
        logits_t = model(xt)
    z = logits_t.data
    z_shift = z - z.max(axis=1, keepdims=True)
    log_probs = z_shift - np.log(np.exp(z_shift).sum(axis=1, keepdims=True))
    rows = np.arange(z.shape[0])
    labels = np.asarray(labels, dtype=np.int64)
    loss = -log_probs[rows, labels]

    probs = np.exp(log_probs)
    upstream = probs.copy()
    upstream[rows, labels] -= 1.0

    logits_t.backward(upstream.astype(z.dtype))
    grad = xt.grad if xt.grad is not None else np.zeros_like(xt.data)
    return loss.astype(np.float64), grad


def class_logit_grads(model: Module, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of every class logit w.r.t. the input (DeepFool needs these).

    Returns (logits (N,K), grads (K,N,C,H,W)).  One forward pass, K
    backward passes over the retained graph.
    """
    xt = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    with frozen_parameters(model):
        logits_t = model(xt)
    z = logits_t.data
    k = z.shape[1]
    grads = np.zeros((k,) + xt.shape, dtype=xt.data.dtype)
    for cls in range(k):
        xt.zero_grad()
        upstream = np.zeros_like(z)
        upstream[:, cls] = 1.0
        logits_t.backward(upstream)
        grads[cls] = xt.grad
    return z, grads
