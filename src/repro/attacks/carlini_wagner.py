"""The Carlini & Wagner L2 attack (S&P 2017).

The pure-L2 baseline the paper compares EAD against.  Implementation
follows the reference ``nn_robust_attacks`` code:

* change of variables ``x = (tanh(w) + 1) / 2`` enforces the [0,1] box;
* Adam minimizes ``c * f(x) + ||x - x0||_2^2`` over ``w``, where ``f`` is
  the confidence-κ hinge on the logits (paper eqs. (2)/(3));
* the trade-off constant ``c`` is found per example by binary search
  (paper setting: start 0.001, 9 steps, 1000 iterations, lr 0.01);
* among all successful iterates the one with the smallest L2 distortion
  is kept.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import margin_loss_and_grad
from repro.nn.layers import Module
from repro.obs import counter, span
from repro.utils.logging import get_logger

log = get_logger(__name__)

_TANH_CLAMP = 0.999999


class CarliniWagnerL2(Attack):
    """Batched untargeted/targeted C&W-L2 attack with per-example binary search.

    All hyperparameters after ``model`` are keyword-only; use
    :meth:`from_profile` to bind the attack budget of an
    :class:`~repro.experiments.config.ExperimentProfile`.
    """

    name = "cw_l2"

    def __init__(self, model: Module, *, kappa: float = 0.0,
                 binary_search_steps: int = 9, max_iterations: int = 1000,
                 lr: float = 1e-2, initial_const: float = 1e-3,
                 const_upper: float = 1e10, abort_early: bool = True,
                 targeted: bool = False):
        super().__init__(model)
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if max_iterations < 1 or binary_search_steps < 1:
            raise ValueError("iterations and binary search steps must be >= 1")
        self.kappa = float(kappa)
        self.binary_search_steps = int(binary_search_steps)
        self.max_iterations = int(max_iterations)
        self.lr = float(lr)
        self.initial_const = float(initial_const)
        self.const_upper = float(const_upper)
        self.abort_early = bool(abort_early)
        self.targeted = bool(targeted)

    @classmethod
    def from_profile(cls, model: Module, profile, **overrides) -> "CarliniWagnerL2":
        """Build the attack with a profile's optimization budget.

        Maps ``max_iterations`` / ``binary_search_steps`` /
        ``initial_const`` / ``cw_lr`` from an
        :class:`~repro.experiments.config.ExperimentProfile`; keyword
        ``overrides`` (typically ``kappa=``) win over profile fields.
        """
        params = dict(
            binary_search_steps=profile.binary_search_steps,
            max_iterations=profile.max_iterations,
            lr=profile.cw_lr,
            initial_const=profile.initial_const,
        )
        params.update(overrides)
        return cls(model, **params)

    def attack(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Craft adversarial examples for (x0, labels).

        ``labels`` are true labels when untargeted, target labels when
        targeted.
        """
        self._validate_inputs(x0, labels)
        x0 = np.asarray(x0, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        n = x0.shape[0]

        # tanh-space anchor of the clean images.
        w0 = np.arctanh((2.0 * x0 - 1.0) * _TANH_CLAMP).astype(np.float32)

        lower = np.zeros(n, dtype=np.float64)
        upper = np.full(n, self.const_upper, dtype=np.float64)
        const = np.full(n, self.initial_const, dtype=np.float64)

        best_l2 = np.full(n, np.inf, dtype=np.float64)
        best_adv = x0.copy()
        best_const = np.full(n, np.nan, dtype=np.float64)
        ever_success = np.zeros(n, dtype=bool)
        iters = counter("attack/iterations")

        with span(f"attack/{self.name}", batch=n,
                  kappa=self.kappa) as attack_sp:
            for step in range(self.binary_search_steps):
                with span("attack/binary_search_step", step=step):
                    step_success = self._optimize_step(
                        x0, w0, labels, const, best_l2, best_adv,
                        best_const, ever_success, iters)

                # Binary-search update of c (per example).
                found = step_success
                upper[found] = np.minimum(upper[found], const[found])
                lower[~found] = np.maximum(lower[~found], const[~found])
                has_upper = upper < self.const_upper
                midpoint = (lower + upper) / 2.0
                const = np.where(has_upper, midpoint,
                                 np.where(found, const, const * 10.0))
                const = np.minimum(const, self.const_upper)
            attack_sp["successes"] = int(ever_success.sum())

        log.debug("C&W kappa=%g: %d/%d successful", self.kappa,
                  int(ever_success.sum()), n)
        return AttackResult.from_examples(
            self.model, x0, best_adv, ever_success, labels,
            const=best_const, name=f"cw_l2(kappa={self.kappa:g})")

    def _optimize_step(self, x0: np.ndarray, w0: np.ndarray,
                       labels: np.ndarray, const: np.ndarray,
                       best_l2: np.ndarray, best_adv: np.ndarray,
                       best_const: np.ndarray, ever_success: np.ndarray,
                       iters) -> np.ndarray:
        """One binary-search step: a full Adam run at fixed ``const``.

        Mutates the ``best_*`` / ``ever_success`` arrays in place and
        returns this step's success mask.
        """
        n = x0.shape[0]
        w = w0.copy()
        adam_m = np.zeros_like(w)
        adam_v = np.zeros_like(w)
        step_success = np.zeros(n, dtype=bool)
        prev_loss = np.inf
        check_every = max(self.max_iterations // 10, 1)

        for it in range(self.max_iterations):
            iters.inc()
            tanh_w = np.tanh(w)
            x = ((tanh_w + 1.0) * 0.5).astype(np.float32)
            f_vals, grad_f, logits = margin_loss_and_grad(
                self.model, x, labels, self.kappa, targeted=self.targeted)

            delta = (x - x0).astype(np.float64)
            l2_sq = (delta.reshape(n, -1) ** 2).sum(axis=1)

            # Success test: the hinge saturated, i.e. margin >= kappa.
            succeeded = f_vals <= -self.kappa + 1e-6
            improved = succeeded & (l2_sq < best_l2)
            if improved.any():
                best_l2[improved] = l2_sq[improved]
                best_adv[improved] = x[improved]
                best_const[improved] = const[improved]
            step_success |= succeeded
            ever_success |= succeeded

            # d(loss)/dx = 2*(x - x0) + c * df/dx ; chain through tanh.
            grad_x = 2.0 * (x - x0) + const[:, None, None, None].astype(np.float32) * grad_f
            grad_w = grad_x * (0.5 * (1.0 - tanh_w ** 2)).astype(np.float32)

            # Adam update (bias-corrected), matching the reference attack.
            adam_m = 0.9 * adam_m + 0.1 * grad_w
            adam_v = 0.999 * adam_v + 0.001 * grad_w * grad_w
            m_hat = adam_m / (1.0 - 0.9 ** (it + 1))
            v_hat = adam_v / (1.0 - 0.999 ** (it + 1))
            w = w - self.lr * m_hat / (np.sqrt(v_hat) + 1e-8)

            if self.abort_early and (it + 1) % check_every == 0:
                total = float((l2_sq + const * f_vals).mean())
                if total > prev_loss * 0.9999:
                    break
                prev_loss = total

        return step_success
