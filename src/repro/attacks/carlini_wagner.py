"""The Carlini & Wagner L2 attack (S&P 2017).

The pure-L2 baseline the paper compares EAD against.  Implementation
follows the reference ``nn_robust_attacks`` code:

* change of variables ``x = (tanh(w) + 1) / 2`` enforces the [0,1] box;
* Adam minimizes ``c * f(x) + ||x - x0||_2^2`` over ``w``, where ``f`` is
  the confidence-κ hinge on the logits (paper eqs. (2)/(3));
* the trade-off constant ``c`` is found per example by binary search
  (paper setting: start 0.001, 9 steps, 1000 iterations, lr 0.01);
* among all successful iterates the one with the smallest L2 distortion
  is kept.

The optimize loop runs on the masked batch engine
(:mod:`repro.attacks.batch`): every lane advances per numpy dispatch,
the binary-search bracket is carried in wide per-lane arrays, and
``abort_early`` is a **per-lane** plateau test — a stalled lane freezes
in place (bit-stable) and drops out of the model dispatch while the
rest keep iterating.  This matches the semantics of running each
example alone (the historical batch-mean abort coupled lanes together);
``batch_mode="per_example"`` selects that reference engine explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult, concat_results
from repro.attacks.batch import BatchLoopMixin, MaskedLanes
from repro.nn.layers import Module
from repro.obs import counter, histogram, span
from repro.utils.logging import get_logger

log = get_logger(__name__)

_TANH_CLAMP = 0.999999


class CarliniWagnerL2(BatchLoopMixin, Attack):
    """Batch-first untargeted/targeted C&W-L2 attack with per-lane binary
    search.

    All hyperparameters after ``model`` are keyword-only; use
    :meth:`from_profile` to bind the attack budget of an
    :class:`~repro.experiments.config.ExperimentProfile`.
    """

    name = "cw_l2"

    def __init__(self, model: Module, *, kappa: float = 0.0,
                 binary_search_steps: int = 9, max_iterations: int = 1000,
                 lr: float = 1e-2, initial_const: float = 1e-3,
                 const_upper: float = 1e10, abort_early: bool = True,
                 targeted: bool = False, batch_mode: str = "batched",
                 backend: str = None):
        super().__init__(model, backend=backend)
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if max_iterations < 1 or binary_search_steps < 1:
            raise ValueError("iterations and binary search steps must be >= 1")
        self.kappa = float(kappa)
        self.binary_search_steps = int(binary_search_steps)
        self.max_iterations = int(max_iterations)
        self.lr = float(lr)
        self.initial_const = float(initial_const)
        self.const_upper = float(const_upper)
        self.abort_early = bool(abort_early)
        self.targeted = bool(targeted)
        self._set_batch_mode(batch_mode)

    @classmethod
    def from_profile(cls, model: Module, profile, **overrides) -> "CarliniWagnerL2":
        """Build the attack with a profile's optimization budget.

        Maps ``max_iterations`` / ``binary_search_steps`` /
        ``initial_const`` / ``cw_lr`` from an
        :class:`~repro.experiments.config.ExperimentProfile`; keyword
        ``overrides`` (typically ``kappa=``, ``batch_mode=``) win over
        profile fields.
        """
        params = dict(
            binary_search_steps=profile.binary_search_steps,
            max_iterations=profile.max_iterations,
            lr=profile.cw_lr,
            initial_const=profile.initial_const,
            backend=getattr(profile, "nn_backend", None),
        )
        params.update(overrides)
        return cls(model, **params)

    def _result_name(self) -> str:
        return f"cw_l2(kappa={self.kappa:g})"

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """Craft adversarial examples for a prepared batch.

        ``labels`` are true labels when untargeted, target labels when
        targeted.
        """
        if self._use_lanewise and x0.shape[0] > 1:
            parts = self._lanewise(x0, labels, self._run_batched)
            return concat_results(parts, name=self._result_name())
        return self._run_batched(x0, labels)

    def _run_batched(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        """The wide engine: one numpy dispatch per iteration for all lanes."""
        n = x0.shape[0]

        # tanh-space anchor of the clean images.
        w0 = np.arctanh((2.0 * x0 - 1.0) * _TANH_CLAMP).astype(np.float32)

        # Per-lane binary-search bracket, carried as wide arrays.
        c_lo = np.zeros(n, dtype=np.float64)
        c_hi = np.full(n, self.const_upper, dtype=np.float64)
        const = np.full(n, self.initial_const, dtype=np.float64)

        best_l2 = np.full(n, np.inf, dtype=np.float64)
        best_adv = x0.copy()
        best_const = np.full(n, np.nan, dtype=np.float64)
        ever_success = np.zeros(n, dtype=bool)
        iterations = np.zeros(n, dtype=np.int64)
        converged = np.zeros(n, dtype=bool)
        dispatches = 0
        iters = counter("attack/iterations")

        with span(f"attack/{self.name}", batch=n, kappa=self.kappa,
                  mode=self.batch_mode) as attack_sp:
            for step in range(self.binary_search_steps):
                with span("attack/binary_search_step", step=step) as step_sp:
                    lanes, step_success = self._optimize_step(
                        x0, w0, labels, const, best_l2, best_adv,
                        best_const, ever_success, iters)
                    iterations += lanes.iterations
                    dispatches += lanes.dispatches
                    converged = ~lanes.active
                    step_sp["frozen"] = n - lanes.count

                # Binary-search update of c (per lane).
                found = step_success
                c_hi[found] = np.minimum(c_hi[found], const[found])
                c_lo[~found] = np.maximum(c_lo[~found], const[~found])
                has_upper = c_hi < self.const_upper
                midpoint = (c_lo + c_hi) / 2.0
                const = np.where(has_upper, midpoint,
                                 np.where(found, const, const * 10.0))
                const = np.minimum(const, self.const_upper)
            attack_sp["successes"] = int(ever_success.sum())
            attack_sp["dispatches"] = dispatches
            attack_sp["lane_iterations"] = int(iterations.sum())
            counter("attack/dispatches").inc(dispatches)
            lane_hist = histogram("attack/lane_iterations")
            for count in iterations:
                lane_hist.observe(float(count))

        log.debug("C&W kappa=%g: %d/%d successful", self.kappa,
                  int(ever_success.sum()), n)
        return AttackResult.from_examples(
            self.model, x0, best_adv, ever_success, labels,
            const=best_const, name=self._result_name(),
            iterations=iterations, converged=converged, final_const=const)

    def _optimize_step(self, x0: np.ndarray, w0: np.ndarray,
                       labels: np.ndarray, const: np.ndarray,
                       best_l2: np.ndarray, best_adv: np.ndarray,
                       best_const: np.ndarray, ever_success: np.ndarray,
                       iters):
        """One binary-search step: a masked Adam run at fixed ``const``.

        All lanes advance together; ``abort_early`` freezes a lane when
        *its own* loss plateaus, after which later dispatches compact to
        the surviving lanes and the frozen lane's state is bit-stable.
        Mutates the ``best_*`` / ``ever_success`` arrays in place and
        returns the step's :class:`~repro.attacks.batch.MaskedLanes`
        and success mask.
        """
        n = x0.shape[0]
        lanes = MaskedLanes(n)
        w = w0.copy()
        adam_m = np.zeros_like(w)
        adam_v = np.zeros_like(w)
        step_success = np.zeros(n, dtype=bool)
        prev_loss = np.full(n, np.inf, dtype=np.float64)
        check_every = max(self.max_iterations // 10, 1)
        const_f32 = const.astype(np.float32)

        for it in range(self.max_iterations):
            if not lanes.any_active():
                break
            sub = lanes.sub
            pos = np.arange(n) if isinstance(sub, slice) else sub
            n_active = pos.shape[0]

            tanh_w = np.tanh(w[sub])
            x = ((tanh_w + 1.0) * 0.5).astype(np.float32)
            x0_a = x0[sub]
            f_vals, grad_f, _ = self._attack_loss_and_grad(x, labels[sub])
            lanes.tick(dispatches=1)
            iters.inc(n_active)

            delta = (x - x0_a).astype(np.float64)
            l2_sq = (delta.reshape(n_active, -1) ** 2).sum(axis=1)

            # Success test: the hinge saturated, i.e. margin >= kappa.
            succeeded = f_vals <= -self.kappa + 1e-6
            improved = succeeded & (l2_sq < best_l2[pos])
            if improved.any():
                upd = pos[improved]
                best_l2[upd] = l2_sq[improved]
                best_adv[upd] = x[improved]
                best_const[upd] = const[upd]
            if succeeded.any():
                hit = pos[succeeded]
                step_success[hit] = True
                ever_success[hit] = True

            # d(loss)/dx = 2*(x - x0) + c * df/dx ; chain through tanh.
            grad_x = (2.0 * (x - x0_a)
                      + const_f32[sub][:, None, None, None] * grad_f)
            grad_w = grad_x * (0.5 * (1.0 - tanh_w ** 2)).astype(np.float32)

            # Adam update (bias-corrected), matching the reference attack.
            # Active lanes all share the loop timestep: lanes only ever
            # freeze, so a lane's local iteration count equals ``it``.
            m_new = 0.9 * adam_m[sub] + 0.1 * grad_w
            v_new = 0.999 * adam_v[sub] + 0.001 * grad_w * grad_w
            adam_m[sub] = m_new
            adam_v[sub] = v_new
            m_hat = m_new / (1.0 - 0.9 ** (it + 1))
            v_hat = v_new / (1.0 - 0.999 ** (it + 1))
            w[sub] = w[sub] - self.lr * m_hat / (np.sqrt(v_hat) + 1e-8)

            if self.abort_early and (it + 1) % check_every == 0:
                # Per-lane plateau test (the per-example semantics): a
                # lane stalls when its own total loss stops improving.
                total = l2_sq + const[pos] * f_vals
                stalled = total > prev_loss[pos] * 0.9999
                if stalled.any():
                    lanes.freeze(pos[stalled])
                keep = pos[~stalled]
                prev_loss[keep] = total[~stalled]

        return lanes, step_success
