"""Gray-box attacks through MagNet's reformer.

The paper's closing argument contrasts its *oblivious* threat model with
Carlini & Wagner's gray-box attack on MagNet (arXiv:1711.08478), where
the attacker knows an autoencoder guards the classifier (but not its
exact parameters) and simply differentiates through the composition
``classifier(AE(x))``.

:class:`ReformedModel` builds that composition as an ordinary
``repro.nn`` module, so *every attack in this library* can be pointed at
the defended pipeline unchanged — recreating the gray-box comparison the
paper cites.  :class:`AveragedModel` balances the raw and reformed logit
paths, the differentiable surrogate for C&W's joint gray-box objective
(fool the raw model *and* survive reforming).  Detector evasion is not
modelled; as in the original gray-box result, detectors may still catch
the crafted examples.
"""

from __future__ import annotations

from repro.nn.autograd import Tensor, as_tensor
from repro.nn.layers import Module


class ReformedModel(Module):
    """The defended pipeline as one differentiable model:
    ``logits = classifier(AE(x))``.

    Attacks bound to this model operate in the gray-box setting — their
    gradients flow through the reformer, so examples are crafted to
    survive reforming by construction.
    """

    def __init__(self, autoencoder: Module, classifier: Module):
        super().__init__()
        self.autoencoder = autoencoder
        self.classifier = classifier

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.autoencoder(as_tensor(x)))


class AveragedModel(Module):
    """Average the logits of the raw and reformed paths.

    C&W's gray-box MagNet attack optimizes against both the direct
    classifier and the reformed one (the example must fool the raw model
    *and* survive reforming); averaging the two logit paths is the
    standard differentiable surrogate.
    """

    def __init__(self, autoencoder: Module, classifier: Module,
                 weight_reformed: float = 0.5):
        super().__init__()
        if not 0.0 <= weight_reformed <= 1.0:
            raise ValueError(
                f"weight_reformed must be in [0, 1], got {weight_reformed}")
        self.autoencoder = autoencoder
        self.classifier = classifier
        self.weight_reformed = float(weight_reformed)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        raw = self.classifier(x)
        reformed = self.classifier(self.autoencoder(x))
        w = self.weight_reformed
        return raw * (1.0 - w) + reformed * w


def graybox_model(magnet, mode: str = "reformed") -> Module:
    """Build the gray-box surrogate for a MagNet instance.

    ``mode="reformed"`` differentiates purely through the reformer;
    ``mode="averaged"`` balances raw and reformed paths (closer to the
    C&W gray-box objective).
    """
    if magnet.reformer is None:
        raise ValueError("this MagNet variant has no reformer to attack through")
    ae = magnet.reformer.autoencoder
    if mode == "reformed":
        return ReformedModel(ae, magnet.classifier)
    if mode == "averaged":
        return AveragedModel(ae, magnet.classifier)
    raise ValueError(f"mode must be 'reformed' or 'averaged', got {mode!r}")
