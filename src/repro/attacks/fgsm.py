"""Fast Gradient Sign Method and its iterative variant.

FGSM (Goodfellow et al., 2015) and I-FGSM/BIM (Kurakin et al., 2016) are
the classical Linf baselines MagNet was originally shown to defend; they
round out the attack suite and serve as sanity baselines in the examples
and tests.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import cross_entropy_grad, is_successful, logits_of
from repro.nn.layers import Module


class FGSM(Attack):
    """Single-step Linf attack: ``x + eps * sign(grad CE)``."""

    name = "fgsm"

    def __init__(self, model: Module, *, epsilon: float = 0.1,
                 backend: str = None):
        super().__init__(model, backend=backend)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        _, grad = cross_entropy_grad(self.model, x0, labels)
        x_adv = np.clip(x0 + self.epsilon * np.sign(grad), 0.0, 1.0).astype(np.float32)
        success = is_successful(logits_of(self.model, x_adv), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x_adv, success, labels,
            name=f"fgsm(eps={self.epsilon:g})")


class IterativeFGSM(Attack):
    """I-FGSM / BIM: repeated small FGSM steps clipped to an eps-ball."""

    name = "ifgsm"

    def __init__(self, model: Module, *, epsilon: float = 0.1,
                 step_size: float = 0.02, steps: int = 10,
                 backend: str = None):
        super().__init__(model, backend=backend)
        if epsilon < 0 or step_size <= 0 or steps < 1:
            raise ValueError("invalid I-FGSM parameters")
        self.epsilon = float(epsilon)
        self.step_size = float(step_size)
        self.steps = int(steps)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        lo = np.clip(x0 - self.epsilon, 0.0, 1.0)
        hi = np.clip(x0 + self.epsilon, 0.0, 1.0)
        x = x0.copy()
        for _ in range(self.steps):
            _, grad = cross_entropy_grad(self.model, x, labels)
            x = x + self.step_size * np.sign(grad).astype(np.float32)
            x = np.clip(x, lo, hi)
        success = is_successful(logits_of(self.model, x), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x, success, labels,
            name=f"ifgsm(eps={self.epsilon:g}, steps={self.steps})")
