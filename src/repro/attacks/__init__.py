"""Adversarial attacks: EAD (the paper's L1 attack), C&W-L2, and baselines.

Every attack follows one batch-first contract — ``attack(x0, labels) ->
AttackResult`` is batch-in/batch-out, constructor knobs are keyword-only
after ``model``, and empty batches short-circuit without touching the
model.  The optimization attacks (EAD, C&W) run on the masked batch
engine in :mod:`repro.attacks.batch`; single-example calls go through
the deprecated :meth:`Attack.attack_one` shim.
"""

from repro.attacks.adaptive import (
    BPDAReformedModel,
    DetectorAwareCW,
    DetectorAwareEAD,
    DetectorMarginPenalty,
    bpda_model,
    detector_aware_attack,
    detector_score_graph,
    straight_through,
)
from repro.attacks.base import (
    Attack,
    AttackResult,
    concat_results,
    flat_norms,
)
from repro.attacks.batch import (
    BATCH_MODES,
    BatchLoopMixin,
    MaskedLanes,
    resolve_batch_mode,
)
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.ead import DECISION_RULES, EAD, shrink_threshold
from repro.attacks.fgsm import FGSM, IterativeFGSM
from repro.attacks.graybox import AveragedModel, ReformedModel, graybox_model
from repro.attacks.jsma import JSMA
from repro.attacks.pgd import PGD, MomentumFGSM
from repro.attacks.zoo import RandomNoise, ZOO
from repro.attacks.gradients import (
    attack_margin,
    class_logit_grads,
    cross_entropy_grad,
    frozen_parameters,
    is_successful,
    logits_of,
    margin_loss_and_grad,
    margin_only,
)

__all__ = [
    "Attack",
    "AttackResult",
    "AveragedModel",
    "BATCH_MODES",
    "BPDAReformedModel",
    "BatchLoopMixin",
    "CarliniWagnerL2",
    "DECISION_RULES",
    "DeepFool",
    "DetectorAwareCW",
    "DetectorAwareEAD",
    "DetectorMarginPenalty",
    "EAD",
    "FGSM",
    "IterativeFGSM",
    "JSMA",
    "MaskedLanes",
    "MomentumFGSM",
    "PGD",
    "RandomNoise",
    "ReformedModel",
    "ZOO",
    "attack_margin",
    "bpda_model",
    "class_logit_grads",
    "concat_results",
    "cross_entropy_grad",
    "detector_aware_attack",
    "detector_score_graph",
    "flat_norms",
    "frozen_parameters",
    "graybox_model",
    "straight_through",
    "is_successful",
    "logits_of",
    "margin_loss_and_grad",
    "margin_only",
    "resolve_batch_mode",
    "shrink_threshold",
]
