"""Adversarial attacks: EAD (the paper's L1 attack), C&W-L2, and baselines."""

from repro.attacks.base import Attack, AttackResult, flat_norms
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.ead import DECISION_RULES, EAD, shrink_threshold
from repro.attacks.fgsm import FGSM, IterativeFGSM
from repro.attacks.graybox import AveragedModel, ReformedModel, graybox_model
from repro.attacks.jsma import JSMA
from repro.attacks.pgd import PGD, MomentumFGSM
from repro.attacks.zoo import RandomNoise, ZOO
from repro.attacks.gradients import (
    attack_margin,
    class_logit_grads,
    cross_entropy_grad,
    is_successful,
    logits_of,
    margin_loss_and_grad,
)

__all__ = [
    "Attack",
    "AttackResult",
    "AveragedModel",
    "CarliniWagnerL2",
    "DECISION_RULES",
    "DeepFool",
    "EAD",
    "FGSM",
    "IterativeFGSM",
    "JSMA",
    "MomentumFGSM",
    "PGD",
    "RandomNoise",
    "ReformedModel",
    "attack_margin",
    "class_logit_grads",
    "cross_entropy_grad",
    "flat_norms",
    "graybox_model",
    "is_successful",
    "logits_of",
    "margin_loss_and_grad",
    "ZOO",
    "shrink_threshold",
]
