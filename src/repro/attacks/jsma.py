"""JSMA — the Jacobian-based Saliency Map Attack (Papernot et al., 2016).

A pure-L0 attack: it greedily saturates the pixels whose Jacobian
saliency most increases the target class while decreasing the others.
Included as the classical sparse-attack reference point: EAD's
elastic-net regularization finds sparse perturbations *by optimization*,
where JSMA does so *by greedy selection* — comparing the two against
MagNet is a natural ablation on the paper's L1 theme.

This implementation is untargeted-by-proxy: for each example the target
is the runner-up class of the clean prediction (the nearest wrong
class), matching the common untargeted JSMA evaluation protocol.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import class_logit_grads, is_successful, logits_of
from repro.nn.layers import Module


class JSMA(Attack):
    """Greedy L0 attack via Jacobian saliency maps (pixel-pair variant
    simplified to single-pixel greedy steps, increasing perturbation)."""

    name = "jsma"

    def __init__(self, model: Module, *, theta: float = 1.0,
                 max_fraction: float = 0.1):
        super().__init__(model)
        if not 0 < max_fraction <= 1:
            raise ValueError(f"max_fraction must be in (0,1], got {max_fraction}")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.theta = float(theta)        # per-step pixel increment
        self.max_fraction = float(max_fraction)  # budget: fraction of pixels

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        n = x0.shape[0]
        n_pixels = int(np.prod(x0.shape[1:]))
        budget = max(1, int(self.max_fraction * n_pixels))

        # Fixed targets: the runner-up class on the clean input.
        clean_logits = logits_of(self.model, x0)
        masked = clean_logits.copy()
        masked[np.arange(n), labels] = -np.inf
        targets = masked.argmax(axis=1)

        x = x0.copy()
        active = np.ones(n, dtype=bool)
        used = np.zeros((n, n_pixels), dtype=bool)

        for _step in range(budget):
            if not active.any():
                break
            idx = np.flatnonzero(active)
            logits, grads = class_logit_grads(self.model, x[idx])
            k = logits.shape[1]
            tgt = targets[idx]
            sub = np.arange(len(idx))

            grad_target = grads[tgt, sub].reshape(len(idx), -1)
            grad_sum = grads.sum(axis=0).reshape(len(idx), -1)
            grad_others = grad_sum - grad_target

            # Saliency: target gradient positive AND others-sum negative.
            saliency = np.where(
                (grad_target > 0) & (grad_others < 0),
                grad_target * np.abs(grad_others), 0.0)
            # Mask exhausted pixels (already used or saturated).
            flat_x = x[idx].reshape(len(idx), -1)
            saliency[used[idx]] = 0.0
            saliency[flat_x >= 1.0 - 1e-6] = 0.0

            best = saliency.argmax(axis=1)
            has_candidate = saliency[sub, best] > 0
            if not has_candidate.any():
                break

            rows = idx[has_candidate]
            cols = best[has_candidate]
            flat = x.reshape(n, -1)
            flat[rows, cols] = np.minimum(flat[rows, cols] + self.theta, 1.0)
            used[rows, cols] = True
            x = flat.reshape(x0.shape)
            # Examples with no usable saliency stop early.
            active[idx[~has_candidate]] = False

            flipped = is_successful(logits_of(self.model, x[idx]),
                                    labels[idx], 0.0)
            active[idx[flipped]] = False

        success = is_successful(logits_of(self.model, x), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x, success, labels,
            name=f"jsma(theta={self.theta:g}, budget={self.max_fraction:g})")
