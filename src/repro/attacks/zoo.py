"""ZOO — Zeroth-Order Optimization black-box attack (Chen et al., 2017).

The paper's reference [7] (by the EAD authors) crafts adversarial
examples with *no gradient access at all*: the C&W loss is minimized
with coordinate-wise finite-difference gradient estimates and Adam.
Including it completes the threat-model spectrum in this library:

* white-box   — C&W / EAD / PGD (exact gradients),
* oblivious   — the paper's setting (white-box on the undefended model),
* black-box   — ZOO (score access only).

This implementation follows ZOO-Adam: at each step a random subset of
pixels is probed with symmetric differences, the estimated gradient
feeds a per-coordinate Adam update, and the box constraint is kept by
projection.  It is far slower per iteration than the white-box attacks
(each probed coordinate costs two forward passes), so defaults are
modest; it targets demonstration-scale experiments, matching how the
original paper used it.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import attack_margin, logits_of
from repro.nn.layers import Module
from repro.utils.rng import rng_from_seed


class ZOO(Attack):
    """Black-box coordinate-descent attack with the C&W hinge loss.

    All hyperparameters after ``model`` are keyword-only; use
    :meth:`from_profile` to bind the iteration budget of an
    :class:`~repro.experiments.config.ExperimentProfile`.
    """

    name = "zoo"

    def __init__(self, model: Module, *, kappa: float = 0.0, const: float = 1.0,
                 max_iterations: int = 300, coords_per_step: int = 32,
                 lr: float = 0.02, delta: float = 1e-3, seed: int = 0,
                 targeted: bool = False):
        super().__init__(model)
        if kappa < 0 or const <= 0 or max_iterations < 1:
            raise ValueError("invalid ZOO parameters")
        if coords_per_step < 1 or delta <= 0 or lr <= 0:
            raise ValueError("invalid ZOO step parameters")
        self.kappa = float(kappa)
        self.const = float(const)
        self.max_iterations = int(max_iterations)
        self.coords_per_step = int(coords_per_step)
        self.lr = float(lr)
        self.delta = float(delta)
        self.seed = int(seed)
        self.targeted = bool(targeted)

    @classmethod
    def from_profile(cls, model: Module, profile, **overrides) -> "ZOO":
        """Build the attack with a profile's iteration budget.

        ZOO's per-iteration cost is dominated by coordinate probes, so
        only ``max_iterations`` maps from the profile; the
        coordinate-descent knobs keep their defaults unless overridden.
        """
        params = dict(max_iterations=profile.max_iterations)
        params.update(overrides)
        return cls(model, **params)

    def _loss(self, x_flat: np.ndarray, shape, labels: np.ndarray,
              x0_flat: np.ndarray) -> np.ndarray:
        """Per-example C&W objective from score access only."""
        logits = logits_of(self.model, x_flat.reshape(shape))
        margin = attack_margin(logits, labels, self.targeted)
        f = np.maximum(-margin, -self.kappa)
        l2_sq = ((x_flat - x0_flat) ** 2).sum(axis=1)
        return l2_sq + self.const * f

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        rng = rng_from_seed(self.seed)
        n = x0.shape[0]
        shape = x0.shape
        dim = int(np.prod(shape[1:]))

        x = x0.reshape(n, dim).copy()
        x0_flat = x0.reshape(n, dim)
        adam_m = np.zeros_like(x)
        adam_v = np.zeros_like(x)
        steps = np.zeros_like(x)  # per-coordinate Adam timestep

        best_l2 = np.full(n, np.inf)
        best_adv = x0.copy()
        ever_success = np.zeros(n, dtype=bool)

        for _ in range(self.max_iterations):
            # Probe a fresh random coordinate set (shared across batch —
            # one model call evaluates all examples at once).
            coords = rng.choice(dim, size=min(self.coords_per_step, dim),
                                replace=False)
            grad = np.zeros_like(x)
            for c in coords:
                plus = x.copy()
                plus[:, c] = np.clip(plus[:, c] + self.delta, 0, 1)
                minus = x.copy()
                minus[:, c] = np.clip(minus[:, c] - self.delta, 0, 1)
                f_plus = self._loss(plus, shape, labels, x0_flat)
                f_minus = self._loss(minus, shape, labels, x0_flat)
                grad[:, c] = (f_plus - f_minus) / (2 * self.delta)

            # Per-coordinate Adam on the probed coordinates only.
            mask = np.zeros(dim, dtype=bool)
            mask[coords] = True
            steps[:, mask] += 1
            adam_m[:, mask] = 0.9 * adam_m[:, mask] + 0.1 * grad[:, mask]
            adam_v[:, mask] = (0.999 * adam_v[:, mask]
                               + 0.001 * grad[:, mask] ** 2)
            t = np.maximum(steps[:, mask], 1.0)
            m_hat = adam_m[:, mask] / (1 - 0.9 ** t)
            v_hat = adam_v[:, mask] / (1 - 0.999 ** t)
            x[:, mask] = np.clip(
                x[:, mask] - self.lr * m_hat / (np.sqrt(v_hat) + 1e-8),
                0.0, 1.0)

            logits = logits_of(self.model, x.reshape(shape))
            margin = attack_margin(logits, labels, self.targeted)
            succeeded = margin >= self.kappa - 1e-6
            if succeeded.any():
                l2_sq = ((x - x0_flat) ** 2).sum(axis=1)
                improved = succeeded & (l2_sq < best_l2)
                best_l2[improved] = l2_sq[improved]
                best_adv[improved] = x[improved].reshape(
                    (-1,) + shape[1:])
                ever_success |= succeeded

        return AttackResult.from_examples(
            self.model, x0, best_adv, ever_success, labels,
            name=f"zoo(kappa={self.kappa:g})")


class RandomNoise(Attack):
    """Sanity-floor baseline: i.i.d. uniform noise of growing magnitude.

    Any gradient-based attack must dominate this; it also calibrates how
    much *unstructured* perturbation the defended pipeline tolerates.
    """

    name = "random_noise"

    def __init__(self, model: Module, *, epsilon: float = 0.3,
                 tries: int = 5, seed: int = 0):
        super().__init__(model)
        if epsilon < 0 or tries < 1:
            raise ValueError("invalid RandomNoise parameters")
        self.epsilon = float(epsilon)
        self.tries = int(tries)
        self.seed = int(seed)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        rng = rng_from_seed(self.seed)
        n = x0.shape[0]
        best = x0.copy()
        found = np.zeros(n, dtype=bool)
        for _ in range(self.tries):
            noise = rng.uniform(-self.epsilon, self.epsilon, x0.shape)
            candidate = np.clip(x0 + noise, 0, 1).astype(np.float32)
            margin = attack_margin(logits_of(self.model, candidate), labels)
            hit = (margin >= -1e-6) & ~found
            best[hit] = candidate[hit]
            found |= hit
        return AttackResult.from_examples(
            self.model, x0, best, found, labels,
            name=f"random_noise(eps={self.epsilon:g})")
