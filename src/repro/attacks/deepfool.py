"""DeepFool (Moosavi-Dezfooli et al., CVPR 2016).

An untargeted minimal-L2 attack that iteratively crosses the nearest
linearized decision boundary.  Listed by the paper among the attacks
MagNet defends; included for completeness of the attack suite.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.gradients import class_logit_grads, is_successful, logits_of
from repro.nn.layers import Module


class DeepFool(Attack):
    """Batched DeepFool with overshoot, stopping each example on success."""

    name = "deepfool"

    def __init__(self, model: Module, *, max_iterations: int = 30,
                 overshoot: float = 0.02, backend: str = None):
        super().__init__(model, backend=backend)
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = int(max_iterations)
        self.overshoot = float(overshoot)

    def _run(self, x0: np.ndarray, labels: np.ndarray) -> AttackResult:
        n = x0.shape[0]
        rows = np.arange(n)

        x = x0.copy()
        total_pert = np.zeros_like(x0)
        active = np.ones(n, dtype=bool)

        for _ in range(self.max_iterations):
            if not active.any():
                break
            idx = np.flatnonzero(active)
            logits, grads = class_logit_grads(self.model, x[idx])
            k = logits.shape[1]
            lab = labels[idx]
            sub_rows = np.arange(len(idx))

            # Per class: f_k = Z_k - Z_lab, w_k = grad_k - grad_lab.
            f = logits - logits[sub_rows, lab][:, None]
            grad_lab = grads[lab, sub_rows]          # (n_active, C, H, W)
            best_ratio = np.full(len(idx), np.inf)
            best_r = np.zeros_like(grad_lab)
            for cls in range(k):
                w_k = grads[cls, sub_rows] - grad_lab
                w_norm_sq = (w_k.reshape(len(idx), -1) ** 2).sum(axis=1)
                valid = (cls != lab) & (w_norm_sq > 1e-12)
                if not valid.any():
                    continue
                ratio = np.abs(f[sub_rows, cls]) / np.sqrt(w_norm_sq + 1e-12)
                better = valid & (ratio < best_ratio)
                if better.any():
                    best_ratio[better] = ratio[better]
                    scale = ((np.abs(f[sub_rows, cls]) + 1e-4)
                             / (w_norm_sq + 1e-12))
                    best_r[better] = (scale[:, None, None, None] * w_k)[better]

            total_pert[idx] += best_r
            x[idx] = np.clip(
                x0[idx] + (1.0 + self.overshoot) * total_pert[idx], 0.0, 1.0)

            flipped = is_successful(logits_of(self.model, x[idx]), lab, 0.0)
            active[idx[flipped]] = False

        success = is_successful(logits_of(self.model, x), labels, 0.0)
        return AttackResult.from_examples(
            self.model, x0, x, success, labels, name="deepfool")
