"""Masked batch iteration for the optimization attacks.

The EAD / C&W optimize loops advance a whole batch per numpy dispatch:
every per-example quantity — the binary-search bracket (``c_lo`` /
``c_hi`` / ``c``), Adam state, best-so-far scores — is carried as a wide
array with one entry per *lane* (batch row), and a boolean **active
mask** decides which lanes still iterate.  A lane leaves the mask when
its loss plateaus (per-lane early abort); once frozen it is bit-stable:
no later dispatch reads or writes its state.

Model calls are **compacted** to the active lanes (``x[active]``), so a
batch where most lanes have converged costs proportionally less, while
the all-active fast path avoids the gather entirely.  The recorded-
loop-over-wide-arrays structure follows drjit's symbolic loops: Python
controls iteration count, numpy does one wide dispatch per step
regardless of batch size.

Two engine modes exist behind the same API (``batch_mode=``):

* ``"batched"`` (default) — the wide engine above;
* ``"per_example"`` — the reference path: each lane runs alone as a
  batch of one.  It exists as the equivalence baseline (see
  ``tests/attacks/test_batch_equivalence.py``) and for bisecting; it is
  typically several times slower and emits a :class:`DeprecationWarning`
  hint when selected implicitly via deprecated shims.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.attacks.gradients import margin_loss_and_grad, margin_only

#: Engine modes accepted by the optimization attacks' ``batch_mode=``.
BATCH_MODES = ("batched", "per_example")


def resolve_batch_mode(batch_mode: str) -> str:
    """Validate a ``batch_mode`` knob value."""
    if batch_mode not in BATCH_MODES:
        raise ValueError(
            f"batch_mode must be one of {BATCH_MODES}, got {batch_mode!r}")
    return batch_mode


class MaskedLanes:
    """Wide-array lane bookkeeping for one masked optimize loop.

    Tracks which lanes are still iterating, how many optimizer
    iterations each lane has consumed, and how many compacted model
    dispatches the loop issued.  The discipline that makes frozen lanes
    bit-stable lives here: every read/write in the loop goes through
    :attr:`sub` (the active-lane gather index), so a frozen lane's state
    is never touched again.
    """

    __slots__ = ("n", "active", "iterations", "dispatches")

    def __init__(self, n: int):
        self.n = int(n)
        self.active = np.ones(self.n, dtype=bool)
        self.iterations = np.zeros(self.n, dtype=np.int64)
        self.dispatches = 0

    def __len__(self) -> int:
        return self.n

    @property
    def count(self) -> int:
        """Number of lanes still iterating."""
        return int(self.active.sum())

    def any_active(self) -> bool:
        return bool(self.active.any())

    @property
    def sub(self) -> Union[slice, np.ndarray]:
        """Gather index for the active lanes.

        Returns ``slice(None)`` while every lane is active (views, no
        copies — the hot all-active phase), an integer index array once
        compaction kicks in.  Valid for both reads (``x[sub]``) and
        scatter writes (``x[sub] = ...``).
        """
        if self.active.all():
            return slice(None)
        return np.flatnonzero(self.active)

    def indices(self) -> np.ndarray:
        """Active lane positions as an index array (always materialized)."""
        return np.flatnonzero(self.active)

    def tick(self, dispatches: int = 1) -> None:
        """Record one loop iteration: every active lane did one
        optimizer step, the model was dispatched ``dispatches`` times."""
        self.iterations[self.active] += 1
        self.dispatches += int(dispatches)

    def freeze(self, lanes: np.ndarray) -> None:
        """Clear the mask for ``lanes`` (positions into the full batch).

        Freezing is one-way: a frozen lane never re-enters the loop, so
        everything written for it so far is final (bit-stable).
        """
        self.active[lanes] = False

    def freeze_where(self, stalled: np.ndarray) -> None:
        """Freeze by a boolean mask over the *active* lanes, in active
        order (the shape loop bodies naturally produce)."""
        sub = self.sub
        if isinstance(sub, slice):
            self.active[np.flatnonzero(stalled)] = False
        else:
            self.active[sub[stalled]] = False


class BatchLoopMixin:
    """Shared plumbing for attacks built on the masked batch engine.

    Adds the ``batch_mode`` knob plus the per-example fan-out used as
    the reference path.  Mixing classes must implement their batched
    body; :meth:`_lanewise` slices a prepared batch into single-lane
    batches and returns the per-lane outputs in order for stitching
    (see :func:`repro.attacks.base.concat_results`).
    """

    batch_mode: str = "batched"

    def _set_batch_mode(self, batch_mode: str) -> None:
        self.batch_mode = resolve_batch_mode(batch_mode)

    # ------------------------------------------------------------------
    # Attack-objective hooks
    # ------------------------------------------------------------------
    # The optimize loops never call the margin helpers directly; they go
    # through these two hooks so adaptive variants (e.g. the
    # detector-aware attacks in :mod:`repro.attacks.adaptive`) can fold
    # extra differentiable terms into the objective — and into the
    # success test — without re-implementing the masked engine.  Both
    # assume the mixing class carries ``model`` / ``kappa`` /
    # ``targeted``, which every optimization attack does.

    def _attack_loss_and_grad(self, x: np.ndarray, labels: np.ndarray
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Attack loss f, its input gradient, and the logits (hook).

        Default: the confidence-κ hinge on the logits (paper eqs.
        (2)/(3)).  Overrides must keep the contract that ``f <= -kappa``
        iff the example counts as successful for this objective.
        """
        return margin_loss_and_grad(self.model, x, labels, self.kappa,
                                    targeted=self.targeted)

    def _attack_loss(self, x: np.ndarray, labels: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Loss values only, no graph (per-iterate success tests; hook)."""
        return margin_only(self.model, x, labels, self.kappa, self.targeted)

    @property
    def _use_lanewise(self) -> bool:
        """Whether the per-example reference engine should run.

        Single-lane batches short-circuit to the batched engine — the
        two are identical at ``N=1``, so the fan-out/stitch overhead is
        skipped (the single-example fast path).
        """
        return self.batch_mode == "per_example"

    @staticmethod
    def _lanewise(x0: np.ndarray, labels: np.ndarray, run_one):
        """Run ``run_one(x_lane, label_lane)`` per lane, in order."""
        return [run_one(x0[i:i + 1], labels[i:i + 1])
                for i in range(x0.shape[0])]
