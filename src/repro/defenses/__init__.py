"""MagNet defense: detectors, reformer, pipeline and paper variants."""

from repro.defenses.adversarial_training import (
    AdversarialTrainer,
    adversarially_train_classifier,
)
from repro.defenses.detectors import (
    Detector,
    JSDDetector,
    ReconstructionDetector,
    jensen_shannon_divergence,
)
from repro.defenses.ensemble import DetectorUnion
from repro.defenses.magnet import MagNet, MagNetDecision
from repro.defenses.reformer import Reformer
from repro.defenses.squeezing import (
    FeatureSqueezing,
    SqueezeDetector,
    Squeezer,
    bit_depth_reduction,
    default_squeezers,
    median_smoothing,
)
from repro.defenses.variants import (
    CIFAR_VARIANTS,
    JSD_TEMPERATURES,
    MNIST_VARIANTS,
    VARIANT_LABELS,
    build_magnet,
)

__all__ = [
    "AdversarialTrainer",
    "CIFAR_VARIANTS",
    "Detector",
    "DetectorUnion",
    "FeatureSqueezing",
    "JSDDetector",
    "JSD_TEMPERATURES",
    "MNIST_VARIANTS",
    "MagNet",
    "MagNetDecision",
    "ReconstructionDetector",
    "Reformer",
    "SqueezeDetector",
    "Squeezer",
    "VARIANT_LABELS",
    "adversarially_train_classifier",
    "bit_depth_reduction",
    "build_magnet",
    "default_squeezers",
    "jensen_shannon_divergence",
    "median_smoothing",
]
