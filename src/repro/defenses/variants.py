"""Factory for the MagNet variants evaluated in the paper.

MNIST (SyntheticDigits) variants, matching Figure 2 / Table IV:

* ``default`` (D)      — two reconstruction detectors (L1 on AE-I, L2 on
  AE-II) + reformer (AE-I), conv width 3.
* ``jsd`` (D+JSD)      — default + two JSD detectors (T = 10, 40).
* ``wide`` (D+256)     — default with wider autoencoders (paper: 256).
* ``wide_jsd``         — both modifications.

CIFAR (SyntheticObjects) variants, matching Figure 3 / Table VII:

* ``default`` (D)      — one AE; L1 + L2 reconstruction detectors + JSD
  detectors (T = 10, 40) + reformer (the paper notes CIFAR MagNet ships
  JSD detectors by default).
* ``wide`` (D+256)     — the same with wider autoencoders.

``ae_loss`` switches the autoencoder training objective between MSE
(MagNet default) and MAE (the paper's Figure 12/13 ablation).
"""

from __future__ import annotations

from typing import Optional

from repro.defenses.detectors import JSDDetector, ReconstructionDetector
from repro.defenses.magnet import MagNet
from repro.defenses.reformer import Reformer
from repro.models.zoo import AutoencoderSpec, ClassifierSpec, ModelZoo

MNIST_VARIANTS = ("default", "jsd", "wide", "wide_jsd")
CIFAR_VARIANTS = ("default", "wide")

#: Human-readable variant labels used in printed tables (paper notation).
VARIANT_LABELS = {
    "default": "Default (D)",
    "jsd": "D+JSD",
    "wide": "D+256",
    "wide_jsd": "D+256+JSD",
}

JSD_TEMPERATURES = (10.0, 40.0)


def build_magnet(zoo: ModelZoo, dataset: str, variant: str = "default", *,
                 classifier=None,
                 classifier_spec: Optional[ClassifierSpec] = None,
                 default_width: int = 3, wide_width: int = 24,
                 ae_loss: str = "mse", ae_epochs: Optional[int] = None,
                 wide_ae_epochs: Optional[int] = None,
                 fpr_total: float = 0.01, seed: int = 0) -> MagNet:
    """Build and calibrate a MagNet variant from a model zoo.

    ``wide_width`` stands in for the paper's 256 filters; the ``paper``
    profile raises it (see DESIGN.md §2).  Thresholds are calibrated on
    the zoo's clean validation split with total false-positive budget
    ``fpr_total``.  Pass ``classifier`` explicitly to defend a wrapped
    model (e.g. :class:`~repro.models.classifiers.ScaledLogits`); the JSD
    detectors must see the same logits the attacker targets.
    """
    if dataset == "digits":
        if variant not in MNIST_VARIANTS:
            raise KeyError(f"unknown MNIST variant {variant!r}; "
                           f"expected one of {MNIST_VARIANTS}")
    elif dataset == "objects":
        if variant not in CIFAR_VARIANTS:
            raise KeyError(f"unknown CIFAR variant {variant!r}; "
                           f"expected one of {CIFAR_VARIANTS}")
    else:
        raise KeyError(f"unknown dataset {dataset!r}")

    is_wide = variant in ("wide", "wide_jsd")
    width = wide_width if is_wide else default_width
    ae_kwargs = dict(dataset=dataset, width=width, loss=ae_loss, seed=seed)
    epochs = wide_ae_epochs if (is_wide and wide_ae_epochs) else ae_epochs
    if epochs is not None:
        ae_kwargs["epochs"] = epochs

    if classifier is None:
        classifier = zoo.classifier(classifier_spec or ClassifierSpec(dataset=dataset))

    if dataset == "digits":
        ae_deep = zoo.autoencoder(AutoencoderSpec(kind="deep", **ae_kwargs))
        ae_shallow = zoo.autoencoder(AutoencoderSpec(kind="shallow", **ae_kwargs))
        detectors = [
            ReconstructionDetector(ae_deep, norm=1),
            ReconstructionDetector(ae_shallow, norm=2),
        ]
        if variant in ("jsd", "wide_jsd"):
            detectors += [
                JSDDetector(ae_deep, classifier, temperature=t)
                for t in JSD_TEMPERATURES
            ]
        reformer = Reformer(ae_deep)
    else:
        ae = zoo.autoencoder(AutoencoderSpec(kind="deep", **ae_kwargs))
        detectors = [
            ReconstructionDetector(ae, norm=1),
            ReconstructionDetector(ae, norm=2),
            JSDDetector(ae, classifier, temperature=JSD_TEMPERATURES[0]),
            JSDDetector(ae, classifier, temperature=JSD_TEMPERATURES[1]),
        ]
        reformer = Reformer(ae)

    name = f"{dataset}/{variant}" + ("" if ae_loss == "mse" else f"+{ae_loss}")
    magnet = MagNet(classifier, detectors, reformer, name=name)
    magnet.calibrate(zoo.splits.val.x, fpr_total=fpr_total)
    return magnet
