"""The MagNet defense pipeline (Meng & Chen, CCS 2017).

MagNet is a serial two-stage defense in front of a fixed classifier:

1. **Detect** — every detector scores the input; if any score exceeds its
   calibrated threshold the input is rejected as adversarial.
2. **Reform** — surviving inputs are projected onto the learned data
   manifold by the reformer autoencoder, then classified.

The evaluation conventions follow the paper under reproduction:

* *defense accuracy* on adversarial examples = fraction that are either
  detected **or** correctly classified after reforming (its complement is
  the attack success rate);
* *clean accuracy* with MagNet = fraction of clean inputs that are **not**
  flagged and are correctly classified after reforming (false positives
  count against the defense, which is why Tables III/VI show a small drop).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.defenses.detectors import Detector
from repro.defenses.reformer import Reformer
from repro.nn.layers import Module
from repro.nn.training import predict_labels


@dataclasses.dataclass
class MagNetDecision:
    """Full per-example outcome of a MagNet pass."""

    detected: np.ndarray          # (N,) bool — rejected by any detector
    labels_raw: np.ndarray        # (N,) classifier labels on the raw input
    labels_reformed: np.ndarray   # (N,) classifier labels after reforming
    detector_flags: np.ndarray    # (D, N) bool — per-detector decisions
    #: (D, N) float per-detector anomaly scores; populated by
    #: :meth:`MagNet.decide_batch` (None on the plain :meth:`MagNet.decide`
    #: path, which never materializes them).
    detector_scores: Optional[np.ndarray] = None
    #: Wall-clock seconds per pipeline stage ("detect", "reform",
    #: "classify"); populated by :meth:`MagNet.decide_batch` for the
    #: serving layer's telemetry.
    stage_s: Optional[Dict[str, float]] = None

    def __len__(self) -> int:
        return len(self.detected)


class MagNet:
    """Detector ensemble + reformer in front of a classifier."""

    def __init__(self, classifier: Module, detectors: Sequence[Detector],
                 reformer: Optional[Reformer], name: str = "magnet"):
        self.classifier = classifier
        self.detectors: List[Detector] = list(detectors)
        self.reformer = reformer
        self.name = name

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(self, x_val: np.ndarray, fpr_total: float = 0.01) -> None:
        """Calibrate all detector thresholds on clean validation data.

        The total false-positive budget is split evenly across detectors,
        mirroring MagNet's per-detector allocation.
        """
        if not self.detectors:
            return
        fpr_each = fpr_total / len(self.detectors)
        for det in self.detectors:
            det.calibrate(x_val, fpr_each)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def detect(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask: True where any detector rejects the input."""
        if not self.detectors:
            return np.zeros(x.shape[0], dtype=bool)
        flags = np.stack([det.flags(x) for det in self.detectors])
        return flags.any(axis=0)

    def detector_flags(self, x: np.ndarray) -> np.ndarray:
        """(D, N) per-detector boolean decisions."""
        if not self.detectors:
            return np.zeros((0, x.shape[0]), dtype=bool)
        return np.stack([det.flags(x) for det in self.detectors])

    def detector_scores(self, x: np.ndarray) -> np.ndarray:
        """(D, N) per-detector anomaly scores (higher = more anomalous)."""
        if not self.detectors:
            return np.zeros((0, x.shape[0]), dtype=np.float32)
        return np.stack([det.score(x) for det in self.detectors])

    def reform(self, x: np.ndarray) -> np.ndarray:
        """Apply the reformer (identity if the variant has none)."""
        if self.reformer is None:
            return np.asarray(x, dtype=np.float32)
        return self.reformer.reform(x)

    def decide(self, x: np.ndarray) -> MagNetDecision:
        """Run the full pipeline and return every per-example signal."""
        x = np.asarray(x, dtype=np.float32)
        det_flags = self.detector_flags(x)
        detected = det_flags.any(axis=0) if det_flags.size else np.zeros(len(x), bool)
        labels_raw = predict_labels(self.classifier, x)
        labels_reformed = predict_labels(self.classifier, self.reform(x))
        return MagNetDecision(detected=detected, labels_raw=labels_raw,
                              labels_reformed=labels_reformed,
                              detector_flags=det_flags)

    def decide_batch(self, x: np.ndarray) -> MagNetDecision:
        """Serving entry point: one batched pass with scores and timings.

        Computes exactly what :meth:`decide` computes — each detector flag
        is its score compared against the calibrated threshold, labels come
        from the same batched forward passes — so for the same input array
        the two paths produce bitwise-identical decisions.  Additionally
        materializes the (D, N) score matrix (each detector's forward pass
        is run once, not twice) and per-stage wall-clock timings for the
        serving layer's verdicts and telemetry.
        """
        x = np.asarray(x, dtype=np.float32)
        n = x.shape[0]
        t0 = time.perf_counter()
        scores = self.detector_scores(x)
        flags = np.zeros((len(self.detectors), n), dtype=bool)
        for i, det in enumerate(self.detectors):
            if det.threshold is None:
                raise RuntimeError(
                    f"{det.name} has no threshold; call calibrate() first")
            flags[i] = scores[i] > det.threshold
        detected = flags.any(axis=0) if flags.size else np.zeros(n, bool)
        t1 = time.perf_counter()
        x_reformed = self.reform(x)
        t2 = time.perf_counter()
        labels_raw = predict_labels(self.classifier, x)
        labels_reformed = predict_labels(self.classifier, x_reformed)
        t3 = time.perf_counter()
        return MagNetDecision(
            detected=detected, labels_raw=labels_raw,
            labels_reformed=labels_reformed, detector_flags=flags,
            detector_scores=scores,
            stage_s={"detect": t1 - t0, "reform": t2 - t1,
                     "classify": t3 - t2})

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def defense_accuracy(self, x_adv: np.ndarray, y_true: np.ndarray) -> float:
        """Paper's 'classification accuracy' on adversarial examples:
        detected OR correctly classified after reforming.

        Empty input returns 0.0 by convention (no examples defended)
        rather than propagating a 0/0 NaN.
        """
        if np.asarray(x_adv).shape[0] == 0:
            return 0.0
        decision = self.decide(x_adv)
        ok = decision.detected | (decision.labels_reformed == np.asarray(y_true))
        return float(ok.mean())

    def attack_success_rate(self, x_adv: np.ndarray, y_true: np.ndarray) -> float:
        """ASR = 100% − defense accuracy (as a fraction in [0, 1]).

        Empty input returns 0.0 by convention (no examples attacked).
        """
        if np.asarray(x_adv).shape[0] == 0:
            return 0.0
        return 1.0 - self.defense_accuracy(x_adv, y_true)

    def clean_accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on clean data with the defense active (FPs count as errors).

        Empty input returns 0.0 by convention.
        """
        if np.asarray(x).shape[0] == 0:
            return 0.0
        decision = self.decide(x)
        ok = (~decision.detected) & (decision.labels_reformed == np.asarray(y))
        return float(ok.mean())

    def __repr__(self):
        det = ", ".join(d.name for d in self.detectors) or "none"
        ref = "yes" if self.reformer is not None else "no"
        return f"MagNet({self.name!r}, detectors=[{det}], reformer={ref})"
