"""MagNet's reformer: project inputs onto the learned data manifold.

The reformer is simply the trained autoencoder applied as a preprocessor:
examples close to the manifold are approximately unchanged, while small
adversarial perturbations are (ideally) absorbed by the projection, so
the downstream classifier sees a rectified image.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module


class Reformer:
    """Autoencoder-based input rectifier."""

    def __init__(self, autoencoder: Module, batch_size: int = 256):
        self.autoencoder = autoencoder
        self.batch_size = batch_size

    def reform(self, x: np.ndarray) -> np.ndarray:
        """Return AE(x), clipped into the valid pixel box."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape[0] == 0:
            return x.copy()
        outs = []
        with no_grad():
            for start in range(0, x.shape[0], self.batch_size):
                batch = self.autoencoder(Tensor(x[start:start + self.batch_size]))
                outs.append(batch.data)
        reformed = np.concatenate(outs, axis=0)
        return np.clip(reformed, 0.0, 1.0).astype(np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.reform(x)
