"""MagNet adversarial-example detectors.

MagNet's detectors declare an input adversarial when a statistic comparing
the input with its autoencoder reconstruction exceeds a threshold
calibrated on clean validation data:

* :class:`ReconstructionDetector` — the per-example Lp reconstruction
  error ``||x - AE(x)||_p`` (MagNet MNIST uses p=1 and p=2 on its two
  autoencoders).
* :class:`JSDDetector` — the Jensen–Shannon divergence between the
  classifier's softened predictions on ``x`` and on ``AE(x)``,
  ``JSD(F(x)/T, F(AE(x))/T)`` with temperature ``T`` (MagNet CIFAR uses
  T = 10 and T = 40).

Scores are "higher = more anomalous" throughout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module


def _batched_forward(model: Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    outs = []
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            outs.append(model(Tensor(x[start:start + batch_size])).data)
    return np.concatenate(outs, axis=0)


_EMPTY_SCORES = np.zeros(0, dtype=np.float32)


class Detector:
    """Base detector: anomaly ``score`` plus a calibrated ``threshold``."""

    name = "detector"

    def __init__(self):
        self.threshold: Optional[float] = None

    def score(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        """Per-example anomaly score (shape (N,)); higher = more anomalous."""
        raise NotImplementedError

    def calibrate(self, x_val: np.ndarray, fpr: float) -> float:
        """Set the threshold to the (1 - fpr) quantile of clean val scores.

        With MagNet's tiny false-positive budgets and modest validation
        sets the quantile degenerates to (near) the max clean score, which
        matches the original implementation's behaviour.
        """
        if not 0.0 < fpr < 1.0:
            raise ValueError(f"fpr must be in (0, 1), got {fpr}")
        scores = self.score(x_val)
        self.threshold = float(np.quantile(scores, 1.0 - fpr))
        return self.threshold

    def flags(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of inputs rejected as adversarial."""
        if self.threshold is None:
            raise RuntimeError(
                f"{self.name} has no threshold; call calibrate() first")
        return self.score(x) > self.threshold

    def __repr__(self):
        thr = f"{self.threshold:.5g}" if self.threshold is not None else "uncalibrated"
        return f"{type(self).__name__}(threshold={thr})"


class ReconstructionDetector(Detector):
    """Reconstruction-error detector: ``||x - AE(x)||_p`` averaged per pixel."""

    def __init__(self, autoencoder: Module, norm: int = 1, batch_size: int = 256):
        super().__init__()
        if norm not in (1, 2):
            raise ValueError(f"norm must be 1 or 2, got {norm}")
        self.autoencoder = autoencoder
        self.norm = int(norm)
        self.batch_size = batch_size
        self.name = f"recon_l{norm}"

    def score(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.shape[0] == 0:
            return _EMPTY_SCORES.copy()
        recon = _batched_forward(self.autoencoder, x, self.batch_size)
        diff = (x - recon).reshape(x.shape[0], -1)
        if self.norm == 1:
            return np.abs(diff).mean(axis=1)
        return np.sqrt((diff ** 2).mean(axis=1))


def _softmax(logits: np.ndarray, temperature: float) -> np.ndarray:
    z = logits / temperature
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray,
                              eps: float = 1e-12) -> np.ndarray:
    """Row-wise JSD between two probability matrices (natural log, in [0, ln 2])."""
    p = np.clip(p, eps, 1.0)
    q = np.clip(q, eps, 1.0)
    m = 0.5 * (p + q)
    kl_pm = (p * (np.log(p) - np.log(m))).sum(axis=1)
    kl_qm = (q * (np.log(q) - np.log(m))).sum(axis=1)
    return 0.5 * (kl_pm + kl_qm)


class JSDDetector(Detector):
    """Jensen–Shannon-divergence detector with softmax temperature ``T``."""

    def __init__(self, autoencoder: Module, classifier: Module,
                 temperature: float = 10.0, batch_size: int = 256):
        super().__init__()
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.autoencoder = autoencoder
        self.classifier = classifier
        self.temperature = float(temperature)
        self.batch_size = batch_size
        self.name = f"jsd_T{temperature:g}"

    def score(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.shape[0] == 0:
            return _EMPTY_SCORES.copy()
        recon = _batched_forward(self.autoencoder, x, self.batch_size)
        logits_x = _batched_forward(self.classifier, x, self.batch_size)
        logits_r = _batched_forward(self.classifier, recon, self.batch_size)
        p = _softmax(logits_x, self.temperature)
        q = _softmax(logits_r, self.temperature)
        return jensen_shannon_divergence(p, q)
