"""Feature squeezing (Xu, Evans & Qi, NDSS 2018) as a companion defense.

The paper's bibliography ([15]: "Bypassing feature squeezing by
increasing adversary strength", Sharma & Chen 2018) makes the same point
about this defense that the main text makes about MagNet: L1-based EAD
examples break it in the oblivious setting.  Implementing it lets the
ablation benchmarks compare both defenses on the same attack batches.

Feature squeezing detects adversarial inputs by comparing the model's
softmax output on the raw input with its outputs on *squeezed* versions:

* bit-depth reduction — quantize pixels to ``b`` bits;
* median smoothing — an ``k x k`` median filter per channel.

The detection score is the maximum L1 distance between the raw
prediction vector and any squeezed prediction vector; the threshold is
calibrated on clean validation data like MagNet's.  As a *defense* (not
just detector), prediction can also be served from a squeezed input.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import ndimage

from repro.defenses.detectors import Detector
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.training import predict_labels


def bit_depth_reduction(x: np.ndarray, bits: int) -> np.ndarray:
    """Quantize pixels in [0,1] to ``bits`` bits per channel."""
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    levels = float(2 ** bits - 1)
    return (np.round(np.asarray(x, dtype=np.float32) * levels)
            / levels).astype(np.float32)


def median_smoothing(x: np.ndarray, kernel: int) -> np.ndarray:
    """Per-channel 2-D median filter over NCHW images."""
    if kernel < 2:
        raise ValueError(f"kernel must be >= 2, got {kernel}")
    x = np.asarray(x, dtype=np.float32)
    size = (1, 1, kernel, kernel)
    return ndimage.median_filter(x, size=size, mode="reflect").astype(np.float32)


class Squeezer:
    """A named squeezing transform."""

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self.fn = fn

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def __repr__(self):
        return f"Squeezer({self.name})"


def default_squeezers(dataset: str = "digits") -> List[Squeezer]:
    """The squeezer sets Xu et al. recommend (grayscale vs color)."""
    if dataset == "digits":
        return [
            Squeezer("bit1", lambda x: bit_depth_reduction(x, 1)),
            Squeezer("median2", lambda x: median_smoothing(x, 2)),
        ]
    return [
        Squeezer("bit4", lambda x: bit_depth_reduction(x, 4)),
        Squeezer("bit5", lambda x: bit_depth_reduction(x, 5)),
        Squeezer("median2", lambda x: median_smoothing(x, 2)),
    ]


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SqueezeDetector(Detector):
    """Max-L1 prediction-distance detector over a squeezer ensemble."""

    def __init__(self, classifier: Module, squeezers: Sequence[Squeezer],
                 batch_size: int = 256):
        super().__init__()
        if not squeezers:
            raise ValueError("need at least one squeezer")
        self.classifier = classifier
        self.squeezers = list(squeezers)
        self.batch_size = batch_size
        self.name = "squeeze_" + "+".join(s.name for s in self.squeezers)

    def _probs(self, x: np.ndarray) -> np.ndarray:
        outs = []
        with no_grad():
            for start in range(0, x.shape[0], self.batch_size):
                logits = self.classifier(Tensor(x[start:start + self.batch_size]))
                outs.append(logits.data)
        return _softmax(np.concatenate(outs, axis=0))

    def score(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        raw = self._probs(x)
        best = np.zeros(x.shape[0], dtype=np.float64)
        for squeezer in self.squeezers:
            squeezed = self._probs(squeezer(x))
            dist = np.abs(raw - squeezed).sum(axis=1)
            best = np.maximum(best, dist)
        return best


class FeatureSqueezing:
    """The full feature-squeezing defense: detector + squeezed prediction.

    API mirrors :class:`~repro.defenses.magnet.MagNet` so the evaluation
    harness can score both defenses on the same adversarial batches.
    """

    def __init__(self, classifier: Module,
                 squeezers: Optional[Sequence[Squeezer]] = None,
                 dataset: str = "digits",
                 predict_squeezer: Optional[Squeezer] = None):
        self.classifier = classifier
        self.squeezers = list(squeezers) if squeezers else default_squeezers(dataset)
        self.detector = SqueezeDetector(classifier, self.squeezers)
        # Served predictions use the first squeezer by default (Xu et al.
        # serve median-smoothed inputs on color datasets).
        self.predict_squeezer = predict_squeezer or self.squeezers[0]
        self.name = f"feature_squeezing/{dataset}"

    def calibrate(self, x_val: np.ndarray, fpr: float = 0.05) -> float:
        """Calibrate the detection threshold on clean validation data."""
        return self.detector.calibrate(x_val, fpr)

    def detect(self, x: np.ndarray) -> np.ndarray:
        return self.detector.flags(x)

    def defense_accuracy(self, x_adv: np.ndarray, y_true: np.ndarray) -> float:
        """Detected OR correctly classified on the squeezed input."""
        x_adv = np.asarray(x_adv, dtype=np.float32)
        detected = self.detect(x_adv)
        squeezed = self.predict_squeezer(x_adv)
        labels = predict_labels(self.classifier, squeezed)
        ok = detected | (labels == np.asarray(y_true))
        return float(ok.mean())

    def attack_success_rate(self, x_adv: np.ndarray, y_true: np.ndarray) -> float:
        return 1.0 - self.defense_accuracy(x_adv, y_true)

    def clean_accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Not-flagged AND correct on the squeezed input."""
        x = np.asarray(x, dtype=np.float32)
        detected = self.detect(x)
        labels = predict_labels(self.classifier, self.predict_squeezer(x))
        ok = (~detected) & (labels == np.asarray(y))
        return float(ok.mean())

    def __repr__(self):
        return (f"FeatureSqueezing({self.name!r}, "
                f"squeezers={[s.name for s in self.squeezers]})")
