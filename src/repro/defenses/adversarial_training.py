"""Adversarial training — the paper's suggested "additional defense".

The paper closes by noting that neither MagNet module defends the
medium-confidence region and that this "calls for additional defense
mechanisms".  The standard such mechanism is adversarial training
(Goodfellow et al. 2015; Madry et al. 2018): augment every minibatch
with adversarial examples crafted *against the current model* and train
on the mixture.

:class:`AdversarialTrainer` wraps the generic training loop with
on-the-fly example crafting.  Any single-shot attack with the library's
``Attack`` interface works as the generator; fast attacks (FGSM, few-step
PGD) keep the inner loop affordable on this pure-numpy substrate.

The ablation benchmark compares an adversarially trained classifier with
MagNet on the same EAD batches — complementary failure modes: MagNet
filters off-manifold inputs, adversarial training flattens the loss
surface near the data.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, Optimizer
from repro.nn.training import TrainingHistory, EpochStats, accuracy, iterate_minibatches
from repro.utils.logging import get_logger
from repro.utils.rng import rng_from_seed

log = get_logger(__name__)


class AdversarialTrainer:
    """Minibatch trainer that mixes clean and adversarial examples.

    Args:
        model: classifier to train (logit outputs).
        attack_factory: ``model -> Attack``; called once, the attack is
            bound to the live (training) model so crafted examples track
            the current weights.
        adversarial_fraction: fraction of each batch replaced by its
            adversarial counterpart (0 = plain training, 1 = pure AT).
        optimizer: optional pre-built optimizer (default Adam).
        seed: shuffling seed.
    """

    def __init__(self, model: Module,
                 attack_factory: Callable[[Module], object],
                 adversarial_fraction: float = 0.5,
                 optimizer: Optional[Optimizer] = None, lr: float = 1e-3,
                 seed: int = 0):
        if not 0.0 <= adversarial_fraction <= 1.0:
            raise ValueError(
                f"adversarial_fraction must be in [0, 1], got "
                f"{adversarial_fraction}")
        self.model = model
        self.attack = attack_factory(model)
        if not hasattr(self.attack, "attack"):
            raise TypeError("attack_factory must return an Attack-like object")
        self.adversarial_fraction = float(adversarial_fraction)
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.rng = rng_from_seed(seed)

    def _augment(self, xb: np.ndarray, yb: np.ndarray) -> np.ndarray:
        """Replace a fraction of the batch with adversarial versions."""
        if self.adversarial_fraction == 0.0:
            return xb
        n_adv = int(round(self.adversarial_fraction * len(xb)))
        if n_adv == 0:
            return xb
        # Crafting runs the model in eval mode semantics; our models have
        # no train/eval-dependent layers in the zoo, so no toggling needed
        # beyond leaving parameters untouched (attacks only read them).
        result = self.attack.attack(xb[:n_adv], yb[:n_adv])
        out = xb.copy()
        out[:n_adv] = result.x_adv
        return out

    def fit(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 5,
            batch_size: int = 64, x_val: Optional[np.ndarray] = None,
            y_val: Optional[np.ndarray] = None,
            verbose: bool = True) -> TrainingHistory:
        """Adversarially train the classifier."""
        history = TrainingHistory()
        self.model.train()
        for epoch in range(1, epochs + 1):
            t0 = time.time()
            losses = []
            for xb, yb in iterate_minibatches(x, y, batch_size, rng=self.rng):
                xb_mixed = self._augment(xb, yb)
                self.optimizer.zero_grad()
                logits = self.model(Tensor(xb_mixed))
                loss = cross_entropy(logits, yb)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            stats = EpochStats(epoch=epoch, train_loss=float(np.mean(losses)),
                               seconds=time.time() - t0)
            if x_val is not None and y_val is not None:
                stats.val_accuracy = accuracy(self.model, x_val, y_val)
            history.epochs.append(stats)
            if verbose:
                msg = (f"AT epoch {epoch}/{epochs} "
                       f"loss={stats.train_loss:.4f}")
                if stats.val_accuracy is not None:
                    msg += f" val_acc={stats.val_accuracy:.3f}"
                log.info(msg)
        self.model.eval()
        return history


def adversarially_train_classifier(build_model: Callable[[], Module],
                                   x: np.ndarray, y: np.ndarray, *,
                                   attack_factory, epochs: int = 5,
                                   batch_size: int = 64,
                                   adversarial_fraction: float = 0.5,
                                   lr: float = 1e-3, seed: int = 0,
                                   x_val: Optional[np.ndarray] = None,
                                   y_val: Optional[np.ndarray] = None,
                                   verbose: bool = False) -> Module:
    """Convenience wrapper: build + adversarially train a fresh classifier."""
    model = build_model()
    trainer = AdversarialTrainer(
        model, attack_factory,
        adversarial_fraction=adversarial_fraction, lr=lr, seed=seed)
    trainer.fit(x, y, epochs=epochs, batch_size=batch_size,
                x_val=x_val, y_val=y_val, verbose=verbose)
    return model
