"""Defense ensembles: union the detectors of several defenses.

The paper's conclusion recommends that "future defense models should
test their robustness against both [L1 and L2] cases" — the natural
systems response is to *stack* defenses.  :class:`DetectorUnion` rejects
an input if any member defense's detector fires, and serves predictions
through a chosen member's prediction path.  The ensemble inherits the
members' calibrations; its aggregate false-positive rate is (at most)
the sum of the members'.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class DetectorUnion:
    """OR-combination of defenses exposing detect()/defense_accuracy().

    Members must expose ``detect(x) -> bool mask``.  Predictions are
    served by ``predictor``, any member exposing the MagNet-style
    ``reform`` + ``classifier`` pair or a ``defense_accuracy``-compatible
    path; by default the first member that has a reformer is used, and
    the first member's classifier otherwise.
    """

    def __init__(self, members: Sequence, name: str = "detector_union",
                 predictor=None):
        if not members:
            raise ValueError("ensemble needs at least one member defense")
        self.members: List = list(members)
        self.name = name
        self.predictor = predictor if predictor is not None else self.members[0]

    def detect(self, x: np.ndarray) -> np.ndarray:
        flags = np.zeros(len(x), dtype=bool)
        for member in self.members:
            flags |= np.asarray(member.detect(x), dtype=bool)
        return flags

    def _predict_labels(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.training import predict_labels

        predictor = self.predictor
        if hasattr(predictor, "reform") and hasattr(predictor, "classifier"):
            return predict_labels(predictor.classifier, predictor.reform(x))
        if hasattr(predictor, "classifier"):
            return predict_labels(predictor.classifier, x)
        raise TypeError(
            f"predictor {predictor!r} exposes neither a reform/classifier "
            "pair nor a classifier")

    def defense_accuracy(self, x_adv: np.ndarray, y_true: np.ndarray) -> float:
        """Detected by any member OR correctly classified by the predictor."""
        x_adv = np.asarray(x_adv, dtype=np.float32)
        detected = self.detect(x_adv)
        labels = self._predict_labels(x_adv)
        ok = detected | (labels == np.asarray(y_true))
        return float(ok.mean())

    def attack_success_rate(self, x_adv: np.ndarray,
                            y_true: np.ndarray) -> float:
        return 1.0 - self.defense_accuracy(x_adv, y_true)

    def clean_accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Not flagged by any member AND correctly classified."""
        x = np.asarray(x, dtype=np.float32)
        detected = self.detect(x)
        labels = self._predict_labels(x)
        ok = (~detected) & (labels == np.asarray(y))
        return float(ok.mean())

    def __repr__(self):
        names = [getattr(m, "name", type(m).__name__) for m in self.members]
        return f"DetectorUnion({self.name!r}, members={names})"
