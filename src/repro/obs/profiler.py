"""Opt-in sampling wall-clock profiler for hot loops.

A background daemon thread snapshots the *target* thread's Python stack
every ``interval_s`` seconds via :func:`sys._current_frames` and
accumulates per-function self/cumulative sample counts.  Because it
samples instead of tracing, overhead on the profiled thread is near
zero and attaching it never changes results — it reads frames, it does
not instrument them.

Intended for the attack/training hot loops::

    with profiled("attack/ead") as prof:
        attack.attack(x0, y0)
    print(prof.report())

:func:`profiled` also emits a ``profile/<name>`` observability event on
exit (top functions by self time) when the sink is enabled, so a
profile taken inside an experiment lands in the same JSONL log as the
spans around it.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.trace import event

#: Frame key: (function qualname-ish, basename:lineno of the def site).
_FrameKey = Tuple[str, str]


def _frame_key(frame) -> _FrameKey:
    code = frame.f_code
    return (code.co_name,
            f"{os.path.basename(code.co_filename)}:{code.co_firstlineno}")


class SamplingProfiler:
    """Wall-clock stack sampler attachable to one thread.

    Args:
        interval_s: seconds between samples (default 5 ms ≈ 200 Hz).
        max_samples: stop sampling past this many snapshots (a bound on
            memory and on a forgotten profiler, not a hard error).
    """

    def __init__(self, interval_s: float = 0.005,
                 max_samples: int = 200_000):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.max_samples = int(max_samples)
        self.samples = 0
        self._self_counts: Dict[_FrameKey, int] = {}
        self._cum_counts: Dict[_FrameKey, int] = {}
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._t0 = 0.0
        self.elapsed_s = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling the *calling* thread from a background thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-profiler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.elapsed_s = time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self.samples >= self.max_samples:
                return
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                return                          # target thread exited
            self.samples += 1
            leaf = _frame_key(frame)
            self._self_counts[leaf] = self._self_counts.get(leaf, 0) + 1
            seen = set()
            while frame is not None:
                key = _frame_key(frame)
                if key not in seen:             # recursion counts once
                    seen.add(key)
                    self._cum_counts[key] = self._cum_counts.get(key, 0) + 1
                frame = frame.f_back

    # ------------------------------------------------------------------
    def top_functions(self, n: int = 10) -> List[Dict[str, Any]]:
        """Hottest functions by self samples (ties broken by cumulative)."""
        ranked = sorted(self._self_counts.items(),
                        key=lambda kv: (-kv[1],
                                        -self._cum_counts.get(kv[0], 0),
                                        kv[0]))
        total = max(self.samples, 1)
        return [
            {
                "function": name,
                "site": site,
                "self": count,
                "self_pct": round(100.0 * count / total, 1),
                "cumulative": self._cum_counts.get((name, site), count),
            }
            for (name, site), count in ranked[:n]
        ]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "samples": self.samples,
            "interval_s": self.interval_s,
            "elapsed_s": round(self.elapsed_s, 6),
            "top": self.top_functions(20),
        }

    def report(self, n: int = 15) -> str:
        """Human-readable top-N table."""
        if not self.samples:
            return "no profile samples collected"
        header = f"{'self%':>6} {'self':>6} {'cum':>6}  function (site)"
        lines = [f"{self.samples} samples at {1.0 / self.interval_s:.0f} Hz "
                 f"over {self.elapsed_s:.2f}s", header, "-" * len(header)]
        for row in self.top_functions(n):
            lines.append(f"{row['self_pct']:>5.1f}% {row['self']:>6d} "
                         f"{row['cumulative']:>6d}  {row['function']} "
                         f"({row['site']})")
        return "\n".join(lines)


@contextlib.contextmanager
def profiled(name: str = "block", interval_s: float = 0.005,
             emit_event: bool = True) -> Iterator[SamplingProfiler]:
    """Profile a block on the current thread; yields the profiler.

    On exit the profiler is stopped and (when the sink is enabled and
    ``emit_event``) a ``profile/<name>`` event carrying the sample count
    and top functions is emitted under the current span.
    """
    prof = SamplingProfiler(interval_s=interval_s)
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
        if emit_event:
            event(f"profile/{name}", duration_s=prof.elapsed_s,
                  samples=prof.samples,
                  top=[f"{r['function']} {r['self_pct']}%"
                       for r in prof.top_functions(5)] or None)
