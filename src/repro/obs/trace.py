"""Hierarchical tracing: spans with parent/child structure across processes.

A *span* is one timed, attributed node of a trace tree::

    with span("sweep/precompute", dataset="digits") as sp:
        sp["cells"] = 6
        with span("runtime/map", jobs=4):
            ...

Each span records a ``trace`` id (shared by every span of one logical
run), its own ``span`` id, and its ``parent`` span id; the current span
is tracked in a :class:`contextvars.ContextVar`, so nesting follows the
code's dynamic extent per thread/task.  Closed spans are emitted as one
JSONL line each through :mod:`repro.obs.sink`; the line carries the span
name under the legacy ``stage`` key, so the flat per-stage aggregation
(``repro-experiments timings``) keeps working on span logs, while
``repro-experiments trace`` reassembles the tree.

Cross-process propagation: :func:`current_trace_context` returns a
picklable :class:`TraceContext` carrier; ship it to a worker process in
the work payload and wrap the work in :func:`attach_trace_context` so
spans opened in the worker nest under the driver's span.  The
:class:`~repro.runtime.executor.ParallelExecutor` does this
automatically for every mapped item.

When no sink is configured every operation here is a cheap no-op: spans
are created but never assigned ids, never emitted, and never touch the
context variable — the instrumentation can stay in hot paths
unconditionally.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import time
from typing import Any, Dict, Iterator, NamedTuple, Optional

from repro.obs.sink import ObsSink, active_sink, base_record


class TraceContext(NamedTuple):
    """Picklable carrier of a span's identity (trace id + span id).

    Ship it into a worker process and wrap the work in
    :func:`attach_trace_context` so the worker's spans become children
    of the originating span.
    """

    trace_id: str
    span_id: str


def _new_id() -> str:
    return os.urandom(8).hex()


#: The innermost open span of the current thread/task (None at top level).
_CURRENT: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


class Span:
    """One node of a trace: name, ids, attributes, wall-clock duration.

    Supports dict-style attribute assignment (``sp["cache"] = "hit"``)
    so call sites can add fields discovered mid-span.  A span created
    while the sink is disabled has no ids and emits nothing, but is
    still safely writable.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_sink", "_ts", "_t0", "_finished")

    def __init__(self, name: str, *, sink: Optional[ObsSink] = None,
                 parent: Optional[TraceContext] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 _emitting: bool = True):
        self.name = name
        self._sink = sink if sink is not None else active_sink()
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self._ts = time.time()
        self._t0 = time.perf_counter()
        self._finished = False
        if _emitting and self._sink.enabled:
            if parent is None:
                current = _CURRENT.get()
                parent = current.context if current is not None else None
            self.trace_id = parent.trace_id if parent else _new_id()
            self.span_id = _new_id()
            self.parent_id = parent.span_id if parent else None
        else:
            self.trace_id = None
            self.span_id = None
            self.parent_id = None

    # -- identity ------------------------------------------------------
    @property
    def context(self) -> Optional[TraceContext]:
        """This span's identity as a picklable carrier (None if disabled)."""
        if self.trace_id is None:
            return None
        return TraceContext(self.trace_id, self.span_id)

    @property
    def recording(self) -> bool:
        return self.span_id is not None

    # -- attributes ----------------------------------------------------
    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def update(self, **fields: Any) -> None:
        self.attrs.update(fields)

    # -- lifecycle -----------------------------------------------------
    def finish(self, **fields: Any) -> None:
        """Close the span and emit its record (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self.attrs.update(fields)
        if not self.recording:
            return
        record = base_record(self.name,
                             duration_s=time.perf_counter() - self._t0,
                             **self.attrs)
        record["ts"] = round(self._ts, 6)
        record["kind"] = "span"
        record["trace"] = self.trace_id
        record["span"] = self.span_id
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        self._sink.emit_line(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")


def start_span(name: str, *, sink: Optional[ObsSink] = None,
               parent: Optional[TraceContext] = None, **attrs: Any) -> Span:
    """Open a span *without* making it current (manual lifecycle).

    For work whose start and finish happen on different threads (e.g. a
    serving request enqueued by a handler thread and resolved by a
    worker thread): keep the returned span and call
    :meth:`Span.finish` when done.
    """
    return Span(name, sink=sink, parent=parent, attrs=attrs)


@contextlib.contextmanager
def span(name: str, *, sink: Optional[ObsSink] = None,
         parent: Optional[TraceContext] = None,
         **attrs: Any) -> Iterator[Span]:
    """Open a span around a block; it becomes the current span within.

    Yields the :class:`Span`; add attributes discovered mid-block with
    ``sp["key"] = value``.  The span is emitted on exit even if the
    block raises.
    """
    sp = Span(name, sink=sink, parent=parent, attrs=attrs)
    token = _CURRENT.set(sp) if sp.recording else None
    try:
        yield sp
    finally:
        if token is not None:
            _CURRENT.reset(token)
        sp.finish()


def current_span() -> Optional[Span]:
    """The innermost open span of this thread/task, or None."""
    return _CURRENT.get()


def current_trace_context() -> Optional[TraceContext]:
    """Picklable identity of the current span (None when no span is open)."""
    sp = _CURRENT.get()
    return sp.context if sp is not None else None


@contextlib.contextmanager
def attach_trace_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Adopt a remote span as the current parent within a block.

    Used on the far side of a process (or thread) boundary: spans opened
    inside the block nest under ``ctx``.  A ``None`` context is a no-op,
    so call sites can pass whatever :func:`current_trace_context`
    returned without checking.
    """
    if ctx is None:
        yield
        return
    carrier = Span("<attached>", _emitting=False)
    carrier.trace_id, carrier.span_id = ctx.trace_id, ctx.span_id
    token = _CURRENT.set(carrier)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def event(name: str, duration_s: Optional[float] = None, *,
          sink: Optional[ObsSink] = None, **fields: Any) -> None:
    """Emit one point event (no children) under the current span.

    The record carries the current trace id and the current span id as
    its ``parent``, so events interleave into the span tree; with no
    open span it is a bare flat event, exactly like the legacy
    ``telemetry().emit``.
    """
    sink = sink if sink is not None else active_sink()
    if not sink.enabled:
        return
    record = base_record(name, duration_s=duration_s, **fields)
    current = _CURRENT.get()
    if current is not None and current.recording:
        record["trace"] = current.trace_id
        record["parent"] = current.span_id
    sink.emit_line(record)


def record_span(name: str, duration_s: float, *,
                sink: Optional[ObsSink] = None, **attrs: Any) -> None:
    """Record an already-measured interval as a child of the current span.

    For stages whose timing is produced elsewhere (e.g. the per-stage
    latencies a batched MagNet pass reports): emits a complete span with
    the given duration, parented under the current span.
    """
    sink = sink if sink is not None else active_sink()
    if not sink.enabled:
        return
    sp = Span(name, sink=sink, attrs=attrs)
    sp._ts = time.time() - duration_s
    sp._t0 = time.perf_counter() - duration_s
    sp.finish()
