"""Unified observability: hierarchical tracing, metrics, profiling hooks.

The experiment pipeline spans three layers — attack kernels, the
fault-tolerant parallel runtime, and the online serving frontend — and
``repro.obs`` is the one instrumentation surface all of them share:

* **Tracing** — :func:`span` context managers record trace/span/parent
  ids and wall-clock durations into an append-only JSONL log shared by
  driver and worker processes; :func:`current_trace_context` /
  :func:`attach_trace_context` carry the hierarchy across process
  boundaries (the :class:`~repro.runtime.executor.ParallelExecutor`
  does this automatically), so a sweep-cell span crafted in a worker
  nests under the driver's sweep span.  ``repro-experiments trace``
  renders the reassembled tree with self/total times.
* **Metrics** — a process-local registry of counters, gauges and
  histograms (``attack/iterations``, ``cache/hits``,
  ``serve/queue_depth``, ...) with lock-striped updates, a
  :func:`metrics_snapshot` API and a Prometheus text rendering served
  at ``/metrics`` by the HTTP frontend.
* **Profiling** — an opt-in :class:`SamplingProfiler` (wall-clock stack
  sampling) attachable around attack/training hot loops via
  :func:`profiled`.

Everything is disabled-by-default and near-free when disabled: enable
it with :func:`configure_observability` (or ``--telemetry`` on the
CLI).  The legacy string-keyed API in :mod:`repro.runtime.telemetry`
(``telemetry().emit(...)``) is a deprecated shim over this package.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_registry,
    metrics_snapshot,
)
from repro.obs.profiler import SamplingProfiler, profiled
from repro.obs.report import (
    FAULT_STAGES,
    EventLog,
    SpanNode,
    StageStats,
    aggregate_events,
    build_span_tree,
    load_events,
    render_fault_summary,
    render_store_summary,
    render_timings,
    render_trace,
    span_events,
    tree_signature,
)
from repro.obs.sink import (
    TELEMETRY_ENV,
    ObsSink,
    active_sink,
    configure_observability,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    attach_trace_context,
    current_span,
    current_trace_context,
    event,
    record_span,
    span,
    start_span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "EventLog",
    "FAULT_STAGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSink",
    "SamplingProfiler",
    "Span",
    "SpanNode",
    "StageStats",
    "TELEMETRY_ENV",
    "TraceContext",
    "active_sink",
    "aggregate_events",
    "attach_trace_context",
    "build_span_tree",
    "configure_observability",
    "counter",
    "current_span",
    "current_trace_context",
    "event",
    "gauge",
    "histogram",
    "load_events",
    "metrics_registry",
    "metrics_snapshot",
    "profiled",
    "record_span",
    "render_fault_summary",
    "render_store_summary",
    "render_timings",
    "render_trace",
    "span",
    "span_events",
    "start_span",
    "tree_signature",
]
