"""Process-local metrics: counters, gauges and histograms with a registry.

Metric updates sit on hot paths (per cache access, per serving request,
per attack binary-search step), so they must be cheap and thread-safe:
the registry stripes metrics across a small fixed pool of locks keyed
by metric name, so unrelated metrics never contend and one update costs
a dict lookup plus one uncontended lock round-trip.

Naming convention: ``subsystem/measure`` with ``/`` separators, e.g.
``attack/iterations``, ``cache/hits``, ``serve/queue_depth``.  The
Prometheus text rendering (:meth:`MetricsRegistry.render_prometheus`,
served at ``/metrics`` by the HTTP frontend) maps ``/`` to ``_``.

Metrics are process-local by design: worker processes fold their hot
counts into span attributes (which travel through the shared JSONL
sink) rather than trying to share memory across processes.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

#: Bucket upper bounds used when a histogram does not pass its own —
#: a log-ish spread wide enough for latencies in seconds and batch sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

_N_STRIPES = 16


class Counter:
    """Monotonically increasing count (events, items, bytes)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that goes up and down (queue depth, open workers)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Bucketed distribution with count/sum/min/max.

    Buckets are upper bounds (``value <= bound``); observations beyond
    the last bound land in the overflow bucket (``+Inf``).
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, lock: threading.Lock,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        self._lock = lock
        self._counts = [0] * (len(bounds) + 1)      # last = overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        labels = [f"le_{b:g}" for b in self.buckets] + ["le_inf"]
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "buckets": dict(zip(labels, counts)),
        }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    prom = "".join(out)
    return prom if not prom[:1].isdigit() else "_" + prom


class MetricsRegistry:
    """Get-or-create home of every metric, with lock-striped updates.

    Metric objects are created once and cached forever, so hot paths can
    hoist ``registry.counter("x")`` out of loops or just call it per
    update (one dict lookup).  :meth:`reset` zeroes values *in place* —
    existing metric handles stay valid — which is what tests and
    benchmark harnesses need between rounds.
    """

    def __init__(self, stripes: int = _N_STRIPES):
        self._stripes = [threading.Lock() for _ in range(max(1, stripes))]
        self._registry_lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _lock_for(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    def _get_or_create(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._registry_lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name, self._lock_for(name), **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(name, Histogram, buckets=buckets)

    def names(self) -> Iterable[str]:
        with self._registry_lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """One coherent-enough view of every metric, grouped by type."""
        with self._registry_lock:
            metrics = dict(self._metrics)
        snap: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                snap["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                snap["gauges"][name] = metric.value
            else:
                snap["histograms"][name] = metric.snapshot()
        return snap

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        with self._registry_lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()

    def render_prometheus(self,
                          extra_gauges: Optional[Dict[str, float]] = None
                          ) -> str:
        """Prometheus text exposition of the registry (+ ad-hoc gauges).

        ``extra_gauges`` lets a caller fold in numbers owned elsewhere
        (the serving layer's latency percentiles) without registering
        them as live metrics.
        """
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            prom = _prom_name(name) + "_total"
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {value}")
        for name, value in snap["gauges"].items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value:g}")
        for name, hist in snap["histograms"].items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for label, count in hist["buckets"].items():
                cumulative += count
                bound = label[3:].replace("inf", "+Inf")
                lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{prom}_sum {hist['sum']:g}")
            lines.append(f"{prom}_count {hist['count']}")
        for name, value in sorted((extra_gauges or {}).items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {float(value):g}")
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry (one per process; workers have their own)."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Shorthand for ``metrics_registry().counter(name)``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``metrics_registry().gauge(name)``."""
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    """Shorthand for ``metrics_registry().histogram(name)``."""
    return _REGISTRY.histogram(name, buckets=buckets)


def metrics_snapshot() -> Dict[str, Any]:
    """Shorthand for ``metrics_registry().snapshot()``."""
    return _REGISTRY.snapshot()
