"""Reading and rendering observability logs: timings, fault summary, traces.

Two views over the same JSONL file:

* the flat per-stage aggregation (:func:`aggregate_events` /
  :func:`render_timings`) — every record has a ``stage`` name and an
  optional duration, whether it came from the legacy ``emit`` API or
  from a closed span;
* the hierarchical trace (:func:`build_span_tree` / :func:`render_trace`)
  — records carrying ``span`` ids are reassembled into parent/child
  trees spanning driver and worker processes.

:func:`load_events` is deliberately forgiving: a run killed mid-write
leaves a truncated final line (or, worse, a line torn inside a UTF-8
sequence), and older logs may hold any event shape.  Corrupt lines are
skipped and *counted* — the count rides on the returned list
(:class:`EventLog`), surfaces as a synthetic ``telemetry/skipped_lines``
row in :func:`aggregate_events`, and is called out by
:func:`render_timings`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Synthetic stage name under which skipped-line counts are reported.
SKIPPED_STAGE = "telemetry/skipped_lines"

#: Stages the executor's fault-tolerance layer emits; summarized
#: separately by :func:`render_fault_summary`.
FAULT_STAGES = ("runtime/retry", "runtime/timeout", "runtime/giveup",
                "sweep/cell_failed")


class EventLog(List[Dict[str, Any]]):
    """A list of parsed events plus the count of corrupt lines skipped."""

    skipped: int = 0


def load_events(path: Union[str, os.PathLike]) -> EventLog:
    """Parse an observability JSONL file, skipping unparseable lines.

    Tolerates the debris of crashed runs: a truncated or torn final
    line (including one cut inside a multi-byte UTF-8 sequence) is
    skipped, never raised on.  The number of skipped lines is available
    as ``.skipped`` on the returned :class:`EventLog`.
    """
    events = EventLog()
    path = Path(path)
    if not path.exists():
        return events
    try:
        raw = path.read_bytes()
    except OSError as exc:
        log.warning("could not read telemetry log %s: %s", path, exc)
        return events
    for line_bytes in raw.split(b"\n"):
        if not line_bytes.strip():
            continue
        try:
            event = json.loads(line_bytes.decode("utf-8").strip())
        except (json.JSONDecodeError, UnicodeDecodeError):
            events.skipped += 1
            log.warning("skipping malformed telemetry line: %.60s",
                        line_bytes.decode("utf-8", errors="replace"))
            continue
        if isinstance(event, dict) and "stage" in event:
            events.append(event)
    return events


# ----------------------------------------------------------------------
# Flat per-stage aggregation (the `timings` report)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class StageStats:
    """Aggregate of all events sharing one stage name."""

    stage: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def aggregate_events(events: Iterable[Dict[str, Any]]
                     ) -> Dict[str, StageStats]:
    """Fold events into per-stage statistics, keyed by stage name.

    When ``events`` is an :class:`EventLog` with corrupt lines skipped,
    the skip count is reported as a synthetic
    :data:`SKIPPED_STAGE` entry (count = lines skipped, zero time).
    """
    skipped = int(getattr(events, "skipped", 0) or 0)
    stats: Dict[str, StageStats] = {}
    worker_sets: Dict[str, set] = {}
    for event in events:
        name = str(event.get("stage"))
        entry = stats.setdefault(name, StageStats(stage=name))
        entry.count += 1
        duration = float(event.get("duration_s") or 0.0)
        entry.total_s += duration
        entry.max_s = max(entry.max_s, duration)
        cache = event.get("cache")
        if cache == "hit":
            entry.cache_hits += 1
        elif cache == "miss":
            entry.cache_misses += 1
        worker_sets.setdefault(name, set()).add(event.get("worker"))
    for name, entry in stats.items():
        entry.workers = len(worker_sets[name] - {None})
    if skipped:
        stats[SKIPPED_STAGE] = StageStats(stage=SKIPPED_STAGE, count=skipped)
    return stats


def render_fault_summary(events: Iterable[Dict[str, Any]]) -> Optional[str]:
    """One-line retry/timeout/giveup summary, or None if the run was clean."""
    counts = {stage: 0 for stage in FAULT_STAGES}
    for event in events:
        stage = event.get("stage")
        if stage in counts:
            counts[stage] += 1
    if not any(counts.values()):
        return None
    return ("fault events: "
            f"retries={counts['runtime/retry']} "
            f"timeouts={counts['runtime/timeout']} "
            f"giveups={counts['runtime/giveup']} "
            f"failed cells={counts['sweep/cell_failed']}")


def render_store_summary(events: Iterable[Dict[str, Any]]) -> Optional[str]:
    """One-line artifact-store eviction summary, or None if none ran.

    Folds the ``store/evict`` events emitted by
    :meth:`~repro.runtime.store.ShardedStore.evict` (entry and byte
    counts) and flags any ``store/over_cap`` events — a cap that could
    not be met without dropping pinned checkpoints.
    """
    passes = evicted = reclaimed = over_cap = 0
    for e in events:
        stage = e.get("stage")
        if stage == "store/evict":
            passes += 1
            evicted += int(e.get("evicted") or 0)
            reclaimed += int(e.get("bytes_reclaimed") or 0)
        elif stage == "store/over_cap":
            over_cap += 1
    if not passes and not over_cap:
        return None
    line = (f"store evictions: {evicted} entries in {passes} pass(es), "
            f"{reclaimed / 1e6:.2f} MB reclaimed")
    if over_cap:
        line += f"; {over_cap} over-cap pass(es) held back by pinned entries"
    return line


def render_timings(events: Iterable[Dict[str, Any]]) -> str:
    """Per-stage wall-clock table (sorted by total time, descending).

    Retry/timeout/giveup events from the fault-tolerance layer appear as
    ordinary stage rows and are additionally folded into a one-line
    summary appended below the table, as is the count of corrupt lines
    skipped by :func:`load_events`.
    """
    events = list(events) if not isinstance(events, EventLog) else events
    stats = sorted(aggregate_events(events).values(),
                   key=lambda s: s.total_s, reverse=True)
    if not stats:
        return "no telemetry events recorded"
    header = (f"{'stage':<28} {'calls':>6} {'total s':>9} {'mean s':>8} "
              f"{'max s':>8} {'hit':>5} {'miss':>5} {'wrk':>4}")
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.stage:<28} {s.count:>6d} {s.total_s:>9.3f} {s.mean_s:>8.3f} "
            f"{s.max_s:>8.3f} {s.cache_hits:>5d} {s.cache_misses:>5d} "
            f"{s.workers:>4d}")
    total = sum(s.total_s for s in stats)
    lines.append("-" * len(header))
    lines.append(f"{'total stage time':<28} {'':>6} {total:>9.3f}")
    faults = render_fault_summary(events)
    if faults:
        lines.append(faults)
    store = render_store_summary(events)
    if store:
        lines.append(store)
    skipped = int(getattr(events, "skipped", 0) or 0)
    if skipped:
        lines.append(f"{skipped} corrupt line(s) skipped "
                     "(crash mid-write?)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Hierarchical traces (the `trace` report)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpanNode:
    """One reassembled span (or point event) in a trace tree."""

    name: str
    span_id: Optional[str]
    parent_id: Optional[str]
    trace_id: Optional[str]
    duration_s: float = 0.0
    ts: float = 0.0
    worker: Optional[int] = None
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    children: List["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Duration not covered by direct children (clamped at zero).

        Children that ran concurrently in worker processes can overlap
        (and out-sum) the parent, hence the clamp.
        """
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))


_META_KEYS = {"ts", "stage", "worker", "duration_s", "kind", "trace",
              "span", "parent"}


def span_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The subset of events that participate in a trace (have trace ids)."""
    return [e for e in events if e.get("trace") or e.get("span")]


def build_span_tree(events: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Reassemble span records into trees; returns root nodes.

    Point events (a ``parent`` but no ``span`` id of their own) become
    leaf nodes.  Spans whose parent never closed (crashed driver) are
    promoted to roots rather than dropped.  Roots are ordered by start
    timestamp; children likewise.
    """
    nodes: Dict[str, SpanNode] = {}
    leaves: List[SpanNode] = []
    for e in events:
        if not (e.get("trace") or e.get("span")):
            continue
        node = SpanNode(
            name=str(e.get("stage")),
            span_id=e.get("span"),
            parent_id=e.get("parent"),
            trace_id=e.get("trace"),
            duration_s=float(e.get("duration_s") or 0.0),
            ts=float(e.get("ts") or 0.0),
            worker=e.get("worker"),
            attrs={k: v for k, v in e.items() if k not in _META_KEYS},
        )
        if node.span_id:
            nodes[node.span_id] = node
        else:
            leaves.append(node)
    roots: List[SpanNode] = []
    for node in list(nodes.values()) + leaves:
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)

    def _sort(children: List[SpanNode]) -> None:
        children.sort(key=lambda n: (n.ts, n.name))
        for child in children:
            _sort(child.children)

    _sort(roots)
    return roots


def tree_signature(roots: List[SpanNode]) -> Tuple:
    """Order-normalized structural signature of a span forest.

    Ignores ids, timestamps, durations and workers — two runs of the
    same work (e.g. ``jobs=1`` vs ``jobs=4``) produce the same
    signature even though scheduling reordered the spans.
    """
    def _sig(node: SpanNode) -> Tuple:
        return (node.name, tuple(sorted(_sig(c) for c in node.children)))

    return tuple(sorted(_sig(r) for r in roots))


def _format_node(node: SpanNode, count: int, total_s: float,
                 self_s: float) -> str:
    label = node.name
    if count > 1:
        label += f" ×{count}"
    parts = [f"total={total_s:.3f}s"]
    if count == 1:
        parts.append(f"self={self_s:.3f}s")
        interesting = {k: v for k, v in node.attrs.items()
                       if k in ("cache", "batch", "items", "jobs", "cells",
                                "kappa", "beta", "step", "dataset",
                                "detected", "successes", "iterations")}
        if node.worker is not None:
            parts.append(f"pid={node.worker}")
        parts.extend(f"{k}={v}" for k, v in sorted(interesting.items()))
    else:
        parts.append(f"self={self_s:.3f}s")
        parts.append(f"mean={total_s / count:.3f}s")
    return f"{label}  [{', '.join(parts)}]"


def _render_group(nodes: List[SpanNode], prefix: str, collapse: bool,
                  max_depth: Optional[int], depth: int,
                  lines: List[str]) -> None:
    if max_depth is not None and depth >= max_depth:
        return
    if collapse:
        groups: Dict[str, List[SpanNode]] = {}
        for node in nodes:
            groups.setdefault(node.name, []).append(node)
        entries = [(group[0],                       # representative
                    len(group),
                    sum(n.duration_s for n in group),
                    sum(n.self_s for n in group),
                    [c for n in group for c in n.children])
                   for group in groups.values()]
    else:
        entries = [(node, 1, node.duration_s, node.self_s, node.children)
                   for node in nodes]
    for i, (node, count, total_s, self_s, children) in enumerate(entries):
        last = i == len(entries) - 1
        branch = "└─ " if last else "├─ "
        lines.append(prefix + branch
                     + _format_node(node, count, total_s, self_s))
        child_prefix = prefix + ("   " if last else "│  ")
        _render_group(children, child_prefix, collapse, max_depth,
                      depth + 1, lines)


def render_trace(events: Iterable[Dict[str, Any]], *, collapse: bool = True,
                 max_depth: Optional[int] = None) -> str:
    """ASCII span-tree report with per-node total/self times.

    With ``collapse=True`` (the default), sibling spans sharing a name —
    e.g. the dozens of ``sweep/cell`` spans under one sweep — fold into
    one ``name ×N`` line whose children are aggregated recursively;
    ``collapse=False`` renders every span.
    """
    roots = build_span_tree(events)
    if not roots:
        return ("no trace spans recorded "
                "(run with observability enabled first)")
    traces: Dict[str, List[SpanNode]] = {}
    for root in roots:
        traces.setdefault(root.trace_id or "?", []).append(root)
    lines: List[str] = []
    for trace_id, trace_roots in traces.items():
        n_spans = _count(trace_roots)
        lines.append(f"trace {trace_id}  ({n_spans} spans)")
        _render_group(trace_roots, "", collapse, max_depth, 0, lines)
    return "\n".join(lines)


def _count(nodes: List[SpanNode]) -> int:
    return sum(1 + _count(n.children) for n in nodes)
