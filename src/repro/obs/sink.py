"""The JSONL event sink shared by tracing, metrics and legacy telemetry.

One process-wide sink owns the append-only event file.  Every
observability record — a closed span, a point event, a metrics snapshot
— is a single ``write()`` of one JSON line on a file opened in append
mode, which POSIX keeps atomic for short lines, so concurrent worker
processes can share the same file without interleaving partial lines.

The sink is *opt-in*: it writes only when a path is configured, via
:func:`configure_observability` or the ``REPRO_TELEMETRY`` environment
variable.  The environment variable doubles as the hand-off mechanism to
:mod:`repro.runtime.executor` worker processes — children inherit it and
append to the same file.  (The variable keeps its historical name so
logs written by older runs and newer runs land in the same place.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.utils.logging import get_logger

log = get_logger(__name__)

#: Environment variable naming the JSONL sink (inherited by workers).
TELEMETRY_ENV = "REPRO_TELEMETRY"


class ObsSink:
    """Append-only JSONL writer; disabled when ``path`` is None."""

    __slots__ = ("path",)

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self.path = Path(path) if path else None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def emit_line(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line; no-op when disabled.

        Observability must never take a run down: write failures are
        logged and swallowed.
        """
        if self.path is None:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, default=str) + "\n")
        except OSError as exc:
            log.warning("observability write to %s failed: %s",
                        self.path, exc)


def base_record(name: str, duration_s: Optional[float] = None,
                **fields: Any) -> Dict[str, Any]:
    """The common record shape: timestamp, stage name, worker pid.

    ``stage`` is kept as the name key so span records remain readable by
    the legacy per-stage aggregation (``load_events``/``render_timings``).
    ``None``-valued fields are dropped.
    """
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "stage": name,
        "worker": os.getpid(),
    }
    if duration_s is not None:
        record["duration_s"] = round(float(duration_s), 6)
    record.update({k: v for k, v in fields.items() if v is not None})
    return record


_ACTIVE: Optional[ObsSink] = None


def configure_observability(path: Optional[Union[str, os.PathLike]]
                            ) -> ObsSink:
    """Point the process-wide sink at ``path`` (None disables it).

    Also exports ``REPRO_TELEMETRY`` so executor worker processes append
    to the same log.
    """
    global _ACTIVE
    if path is None:
        os.environ.pop(TELEMETRY_ENV, None)
        _ACTIVE = ObsSink(None)
    else:
        os.environ[TELEMETRY_ENV] = str(path)
        _ACTIVE = ObsSink(path)
    return _ACTIVE


def active_sink() -> ObsSink:
    """The process-wide sink, tracking ``REPRO_TELEMETRY`` changes."""
    global _ACTIVE
    env = os.environ.get(TELEMETRY_ENV) or None
    active_path = str(_ACTIVE.path) if _ACTIVE is not None and _ACTIVE.path else None
    if _ACTIVE is None or env != active_path:
        _ACTIVE = ObsSink(env)
    return _ACTIVE
