#!/usr/bin/env python
"""Scenario: measure attack transferability across architectures.

The paper's threat model works because adversarial examples *transfer*:
crafted on one model, they fool another.  This example trains two
different digit classifiers (the compact CNN and an MLP), crafts FGSM
and EAD examples on each, and prints the craft-on-A / evaluate-on-B
transfer matrix — the classic experiment behind oblivious attacks.

Run:  python examples/transferability.py
"""

import numpy as np

from repro.attacks import EAD, FGSM, logits_of
from repro.datasets import load_digit_splits
from repro.evaluation import format_table, transfer_matrix
from repro.models import ClassifierSpec, ModelZoo
from repro.nn import Dense, Flatten, ReLU, Sequential, Trainer, accuracy
from repro.utils.rng import rng_from_seed


def train_mlp(splits, seed=11):
    rng = rng_from_seed(seed)
    model = Sequential(
        Flatten(),
        Dense(28 * 28, 128, rng=rng, weight_init="he_uniform"), ReLU(),
        Dense(128, 10, rng=rng),
    )
    Trainer(model, lr=1e-3, seed=seed).fit(
        splits.train.x, splits.train.y, epochs=5, batch_size=64,
        verbose=False)
    return model


def main():
    splits = load_digit_splits(n_train=1200, n_val=300, n_test=500, seed=2)
    zoo = ModelZoo(splits)
    models = {
        "cnn": zoo.classifier(ClassifierSpec(dataset="digits", epochs=5)),
        "mlp": train_mlp(splits),
    }
    for name, model in models.items():
        print(f"{name}: clean accuracy "
              f"{accuracy(model, splits.test.x, splits.test.y):.3f}")

    # Seeds every model classifies correctly.
    ok = np.ones(len(splits.test), dtype=bool)
    for model in models.values():
        ok &= logits_of(model, splits.test.x).argmax(1) == splits.test.y
    idx = np.flatnonzero(ok)[:24]
    x0, y0 = splits.test.x[idx], splits.test.y[idx]

    for attack_name, factory in (
        ("FGSM eps=0.2", lambda m: FGSM(m, epsilon=0.2)),
        ("EAD beta=0.1", lambda m: EAD(m, beta=1e-1, kappa=5.0,
                                       binary_search_steps=3,
                                       max_iterations=80,
                                       initial_const=1.0)),
    ):
        matrix = transfer_matrix(factory, models, x0, y0)
        rows = [[src] + [100 * matrix[src][tgt] for tgt in models]
                for src in models]
        print()
        print(format_table(["craft on \\ eval on"] + list(models), rows,
                           title=f"Transfer matrix — {attack_name} "
                                 "(% of source-successful examples that "
                                 "also fool the target)"))


if __name__ == "__main__":
    main()
