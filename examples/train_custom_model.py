#!/usr/bin/env python
"""Scenario: bring your own model to the attack/defense harness.

The library's attacks and defenses work with any ``repro.nn`` module that
maps NCHW images to logits — not just the built-in zoo.  This example
builds a custom MLP classifier for the digits task, trains it with the
generic Trainer, wraps it in a fresh MagNet (with its own autoencoders),
and runs the full oblivious evaluation protocol against it.

Demonstrates the extension points a downstream user needs:

* custom architecture definition with ``repro.nn`` layers;
* the training loop (``Trainer``) on a custom model;
* assembling a MagNet by hand from detectors + reformer (instead of the
  ``build_magnet`` factory);
* running a single attack → defense evaluation with the protocol helpers.

Run:  python examples/train_custom_model.py
"""

import numpy as np

from repro.attacks import EAD
from repro.datasets import load_digit_splits
from repro.defenses import MagNet, ReconstructionDetector, Reformer
from repro.evaluation import evaluate_oblivious, select_attack_seeds
from repro.models import AutoencoderSpec, ModelZoo
from repro.nn import Dense, Flatten, ReLU, Sequential, Trainer, accuracy
from repro.utils.rng import rng_from_seed


def build_mlp(seed: int = 0) -> Sequential:
    """A 2-hidden-layer MLP over flattened 28x28 digits."""
    rng = rng_from_seed(seed)
    return Sequential(
        Flatten(),
        Dense(28 * 28, 256, rng=rng, weight_init="he_uniform"), ReLU(),
        Dense(256, 128, rng=rng, weight_init="he_uniform"), ReLU(),
        Dense(128, 10, rng=rng),
    )


def main():
    splits = load_digit_splits(n_train=1500, n_val=400, n_test=600, seed=3)

    print("=== training a custom MLP classifier ===")
    model = build_mlp(seed=1)
    trainer = Trainer(model, loss="cross_entropy", lr=1e-3, seed=1)
    trainer.fit(splits.train.x, splits.train.y, epochs=6, batch_size=64,
                x_val=splits.val.x, y_val=splits.val.y, verbose=True)
    print(f"test accuracy: {accuracy(model, splits.test.x, splits.test.y):.3f}")

    print("\n=== assembling MagNet by hand around the custom model ===")
    zoo = ModelZoo(splits)
    ae_deep = zoo.autoencoder(AutoencoderSpec(dataset="digits", kind="deep"))
    ae_shallow = zoo.autoencoder(AutoencoderSpec(dataset="digits",
                                                 kind="shallow"))
    magnet = MagNet(
        classifier=model,
        detectors=[ReconstructionDetector(ae_deep, norm=1),
                   ReconstructionDetector(ae_shallow, norm=2)],
        reformer=Reformer(ae_deep),
        name="custom-mlp/default",
    )
    magnet.calibrate(splits.val.x, fpr_total=0.002)
    print(magnet)

    print("\n=== oblivious EAD attack on the custom model ===")
    x0, y0 = select_attack_seeds(model, splits.test, n=24, seed=5)
    attack = EAD(model, beta=1e-1, kappa=5.0, binary_search_steps=5,
                 max_iterations=150, initial_const=1.0)
    result = attack.attack(x0, y0)
    evaluation = evaluate_oblivious(magnet, result)
    print(evaluation.summary())
    bd = evaluation.breakdown
    print(f"scheme breakdown: no defense {100 * bd.no_defense:.0f}% | "
          f"detector {100 * bd.detector_only:.0f}% | "
          f"reformer {100 * bd.reformer_only:.0f}% | "
          f"both {100 * bd.full:.0f}%")


if __name__ == "__main__":
    main()
