#!/usr/bin/env python
"""Quickstart: train a classifier, build MagNet, attack it with EAD.

Walks through the paper's whole pipeline at toy scale in a few minutes:

1. generate the SyntheticDigits dataset (the offline MNIST stand-in);
2. train the undefended CNN classifier;
3. build and calibrate the default MagNet (two reconstruction-error
   detectors + reformer);
4. craft C&W-L2 and EAD adversarial examples *against the undefended
   classifier* (the oblivious threat model);
5. report defense accuracy — reproducing the paper's headline: the
   L1-based EAD attack bypasses MagNet far more often than C&W.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import EAD, CarliniWagnerL2, logits_of
from repro.datasets import load_digit_splits
from repro.defenses import build_magnet
from repro.models import ClassifierSpec, ModelZoo
from repro.models.classifiers import ScaledLogits
from repro.nn import accuracy


def main():
    print("=== 1. data ===")
    splits = load_digit_splits(n_train=1500, n_val=400, n_test=600, seed=0)
    print(splits.summary())

    print("\n=== 2. undefended classifier ===")
    zoo = ModelZoo(splits)
    base = zoo.classifier(ClassifierSpec(dataset="digits", epochs=5))
    print(f"clean test accuracy: "
          f"{accuracy(base, splits.test.x, splits.test.y):.3f}")
    # Calibrate the logit scale to the paper's kappa range (DESIGN.md §2).
    classifier = ScaledLogits(base, 12.0)

    print("\n=== 3. MagNet (default: L1+L2 reconstruction detectors + reformer) ===")
    magnet = build_magnet(zoo, "digits", "default", classifier=classifier,
                          fpr_total=0.002)
    print(magnet)
    print(f"clean accuracy behind MagNet: "
          f"{magnet.clean_accuracy(splits.test.x, splits.test.y):.3f}")

    print("\n=== 4. oblivious attacks on the undefended classifier ===")
    preds = logits_of(classifier, splits.test.x).argmax(1)
    seeds = np.flatnonzero(preds == splits.test.y)[:32]
    x0, y0 = splits.test.x[seeds], splits.test.y[seeds]
    kappa = 20.0

    cw = CarliniWagnerL2(classifier, kappa=kappa, binary_search_steps=5,
                         max_iterations=200, initial_const=1.0, lr=5e-2)
    r_cw = cw.attack(x0, y0)
    print(f"C&W-L2  (kappa={kappa:g}): {100 * r_cw.success_rate:.0f}% fool the "
          f"bare classifier, mean L2 {r_cw.mean_distortion('l2'):.2f}")

    ead = EAD(classifier, beta=1e-1, kappa=kappa, binary_search_steps=5,
              max_iterations=200, initial_const=1.0)
    r_ead = ead.attack_both(x0, y0)
    print(f"EAD     (kappa={kappa:g}): {100 * r_ead['en'].success_rate:.0f}% "
          f"fool the bare classifier, mean L1 "
          f"{r_ead['en'].mean_distortion('l1'):.2f}")

    print("\n=== 5. the paper's headline: defense accuracy ===")
    for name, result in (("C&W-L2 ", r_cw), ("EAD-EN ", r_ead["en"]),
                         ("EAD-L1 ", r_ead["l1"])):
        acc = magnet.defense_accuracy(result.x_adv, y0)
        print(f"MagNet vs {name}: defense accuracy {100 * acc:5.1f}%  "
              f"(ASR {100 * (1 - acc):5.1f}%)")
    print("\nEAD (L1-based) should bypass MagNet far more often than "
          "C&W (L2-based) — the paper's core claim.")


if __name__ == "__main__":
    main()
