#!/usr/bin/env python
"""Scenario: the full threat-model spectrum against one defended model.

The paper's oblivious setting sits between two extremes:

* **black-box** — the attacker only queries prediction scores
  (ZOO, the paper's ref. [7]);
* **oblivious** — white-box access to the *undefended* classifier, no
  knowledge of the defense (the paper's setting: C&W, EAD);
* **gray-box** — the attacker knows an autoencoder guards the model and
  differentiates through it (the paper's ref. [20]).

This example crafts one small batch under each threat model and scores
all of them against the same calibrated MagNet, showing how attack
power scales with attacker knowledge — and that EAD needs the least.

Run:  python examples/black_box_attack.py
"""

import numpy as np

from repro.attacks import (
    EAD,
    CarliniWagnerL2,
    RandomNoise,
    ZOO,
    graybox_model,
    logits_of,
)
from repro.datasets import load_digit_splits
from repro.defenses import build_magnet
from repro.evaluation import format_table
from repro.models import ClassifierSpec, ModelZoo
from repro.models.classifiers import ScaledLogits


def main():
    splits = load_digit_splits(n_train=1500, n_val=400, n_test=600, seed=0)
    zoo_models = ModelZoo(splits)
    base = zoo_models.classifier(ClassifierSpec(dataset="digits", epochs=5))
    classifier = ScaledLogits(base, 5.0)
    magnet = build_magnet(zoo_models, "digits", "default",
                          classifier=classifier, fpr_total=0.002)

    preds = logits_of(classifier, splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == splits.test.y)[:12]
    x0, y0 = splits.test.x[idx], splits.test.y[idx]
    kappa = 10.0

    print("crafting under four threat models (this takes a few minutes)...")
    attacks = {
        "noise floor (no access)": RandomNoise(classifier, epsilon=0.3,
                                               tries=8),
        "black-box (ZOO)": ZOO(classifier, kappa=0.0, const=10.0,
                               max_iterations=200, coords_per_step=48,
                               lr=0.1),
        "oblivious (C&W L2)": CarliniWagnerL2(
            classifier, kappa=kappa, binary_search_steps=4,
            max_iterations=150, initial_const=1.0, lr=5e-2),
        "oblivious (EAD beta=0.1)": EAD(
            classifier, beta=1e-1, kappa=kappa, binary_search_steps=4,
            max_iterations=150, initial_const=1.0, lr=2e-2),
        "gray-box (C&W through reformer)": CarliniWagnerL2(
            graybox_model(magnet, mode="reformed"), kappa=0.0,
            binary_search_steps=3, max_iterations=100, initial_const=1.0,
            lr=5e-2),
    }

    rows = []
    for name, attack in attacks.items():
        result = attack.attack(x0, y0)
        asr = magnet.attack_success_rate(result.x_adv, y0)
        rows.append([name, 100 * result.success_rate,
                     result.mean_distortion("l1"), 100 * asr])
    print()
    print(format_table(
        ["threat model", "fools bare model %", "L1", "ASR vs MagNet %"],
        rows,
        title="Attack power vs attacker knowledge (digits, default MagNet)"))
    print("\nThe paper's point: EAD already bypasses MagNet at the weak "
          "oblivious level,\nwithout the gray-box knowledge C&W needs.")


if __name__ == "__main__":
    main()
