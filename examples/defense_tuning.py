#!/usr/bin/env python
"""Scenario: a defender hardens MagNet — and EAD still wins.

Reproduces the paper's "robust MagNet" exploration on the digits task:
starting from the default configuration, the defender adds JSD detectors
(T = 10, 40), widens the autoencoders, then does both.  Each step is
evaluated against the same oblivious C&W and EAD example batches.

The expected outcome (paper §III-B2): every hardening step improves the
defense against C&W, but EAD retains a high attack success rate —
MagNet's robustness does not extend to L1-based adversarial examples.

Run:  python examples/defense_tuning.py
"""

from repro.defenses import VARIANT_LABELS
from repro.evaluation import format_table
from repro.experiments import get_context


def main():
    ctx = get_context("digits")
    kappa = ctx.profile.kappas("digits")[2]  # a medium confidence level
    print(f"digits, kappa={kappa:g}, profile={ctx.profile.name!r}\n")

    _, y0 = ctx.attack_seeds()
    cw = ctx.cw(kappa)
    ead = ctx.ead(1e-1, kappa)

    rows = []
    for variant in ("default", "jsd", "wide", "wide_jsd"):
        magnet = ctx.magnet(variant)
        rows.append([
            VARIANT_LABELS[variant],
            100 * magnet.attack_success_rate(cw.x_adv, y0),
            100 * magnet.attack_success_rate(ead["en"].x_adv, y0),
            100 * magnet.attack_success_rate(ead["l1"].x_adv, y0),
            100 * magnet.clean_accuracy(ctx.splits.test.x, ctx.splits.test.y),
        ])

    print(format_table(
        ["MagNet variant", "C&W ASR %", "EAD-EN ASR %", "EAD-L1 ASR %",
         "clean acc %"],
        rows,
        title="Hardening MagNet helps against C&W but not against EAD"))
    print("\nEach row is the same attack batch — only the defense changed.")


if __name__ == "__main__":
    main()
