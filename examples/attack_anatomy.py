#!/usr/bin/env python
"""Scenario: dissect why L1 attacks slip past MagNet.

For one batch of digits, crafts C&W-L2 and EAD examples at the same
confidence and compares, per attack:

* the perturbation geometry (L0 / L1 / L2 / Linf) — EAD's ISTA step
  (paper eq. (4)-(5)) nulls insignificant pixels, so its perturbations
  are far sparser;
* the detector scores against the calibrated thresholds — sparse,
  near-manifold edits raise reconstruction error far less per unit of
  attack confidence;
* what the reformer does — the autoencoder largely *preserves* EAD's
  localized edits (they look like plausible stroke changes), so the
  classifier stays fooled after reforming.

Also renders one example as ASCII art so the perturbation structure is
visible in the terminal.

Run:  python examples/attack_anatomy.py
"""

import numpy as np

from repro.evaluation import format_table
from repro.experiments import get_context
from repro.nn import Tensor, no_grad

ASCII = " .:-=+*#%@"


def ascii_img(img):
    gray = img.mean(axis=0)
    return ["".join(ASCII[min(int(v * 9.99), 9)] for v in row) for row in gray]


def side_by_side(images, labels):
    blocks = [ascii_img(im) for im in images]
    head = "   ".join(f"{lab:<28}" for lab in labels)
    lines = [head]
    for i in range(len(blocks[0])):
        lines.append("   ".join(b[i] for b in blocks))
    return "\n".join(lines)


def main():
    ctx = get_context("digits")
    kappa = ctx.profile.kappas("digits")[2]
    x0, y0 = ctx.attack_seeds()
    magnet = ctx.magnet("default")

    cw = ctx.cw(kappa)
    ead = ctx.ead(1e-1, kappa)["en"]

    print(f"=== perturbation geometry at kappa={kappa:g} "
          f"(mean over successful examples) ===")
    rows = []
    for name, r in (("C&W-L2", cw), ("EAD-EN beta=0.1", ead)):
        rows.append([name, r.mean_distortion("l0"), r.mean_distortion("l1"),
                     r.mean_distortion("l2"), r.mean_distortion("linf")])
    print(format_table(["attack", "L0 (pixels)", "L1", "L2", "Linf"], rows))
    print("\nEAD touches far fewer pixels (smaller L0), trading a larger "
          "per-pixel magnitude (Linf).")

    print("\n=== detector scores vs thresholds ===")
    rows = []
    for det in magnet.detectors:
        rows.append([det.name, float(np.median(det.score(x0))),
                     float(np.median(det.score(cw.x_adv))),
                     float(np.median(det.score(ead.x_adv))),
                     det.threshold])
    print(format_table(["detector", "clean (median)", "C&W (median)",
                        "EAD (median)", "threshold"], rows))

    print("\n=== what the reformer does ===")
    decision_cw = magnet.decide(cw.x_adv)
    decision_ead = magnet.decide(ead.x_adv)
    rows = [
        ["C&W-L2", 100 * decision_cw.detected.mean(),
         100 * (decision_cw.labels_reformed == y0).mean()],
        ["EAD-EN", 100 * decision_ead.detected.mean(),
         100 * (decision_ead.labels_reformed == y0).mean()],
    ]
    print(format_table(["attack", "detected %", "correct after reforming %"],
                       rows))

    # Show one EAD example end to end.
    idx = int(np.flatnonzero(ead.success)[0]) if ead.success.any() else 0
    with no_grad():
        reformed = magnet.reform(ead.x_adv[idx:idx + 1])[0]
    print(f"\n=== one EAD example (true label {y0[idx]}, "
          f"classified as {ead.y_adv[idx]}) ===")
    print(side_by_side(
        [x0[idx], ead.x_adv[idx],
         np.abs(ead.x_adv[idx] - x0[idx]) / max(np.abs(ead.x_adv[idx] - x0[idx]).max(), 1e-6),
         reformed],
        ["clean", "adversarial", "|perturbation| (scaled)", "after reformer"]))


if __name__ == "__main__":
    main()
