#!/usr/bin/env python
"""Scenario: a one-page robustness report for a deployed model.

Pulls the library's evaluation tooling together the way a practitioner
would before shipping a model behind MagNet:

1. clean accuracy, with and without the defense;
2. benign corruption robustness (noise/blur severity sweeps) — does the
   detector reject legitimate-but-shifted inputs?
3. adversarial robustness at a fixed confidence: FGSM, PGD, C&W, EAD;
4. per-class weak points and the most common adversarial confusions;
5. detector ROC/AUC against the strongest attack found.

Run:  python examples/robustness_report.py
"""

import numpy as np

from repro.attacks import EAD, FGSM, PGD, CarliniWagnerL2, logits_of
from repro.datasets import load_digit_splits, robustness_curve
from repro.defenses import build_magnet
from repro.evaluation import (
    confusion_pairs,
    detector_roc_report,
    format_table,
    per_class_breakdown,
)
from repro.models import ClassifierSpec, ModelZoo
from repro.models.classifiers import ScaledLogits
from repro.nn import accuracy


def main():
    splits = load_digit_splits(n_train=1500, n_val=400, n_test=600, seed=0)
    zoo = ModelZoo(splits)
    base = zoo.classifier(ClassifierSpec(dataset="digits", epochs=5))
    model = ScaledLogits(base, 5.0)
    magnet = build_magnet(zoo, "digits", "default", classifier=model,
                          fpr_total=0.002)

    print("=== 1. clean performance ===")
    print(f"raw accuracy          : "
          f"{accuracy(model, splits.test.x, splits.test.y):.3f}")
    print(f"behind MagNet         : "
          f"{magnet.clean_accuracy(splits.test.x, splits.test.y):.3f}")

    print("\n=== 2. benign corruption robustness ===")
    rows = []
    for corruption in ("gaussian_noise", "gaussian_blur", "contrast"):
        curve = robustness_curve(model, splits.test.x[:300],
                                 splits.test.y[:300], corruption,
                                 severities=(1, 3, 5))
        rows.append([corruption] + [100 * curve[s] for s in (1, 3, 5)])
    print(format_table(["corruption", "sev 1 %", "sev 3 %", "sev 5 %"],
                       rows, title="raw classifier accuracy under corruption"))

    print("\n=== 3. adversarial robustness (oblivious, 24 seeds) ===")
    preds = logits_of(model, splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == splits.test.y)[:24]
    x0, y0 = splits.test.x[idx], splits.test.y[idx]
    attacks = {
        "FGSM eps=0.1": FGSM(model, epsilon=0.1),
        "PGD eps=0.1": PGD(model, epsilon=0.1, step_size=0.02, steps=15),
        "C&W kappa=10": CarliniWagnerL2(model, kappa=10.0,
                                        binary_search_steps=4,
                                        max_iterations=120,
                                        initial_const=1.0, lr=5e-2),
        "EAD kappa=10": EAD(model, beta=1e-1, kappa=10.0,
                            binary_search_steps=4, max_iterations=120,
                            initial_const=1.0, lr=2e-2),
    }
    rows, results = [], {}
    for name, attack in attacks.items():
        result = attack.attack(x0, y0)
        results[name] = result
        rows.append([name, 100 * result.success_rate,
                     result.mean_distortion("l1"),
                     100 * magnet.attack_success_rate(result.x_adv, y0)])
    print(format_table(
        ["attack", "fools raw model %", "L1", "ASR vs MagNet %"], rows))

    strongest = max(results.items(),
                    key=lambda kv: magnet.attack_success_rate(kv[1].x_adv, y0))
    name, result = strongest

    print(f"\n=== 4. weak points under {name} ===")
    rows = [bd.as_row() for bd in per_class_breakdown(result, magnet=magnet)]
    print(format_table(
        ["class", "n", "fooled raw %", "bypass MagNet %", "mean L1"], rows))
    pairs = confusion_pairs(result, top_k=3)
    if pairs:
        print("top confusions: " + ", ".join(
            f"{p['true']}→{p['adversarial']} ({p['count']})" for p in pairs))

    print(f"\n=== 5. detector separability vs {name} ===")
    rows = []
    for det in magnet.detectors:
        rep = detector_roc_report(det, splits.val.x, result.x_adv)
        rows.append([rep["detector"], rep["auc"],
                     rep["tpr_at_fpr"]["0.01"]])
    print(format_table(["detector", "AUC", "TPR@FPR=1%"], rows))


if __name__ == "__main__":
    main()
