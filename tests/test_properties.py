"""Property-based tests (hypothesis) on core invariants.

These cover the mathematical workhorses of the reproduction: the EAD
shrinkage operator (paper eq. (5)), the hinge attack margin, JSD, norm
bookkeeping, softmax identities and broadcasting gradients.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.attacks.base import flat_norms
from repro.attacks.ead import shrink_threshold
from repro.attacks.gradients import attack_margin
from repro.defenses.detectors import jensen_shannon_divergence
from repro.nn import Tensor, functional as F
from repro.nn.autograd import unbroadcast

_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                    allow_infinity=False, width=32)
_unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                         width=32)


def _pixel_arrays(max_side=6):
    shape = array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=max_side)
    return arrays(np.float32, shape, elements=_unit_floats)


class TestShrinkThresholdProperties:
    @given(x0=_pixel_arrays(), beta=st.floats(0.001, 0.5),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_output_in_box(self, x0, beta, data):
        z = data.draw(arrays(np.float32, x0.shape,
                             elements=st.floats(-2, 3, width=32)))
        out = shrink_threshold(z, x0, beta)
        assert (out >= 0.0).all() and (out <= 1.0).all()

    @given(x0=_pixel_arrays(), beta=st.floats(0.001, 0.5), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_small_moves_are_zeroed(self, x0, beta, data):
        delta = data.draw(arrays(
            np.float32, x0.shape,
            elements=st.floats(-0.875, 0.875, width=32)))
        z = x0 + delta * np.float32(beta)  # |z - x0| <= 0.875*beta < beta
        out = shrink_threshold(z, x0, beta)
        np.testing.assert_array_equal(out, x0)

    @given(x0=_pixel_arrays(), beta=st.floats(0.001, 0.3), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_perturbation_never_grows(self, x0, beta, data):
        z = data.draw(arrays(np.float32, x0.shape,
                             elements=st.floats(-1, 2, width=32)))
        out = shrink_threshold(z, x0, beta)
        # The shrink step never moves further from x0 than z was (modulo
        # box projection, which also only moves toward the box).
        grew = np.abs(out - x0) > np.abs(z - x0) + 1e-6
        assert not grew.any()

    @given(x0=_pixel_arrays(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, x0, data):
        beta = 0.1
        z = data.draw(arrays(np.float32, x0.shape,
                             elements=st.floats(-1, 2, width=32)))
        once = shrink_threshold(z, x0, beta)
        twice = shrink_threshold(once, x0, beta)
        # Applying S_beta to its own output only re-applies thresholding;
        # points already within beta of x0 stay, others shrink again —
        # but output is always within box and closer to x0.
        assert (np.abs(twice - x0) <= np.abs(once - x0) + 1e-6).all()


class TestAttackMarginProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sign_matches_prediction(self, data):
        n = data.draw(st.integers(1, 6))
        k = data.draw(st.integers(2, 8))
        logits = data.draw(arrays(np.float64, (n, k), elements=_floats))
        labels = data.draw(arrays(np.int64, (n,),
                                  elements=st.integers(0, k - 1)))
        margin = attack_margin(logits, labels)
        preds = logits.argmax(axis=1)
        for i in range(n):
            if margin[i] < 0:
                assert preds[i] == labels[i]
            if preds[i] != labels[i]:
                assert margin[i] >= 0

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, data):
        n = data.draw(st.integers(1, 5))
        k = data.draw(st.integers(2, 6))
        logits = data.draw(arrays(np.float64, (n, k), elements=_floats))
        labels = np.zeros(n, dtype=np.int64)
        shift = data.draw(st.floats(-5, 5))
        a = attack_margin(logits, labels)
        b = attack_margin(logits + shift, labels)
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestNormProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_norm_inequalities(self, data):
        n = data.draw(st.integers(1, 4))
        delta = data.draw(arrays(np.float64, (n, 1, 3, 3), elements=_floats))
        norms = flat_norms(delta)
        # ||d||_inf <= ||d||_2 <= ||d||_1 for every example
        assert (norms["linf"] <= norms["l2"] + 1e-9).all()
        assert (norms["l2"] <= norms["l1"] + 1e-9).all()

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_l2_cauchy_schwarz_vs_l0(self, data):
        n = data.draw(st.integers(1, 4))
        # Elements either exactly zero or clearly above the L0 threshold,
        # so the sparsity count is unambiguous.
        elements = st.one_of(st.just(0.0), st.floats(0.01, 10.0),
                             st.floats(-10.0, -0.01))
        delta = data.draw(arrays(np.float64, (n, 1, 2, 2), elements=elements))
        norms = flat_norms(delta)
        # ||d||_1 <= sqrt(||d||_0) * ||d||_2
        lhs = norms["l1"]
        rhs = np.sqrt(norms["l0"]) * norms["l2"]
        assert (lhs <= rhs + 1e-6).all()


class TestJSDProperties:
    @st.composite
    def _prob_pair(draw):
        n = draw(st.integers(1, 5))
        k = draw(st.integers(2, 6))
        raw_p = draw(arrays(np.float64, (n, k),
                            elements=st.floats(0.01, 1.0)))
        raw_q = draw(arrays(np.float64, (n, k),
                            elements=st.floats(0.01, 1.0)))
        return (raw_p / raw_p.sum(1, keepdims=True),
                raw_q / raw_q.sum(1, keepdims=True))

    @given(pq=_prob_pair())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, pq):
        p, q = pq
        jsd = jensen_shannon_divergence(p, q)
        assert (jsd >= -1e-12).all()
        assert (jsd <= np.log(2) + 1e-9).all()

    @given(pq=_prob_pair())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pq):
        p, q = pq
        np.testing.assert_allclose(jensen_shannon_divergence(p, q),
                                   jensen_shannon_divergence(q, p),
                                   atol=1e-10)

    @given(pq=_prob_pair())
    @settings(max_examples=40, deadline=None)
    def test_identity_of_indiscernibles(self, pq):
        p, _ = pq
        np.testing.assert_allclose(jensen_shannon_divergence(p, p), 0.0,
                                   atol=1e-12)


class TestSoftmaxProperties:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, data):
        n = data.draw(st.integers(1, 5))
        k = data.draw(st.integers(2, 8))
        z = data.draw(arrays(np.float64, (n, k), elements=_floats))
        s = F.softmax(Tensor(z, dtype=np.float64)).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(1), 1.0, rtol=1e-9)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_log_softmax_consistency(self, data):
        n = data.draw(st.integers(1, 4))
        k = data.draw(st.integers(2, 6))
        z = data.draw(arrays(np.float64, (n, k), elements=_floats))
        ls = F.log_softmax(Tensor(z, dtype=np.float64)).data
        np.testing.assert_allclose(np.exp(ls).sum(1), 1.0, rtol=1e-9)


class TestUnbroadcastProperties:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_total_mass_preserved(self, data):
        """Summed gradient mass is invariant under unbroadcast."""
        shape = data.draw(array_shapes(min_dims=1, max_dims=3, min_side=1,
                                       max_side=4))
        grad = data.draw(arrays(np.float64, (2,) + shape, elements=_floats))
        reduced = unbroadcast(grad, shape)
        np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-9,
                                   atol=1e-9)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_output_shape(self, data):
        shape = data.draw(array_shapes(min_dims=1, max_dims=3, min_side=1,
                                       max_side=4))
        target = tuple(1 if data.draw(st.booleans()) else s for s in shape)
        grad = data.draw(arrays(np.float64, shape, elements=_floats))
        assert unbroadcast(grad, target).shape == target
